//! Property test for the constraint scheduler's core safety claim: within a
//! reorder-safe region ([`beast_core::schedule::check_regions`]), *any*
//! permutation of the checks — with each check's define closure hoisted
//! ahead of it — preserves the survivor set AND the emission order, at
//! every thread count.
//!
//! Random permutations are applied directly to the lowered plan via
//! [`apply_order`] — the same mechanism [`static_schedule`] uses — so this
//! exercises exactly the transformation the static scheduler is allowed to
//! make, plus arbitrarily bad orders the cost model would never pick. The
//! static and adaptive engine modes are then checked against the same
//! baseline: whatever order they chose, results must be bit-for-bit the
//! declared ones.

use std::sync::Arc;

use beast::prelude::*;
use beast_core::ir::LoweredPlan;
use beast_core::schedule::{apply_order, check_regions, ScheduleMode};
use beast_engine::compiled::EngineOptions;
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_gemm::{build_gemm_space, GemmSpaceParams};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const TRIALS: usize = 4;

fn lower(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// Three spaces with reorder-safe groups: a flat conjunction, a skewed nest
/// with mixed-level checks, and the paper's GEMM space (whose groups include
/// the interval-proven `cant_reshape` pairs).
fn all_spaces() -> Vec<(&'static str, Arc<Space>)> {
    let flat = Space::builder("perm_flat")
        .constant("cap", 30)
        .range("a", 1, 13)
        .range("b", 1, 13)
        .derived("ab", var("a") * var("b"))
        .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
        .constraint("odd", ConstraintClass::Soft, (var("ab") % 2).ne(0))
        .constraint("sum_low", ConstraintClass::Soft, (var("a") + var("b")).lt(5))
        .build()
        .unwrap();
    let skewed = Space::builder("perm_skewed")
        .range("outer", 1, 20)
        .range_step("mid", var("outer"), 60, var("outer"))
        .range("inner", 0, var("mid"))
        .derived("w", var("mid") + var("inner"))
        .constraint("odd_w", ConstraintClass::Soft, (var("w") % 2).ne(0))
        .constraint("big_w", ConstraintClass::Hard, var("w").gt(40))
        .constraint("div_mid", ConstraintClass::Soft, (var("w") % var("mid")).eq(0))
        .build()
        .unwrap();
    let gemm = build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap();
    vec![("flat", flat), ("skewed", skewed), ("gemm", gemm)]
}

fn shuffle(rng: &mut StdRng, items: &mut [usize]) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn collect(lp: &LoweredPlan) -> Vec<Point> {
    let c = Compiled::new(lp.clone());
    let names = c.point_names().clone();
    c.run(CollectVisitor::new(names, usize::MAX)).unwrap().visitor.points
}

/// Random group permutations preserve survivors and emission order, serial
/// and parallel.
#[test]
fn random_check_permutations_preserve_survivors_and_order() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let regions = check_regions(&lp);
        assert!(
            !regions.is_empty(),
            "{name}: test space has no reorder-safe region — nothing exercised"
        );
        let baseline = collect(&lp);
        assert!(!baseline.is_empty(), "{name}: degenerate test space");
        for trial in 0..TRIALS {
            let mut shuffled = lp.clone();
            for region in &regions {
                let mut order = region.checks.clone();
                shuffle(&mut rng, &mut order);
                apply_order(&mut shuffled, region, &order);
            }
            let permuted = collect(&shuffled);
            assert_eq!(
                permuted.len(),
                baseline.len(),
                "{name} trial {trial}: permutation changed the survivor count"
            );
            assert_eq!(
                permuted, baseline,
                "{name} trial {trial}: permutation changed survivors or their order"
            );
            for threads in THREAD_COUNTS {
                let names = Compiled::new(shuffled.clone()).point_names().clone();
                let opts = ParallelOptions::new(threads);
                let (par, _) = run_parallel_report(&shuffled, &opts, || {
                    CollectVisitor::new(names.clone(), usize::MAX)
                })
                .unwrap();
                assert_eq!(
                    par.visitor.points, baseline,
                    "{name} trial {trial}: permuted plan diverged at {threads} threads"
                );
            }
        }
    }
}

/// The engine's own scheduling modes (static reorder at compile time,
/// adaptive re-sorting at run time) stay on the declared baseline too, with
/// intervals on and off.
#[test]
fn engine_schedule_modes_match_declared_baseline() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let baseline = collect(&lp);
        for mode in [ScheduleMode::Static, ScheduleMode::Adaptive] {
            for intervals in [true, false] {
                let mut engine = if intervals {
                    EngineOptions::default()
                } else {
                    EngineOptions::no_intervals()
                };
                engine.schedule = mode;
                let c = Compiled::with_options(lp.clone(), engine);
                let names = c.point_names().clone();
                let out = c.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();
                assert_eq!(
                    out.visitor.points, baseline,
                    "{name}: {mode} (intervals={intervals}) diverged from declared"
                );
                for threads in THREAD_COUNTS {
                    let opts =
                        ParallelOptions { threads, engine, ..ParallelOptions::default() };
                    let (par, _) = run_parallel_report(&lp, &opts, || {
                        CollectVisitor::new(names.clone(), usize::MAX)
                    })
                    .unwrap();
                    assert_eq!(
                        par.visitor.points, baseline,
                        "{name}: {mode} (intervals={intervals}) diverged at {threads} threads"
                    );
                }
            }
        }
    }
}
