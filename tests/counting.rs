//! Exact survivor counting over the lowered plan: pinned GEMM fixtures
//! (the numbers the paper's pruning discussion revolves around) and
//! footprint-cache soundness properties on seeded random spaces, each
//! cross-checked against a full enumeration by the compiled engine.

use std::sync::Arc;

use beast::gemm::{build_gemm_space, GemmSpaceParams};
use beast::prelude::*;
use beast_core::analyze::{analyze_with_counts, CountBudget, Counter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lower a space with default plan options.
fn lower(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// Ground truth: survivors found by a full sweep of the compiled engine.
fn sweep_count(lp: &LoweredPlan) -> u64 {
    Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap().visitor.count
}

/// The flagship fixture: GEMM on the reduced(16) device has exactly 1824
/// survivors out of 8,259,231,744 dependent tuples (survival ≈ 2.2e-7 —
/// far thinner than ROADMAP's old 1824/432192 estimate, which is why
/// rejection sampling needs deep backtracking there). The counter must
/// agree with a full sweep, and its footprint cache must actually fire.
#[test]
fn gemm_reduced16_count_is_pinned() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap());
    let mut counter = Counter::new(&lp);
    let total = counter.total().unwrap();
    assert_eq!(total, Some(1824));
    assert_eq!(total, Some(sweep_count(&lp) as u128));
    assert!(
        counter.stats().cache_hits > 0,
        "footprint cache never fired on GEMM: {:?}",
        counter.stats()
    );
    assert_eq!(Counter::tuples(&lp).total().unwrap(), Some(8_259_231_744));
}

/// Same agreement on the reduced(32) device, where the survivor set is
/// larger and differently shaped.
#[test]
fn gemm_reduced32_count_matches_sweep() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(32)).unwrap());
    let expected = sweep_count(&lp) as u128;
    let mut counter = Counter::new(&lp);
    assert_eq!(counter.total().unwrap(), Some(expected));
}

/// Counting must beat enumeration on GEMM: the whole point of footprint
/// memoization is that the counter recurses into far fewer values than the
/// dependent tuple space holds.
#[test]
fn gemm_counting_is_cheaper_than_enumeration() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap());
    let mut counter = Counter::new(&lp);
    counter.total().unwrap();
    assert!(
        counter.stats().enumerated < 100_000,
        "counting did not beat enumeration (8.26e9 tuples): {:?}",
        counter.stats()
    );
}

/// The count-powered linter on reduced(16): BE009 reports the exact count
/// and rate, and the rate (≈2.2e-7) is far below 1e-4, so BE010 warns
/// that rejection sampling is impractical — exactly the finding the
/// direct sampler exists to answer.
#[test]
fn gemm_count_lints_report_the_exact_rate() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap());
    let report = analyze_with_counts(&lp);
    let be009 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "BE009")
        .expect("BE009 missing");
    assert!(be009.message.contains("1824"), "{}", be009.message);
    assert!(be009.message.contains("8259231744"), "{}", be009.message);
    let be010 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "BE010")
        .expect("BE010 missing");
    assert!(be010.message.contains("below 1e-4"), "{}", be010.message);
}

/// A seeded random constrained space: `dims` stepped ranges (some starting
/// at an earlier dimension's value), a derived product, and a mix of
/// threshold and divisibility constraints. Small enough that a full sweep
/// is instant; varied enough to exercise realization, residue filtering
/// and the footprint keys.
fn random_space(seed: u64) -> Arc<Space> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = rng.gen_range(1..4usize);
    let mut b = Space::builder(&format!("prop_{seed}"));
    for i in 0..dims {
        let name = format!("i{i}");
        let start = rng.gen_range(0..5i64);
        let step = rng.gen_range(1..4i64);
        let len = rng.gen_range(1..9i64);
        if i > 0 && rng.gen_bool(0.4) {
            // Dependent domain: start at the previous dimension's value.
            let prev = format!("i{}", i - 1);
            b = b.range_step(&name, var(&prev), lit(start + step * len), lit(step));
        } else {
            b = b.range_step(&name, lit(start), lit(start + step * len), lit(step));
        }
    }
    if dims >= 2 && rng.gen_bool(0.7) {
        b = b.derived("prod", var("i0") * var("i1"));
        b = b.constraint("prod_cap", ConstraintClass::Hard, var("prod").gt(rng.gen_range(5..40i64)));
    }
    for (c, i) in (0..dims).enumerate() {
        if rng.gen_bool(0.5) {
            let name = format!("c{c}");
            let v = format!("i{i}");
            if rng.gen_bool(0.5) {
                let m = rng.gen_range(2..5i64);
                b = b.constraint(&name, ConstraintClass::Hard, (var(&v) % m).ne(0));
            } else {
                b = b.constraint(&name, ConstraintClass::Hard, var(&v).gt(rng.gen_range(0..12i64)));
            }
        }
    }
    b.build().unwrap()
}

/// Footprint-cache soundness: on 40 seeded random spaces the memoized
/// count equals a brute-force enumeration by the engine, exactly.
#[test]
fn random_spaces_count_equals_enumeration() {
    for seed in 0..40u64 {
        let space = random_space(seed);
        let lp = lower(&space);
        let expected = sweep_count(&lp) as u128;
        let mut counter = Counter::new(&lp);
        assert_eq!(
            counter.total().unwrap(),
            Some(expected),
            "seed {seed}: count diverged from enumeration ({:?})",
            counter.stats()
        );
    }
}

/// Tuple mode (checks ignored) equals an unconstrained engine sweep on the
/// same seeded spaces: dependent domains still realize under outer values.
#[test]
fn random_spaces_tuple_count_equals_unconstrained_enumeration() {
    for seed in 0..20u64 {
        let space = random_space(seed);
        let lp = lower(&space);
        let survivors = sweep_count(&lp) as u128;
        let tuples = Counter::tuples(&lp).total().unwrap().unwrap();
        assert!(
            tuples >= survivors,
            "seed {seed}: fewer tuples ({tuples}) than survivors ({survivors})"
        );
        if space.constraints().is_empty() {
            assert_eq!(tuples, survivors, "seed {seed}: no constraints, counts must agree");
        }
    }
}

/// An exhausted budget reports `None`, never a wrong number.
#[test]
fn budget_exhaustion_is_explicit() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap());
    let mut counter = Counter::with_budget(
        &lp,
        CountBudget { max_enumerated: 50, ..CountBudget::default() },
    );
    assert_eq!(counter.total().unwrap(), None);
    assert!(counter.aborted());
}
