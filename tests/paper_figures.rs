//! Figure-by-figure semantic checks against the paper's listings: each test
//! pins one figure's behavior through the public API.

use beast::prelude::*;
use beast_gemm::{build_gemm_space, GemmSpaceParams};
use beast_gpu_sim::{Precision, Transpose};

fn collect_ints(space: &std::sync::Arc<Space>, name: &str) -> Vec<i64> {
    let (points, _) = beast_engine::sweep::collect(space, 100_000).unwrap();
    points.iter().map(|p| p.get_int(name)).collect()
}

/// Fig. 1: list-literal iterators (`Iterator([1, 1, 2, 3, 5, 8, 13])`).
#[test]
fn fig1_list_iterator() {
    let space = Space::builder("fig1")
        .list("fibonacci", [1i64, 1, 2, 3, 5, 8, 13])
        .build()
        .unwrap();
    assert_eq!(collect_ints(&space, "fibonacci"), vec![1, 1, 2, 3, 5, 8, 13]);
}

/// Fig. 2: deferred iterators may be defined in any order and dispatch on an
/// architecture setting; their expression-based counterparts must be ordered.
#[test]
fn fig2_deferred_out_of_order_and_architecture_dispatch() {
    use beast_core::iterator::Realized;
    for (arch, expected_outer) in [("fermi", 32i64), ("kepler", 192), ("maxwell", 256)] {
        let space = Space::builder("fig2")
            // `inner` defined BEFORE `outer` — legal for deferred forms.
            .deferred_iter("inner", &["outer"], |env| {
                Ok(Realized::Range { start: 0, stop: env.require_int("outer")?, step: 1 })
            })
            .constant("architecture", arch)
            .deferred_iter("outer", &["architecture"], |env| {
                let arch = env.require("architecture")?;
                let stop = match &arch {
                    Value::Str(s) if &**s == "fermi" => 32,
                    Value::Str(s) if &**s == "kepler" => 192,
                    _ => 256,
                };
                Ok(Realized::Range { start: 0, stop, step: 1 })
            })
            .build()
            .unwrap();
        // outer becomes the outer loop (level 0), inner the inner (level 1).
        let outer_idx =
            space.iters().iter().position(|d| &*d.name == "outer").unwrap();
        let inner_idx =
            space.iters().iter().position(|d| &*d.name == "inner").unwrap();
        assert_eq!(space.dag().level(space.iter_node(outer_idx)), 0);
        assert_eq!(space.dag().level(space.iter_node(inner_idx)), 1);
        // Point count: sum over outer of outer = n(n-1)/2.
        let (count, _) = beast_engine::sweep::count(&space).unwrap();
        assert_eq!(count as i64, expected_outer * (expected_outer - 1) / 2);
    }

    // The expression counterpart really does require definition order.
    let err = Space::builder("fig2_expr")
        .range("ex_inner", 0, var("ex_outer"))
        .build()
        .unwrap_err();
    assert!(matches!(err, SpaceError::UnknownName { .. }));
}

/// Figs. 3/6: closure iterators with internal state (primes, Fibonacci).
#[test]
fn fig3_fig6_closure_iterators() {
    let space = Space::builder("fig3")
        .constant("max", 30)
        .closure_iter("prime", &["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let mut old_primes: Vec<i64> = Vec::new();
            let mut n = 1i64;
            std::iter::from_fn(move || loop {
                n += 1;
                if n > max {
                    return None;
                }
                if old_primes.iter().all(|p| n % p != 0) {
                    old_primes.push(n);
                    return Some(Value::Int(n));
                }
            })
        })
        .build()
        .unwrap();
    assert_eq!(
        collect_ints(&space, "prime"),
        vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
    );
}

/// Fig. 4: global-scope dependent ranges — `blk_m = range(dim_m, MAX+1,
/// dim_m)` yields only multiples of `dim_m`.
#[test]
fn fig4_global_scope_dependent_range() {
    let space = Space::builder("fig4")
        .constant("warp_size", 32)
        .constant("max_threads", 128)
        .range_step("dim", var("warp_size"), var("max_threads") + 1, var("warp_size"))
        .range_step("blk_m", var("dim"), var("max_threads") + 1, var("dim"))
        .build()
        .unwrap();
    let (points, _) = beast_engine::sweep::collect(&space, 100_000).unwrap();
    assert!(!points.is_empty());
    for p in &points {
        assert_eq!(p.get_int("dim") % 32, 0);
        assert_eq!(p.get_int("blk_m") % p.get_int("dim"), 0);
    }
}

/// Fig. 11: the dim_vec domain per precision/arithmetic combination.
#[test]
fn fig11_dim_vec_domains() {
    let expected = [
        (Precision::Double, vec![1i64, 2]),
        (Precision::DoubleComplex, vec![1]),
        (Precision::Single, vec![1, 4]),
        (Precision::SingleComplex, vec![1, 2]),
    ];
    for (precision, want) in expected {
        let params = GemmSpaceParams {
            precision,
            ..GemmSpaceParams::paper_default()
        };
        let space = build_gemm_space(&params).unwrap();
        let idx = space.iters().iter().position(|d| &*d.name == "dim_vec").unwrap();
        let consts = beast_core::space::ConstBindings(space.consts());
        let realized = space.realize_iter(idx, &consts).unwrap();
        let got: Vec<i64> = realized.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, want, "{precision:?}");
    }
}

/// Fig. 12: derived variables on the reference configuration, evaluated
/// through the space itself (walker), not the independent reimplementation.
#[test]
fn fig12_derived_variables_through_the_space() {
    let params = GemmSpaceParams::paper_default();
    let space = build_gemm_space(&params).unwrap();
    // Evaluate every derived on a hand-bound environment.
    let mut env: std::collections::HashMap<std::sync::Arc<str>, Value> = space
        .consts()
        .iter()
        .map(|(n, v)| (n.clone(), v.clone()))
        .collect();
    for (name, value) in [
        ("dim_m", 16i64),
        ("dim_n", 16),
        ("blk_m", 64),
        ("blk_n", 64),
        ("blk_k", 16),
        ("dim_vec", 1),
    ] {
        env.insert(std::sync::Arc::from(name), Value::Int(value));
    }
    let mut results: std::collections::HashMap<String, i64> = Default::default();
    for d in space.deriveds() {
        if let Ok(v) = d.kind.eval(&env) {
            let v = v.as_int().unwrap();
            results.insert(d.name.to_string(), v);
            env.insert(d.name.clone(), Value::Int(v));
        }
    }
    assert_eq!(results["threads_per_block"], 256);
    assert_eq!(results["thr_m"], 4);
    assert_eq!(results["thr_n"], 4);
    assert_eq!(results["regs_per_thread"], 32); // double real: 16 * 2
    assert_eq!(results["regs_per_block"], 8192);
    assert_eq!(results["shmem_per_block"], 16384);
    assert_eq!(results["max_blocks_by_regs"], 8);
    assert_eq!(results["max_threads_by_regs"], 2048);
    assert_eq!(results["max_blocks_by_shmem"], 3);
    assert_eq!(results["max_threads_by_shmem"], 768);
    assert_eq!(results["loads_per_block"], 32768);
    assert_eq!(results["fmas_per_block"], 65536);
}

/// Figs. 13–15: each constraint class actually fires on a crafted violation
/// and stays quiet on the reference configuration.
#[test]
fn fig13_15_constraints_fire_precisely() {
    let params = GemmSpaceParams::paper_default();
    let space = build_gemm_space(&params).unwrap();
    let consts: std::collections::HashMap<std::sync::Arc<str>, Value> = space
        .consts()
        .iter()
        .map(|(n, v)| (n.clone(), v.clone()))
        .collect();

    // Bind a full configuration + deriveds, then ask each constraint.
    let evaluate = |config: &[(&str, i64)]| -> std::collections::HashMap<String, bool> {
        let mut env = consts.clone();
        for (name, value) in config {
            env.insert(std::sync::Arc::from(*name), Value::Int(*value));
        }
        for d in space.deriveds() {
            let v = d.kind.eval(&env).unwrap();
            env.insert(d.name.clone(), v);
        }
        space
            .constraints()
            .iter()
            .map(|c| (c.name.to_string(), c.kind.rejects(&env).unwrap()))
            .collect()
    };

    let reference = [
        ("dim_m", 16i64),
        ("dim_n", 16),
        ("blk_m", 64),
        ("blk_n", 64),
        ("blk_k", 16),
        ("dim_vec", 1),
        ("vec_mul", 0),
        ("dim_m_a", 16),
        ("dim_n_a", 16),
        ("dim_m_b", 16),
        ("dim_n_b", 16),
        ("tex_a", 0),
        ("tex_b", 0),
        ("shmem_l1", 1),
        ("shmem_banks", 1),
    ];
    let verdicts = evaluate(&reference);
    for (name, rejected) in &verdicts {
        assert!(!rejected, "reference config wrongly rejected by {name}");
    }

    // over_max_threads: 64 × 32 = 2048 > 1024.
    let mut bad = reference;
    bad[0].1 = 64;
    bad[1].1 = 32;
    assert!(evaluate(&bad)["over_max_threads"]);

    // partial_warps: 15 × 16 = 240, not a multiple of 32.
    let mut bad = reference;
    bad[0].1 = 15;
    assert!(evaluate(&bad)["partial_warps"]);

    // cant_reshape_a1: read grid 8 × 16 = 128 ≠ 256 threads.
    let mut bad = reference;
    bad[7].1 = 8;
    assert!(evaluate(&bad)["cant_reshape_a1"]);

    // cant_reshape_a2: blk_k % dim_n_a = 16 % 10 ≠ 0 (keep a1 satisfied is
    // not required for this check to fire).
    let mut bad = reference;
    bad[8].1 = 10;
    assert!(evaluate(&bad)["cant_reshape_a2"]);

    // over_max_shmem: blk_k = 512 → 512·128·4·2 = 512 KiB ≫ 48 KiB.
    let mut bad = reference;
    bad[4].1 = 512;
    assert!(evaluate(&bad)["over_max_shmem"]);

    // low_fmas: tiny tile, dim_vec 2 → fmas/loads < 2.
    let mut bad = reference;
    bad[2].1 = 16; // blk_m = dim_m → thr_m = 1
    bad[3].1 = 16; // thr_n = 1
    bad[5].1 = 2; // dim_vec
    assert!(evaluate(&bad)["low_fmas"]);
}

/// Fig. 16 + §X-B: the weak order is a real partial order on the GEMM DAG.
#[test]
fn fig16_weak_order_properties() {
    let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
    let dag = space.dag();
    for v in 0..dag.len() {
        // Irreflexive.
        assert!(!dag.succeeds(v, v));
        for &d in dag.deps(v) {
            // Edges imply strict level increase and succession.
            assert!(dag.level(v) > dag.level(d));
            assert!(dag.succeeds(v, d));
            assert!(!dag.succeeds(d, v));
        }
    }
    // Level sets partition the nodes.
    let total: usize = dag.level_sets().iter().map(Vec::len).sum();
    assert_eq!(total, dag.len());
}

/// §IX-C: tuning runs are per-precision × per-transpose; all 16 cases build
/// and the settings fold into the space constants.
#[test]
fn sec9_all_sixteen_cases() {
    for precision in Precision::all() {
        for transpose in Transpose::all() {
            let params = GemmSpaceParams {
                precision,
                transpose,
                ..GemmSpaceParams::reduced(16)
            };
            let space = build_gemm_space(&params).unwrap();
            let (count, _) = beast_engine::sweep::count(&space).unwrap();
            // Dim 16 is the smallest reduced device where every case admits
            // kernels. At dim 8 all sixteen spaces are provably empty: the
            // warp_size stays 32, so partial_warps forces
            // threads_per_block ≥ 32, but cant_reshape_a1 needs the A-read
            // grid dim_m_a × dim_n_a (bounded by blk_m/dim_vec ≤ 8 and
            // blk_k ≤ 8) to equal threads_per_block, which low_fmas makes
            // unreachable.
            assert!(count > 0, "{precision:?}/{}", transpose.suffix());
        }
    }
}
