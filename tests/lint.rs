//! The space linter: pinned diagnostics on the paper's GEMM space, one
//! broken-space variant per lint pass (BE001–BE010, with the count-powered
//! lints exercised through `analyze_with_counts`), and the engine-side
//! lint gate.
//!
//! The GEMM snapshot is deliberately exact — codes, names and summary
//! counts — so any change to a pass's verdict on the flagship space shows
//! up as a diff here, not as silently shifted telemetry. The acceptance
//! bar from the paper's perspective: the canonical space is *valid*, so
//! the linter must report zero false "empty space" errors on it.

use std::sync::Arc;

use beast::gemm::{build_gemm_space, GemmSpaceParams};
use beast::prelude::*;
use beast_core::analyze::{self, LintGate};

/// Lower a space with default plan options.
fn lower(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// The (code, name) pairs of a report, in the report's (sorted) order.
fn codes(report: &LintReport) -> Vec<(&str, String)> {
    report.diagnostics.iter().map(|d| (d.code, d.name.clone())).collect()
}

/// Does the report hold a diagnostic with this code, name and severity?
fn has(report: &LintReport, code: &str, name: &str, severity: Severity) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.code == code && d.name == name && d.severity == severity)
}

/// Pinned snapshot of the canonical (paper-default) GEMM space: five pure
/// enumeration dimensions, one fallible define, one overflow-prone define —
/// and, crucially, zero errors: the flagship space must not be "proven"
/// empty by its own linter.
#[test]
fn gemm_canonical_snapshot_is_pinned() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::paper_default()).unwrap());
    // The full linter *including* the counting pass: on the paper-default
    // device the counter exhausts its default budget and degrades
    // gracefully — the snapshot pins that no BE009/BE010 appears and the
    // abstract findings are untouched.
    let report = analyze::analyze_with_counts(&lp);
    let expect: Vec<(&str, String)> = [
        ("BE004", "shmem_banks"),
        ("BE004", "shmem_l1"),
        ("BE004", "tex_a"),
        ("BE004", "tex_b"),
        ("BE004", "vec_mul"),
        ("BE007", "max_blocks_by_regs"),
        ("BE008", "max_threads_by_regs"),
    ]
    .map(|(c, n)| (c, n.to_string()))
    .to_vec();
    assert_eq!(codes(&report), expect);
    for d in &report.diagnostics {
        let want = if d.code == "BE004" { Severity::Info } else { Severity::Warning };
        assert_eq!(d.severity, want, "{}[{}]", d.code, d.name);
    }
    let sum = report.summary();
    assert_eq!((sum.errors, sum.warnings, sum.infos), (0, 2, 5));
    assert!(!report.has_errors(), "canonical GEMM flagged as broken:\n{}", report.render_text());
}

/// On the reduced(16) device the two capacity constraints can never fire
/// (everything fits), which the linter reports as dead checks on top of
/// the canonical findings — and the space is small enough for the counting
/// pass to finish, so the exact-count lints land too: BE009 reports 1824
/// survivors of 8,259,231,744 tuples and BE010 warns that the survival
/// rate (≈2.2e-7) makes naive rejection sampling impractical.
#[test]
fn gemm_reduced_device_adds_dead_capacity_checks() {
    let lp = lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap());
    let report = analyze::analyze_with_counts(&lp);
    assert!(has(&report, "BE002", "over_max_shmem", Severity::Warning));
    assert!(has(&report, "BE002", "over_max_threads", Severity::Warning));
    let be009 = report.diagnostics.iter().find(|d| d.code == "BE009").expect("BE009 missing");
    assert_eq!(be009.severity, Severity::Info);
    assert!(be009.message.contains("1824"), "{}", be009.message);
    let be010 = report.diagnostics.iter().find(|d| d.code == "BE010").expect("BE010 missing");
    assert_eq!(be010.severity, Severity::Warning);
    let sum = report.summary();
    assert_eq!((sum.errors, sum.warnings, sum.infos), (0, 5, 6));
    assert_eq!(report.diagnostics.len(), 11);
}

/// BE001: a constraint that rejects every point by interval reasoning
/// alone (its predicate is bounded away from zero).
#[test]
fn be001_empty_space_by_interval() {
    let space = Space::builder("lint_be001")
        .range("x", 1, 17)
        .constraint("always_fires", ConstraintClass::Hard, var("x").ge(1))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE001", "always_fires", Severity::Error));
    assert!(report.has_errors());
}

/// BE001 via the congruence half: `x` steps by 4 so `x % 2 == 0` on every
/// point, making `(x % 2) != 1` a tautology. The interval hull of `x % 2`
/// is `[0, 1]`, which contains both truth values — only the residue fact
/// proves the space empty. This is the divisibility reasoning the engine's
/// congruence subtree guards reuse.
#[test]
fn be001_empty_space_by_congruence_only() {
    let space = Space::builder("lint_be001_cg")
        .range_step("x", lit(4), 100, lit(4))
        .constraint("parity_trap", ConstraintClass::Hard, (var("x") % 2).ne(1))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(
        has(&report, "BE001", "parity_trap", Severity::Error),
        "congruence half missed a residue tautology:\n{}",
        report.render_text()
    );
}

/// BE002: a constraint whose predicate is statically false never rejects.
#[test]
fn be002_dead_check() {
    let space = Space::builder("lint_be002")
        .range("x", 1, 17)
        .constraint("never_fires", ConstraintClass::Hard, var("x").gt(100))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE002", "never_fires", Severity::Warning));
}

/// BE003: `x > 10` rejects a subset of what `x > 5` rejects, so the
/// tighter same-class constraint is redundant.
#[test]
fn be003_subsumed_constraint() {
    let space = Space::builder("lint_be003")
        .range("x", 0, 21)
        .constraint("loose", ConstraintClass::Hard, var("x").gt(5))
        .constraint("tight", ConstraintClass::Hard, var("x").gt(10))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE003", "tight", Severity::Warning));
    assert!(!has(&report, "BE003", "loose", Severity::Warning), "subsumption is directional");
}

/// BE004: a derived variable nothing reads is per-point wasted work
/// (warning); an iterator nothing reads is a pure enumeration dimension
/// (info).
#[test]
fn be004_unused_symbols() {
    let space = Space::builder("lint_be004")
        .range("x", 0, 21)
        .range("seed", 0, 4)
        .derived("scratch", var("x") + 1)
        .constraint("cap", ConstraintClass::Hard, var("x").gt(10))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE004", "scratch", Severity::Warning));
    assert!(has(&report, "BE004", "seed", Severity::Info));
    assert!(!has(&report, "BE004", "x", Severity::Info), "x is read by `cap`");
}

/// BE005: space symbols may shadow expression builtins or C keywords —
/// the builder accepts them but generated sources miscompile.
#[test]
fn be005_shadowed_names() {
    let space = Space::builder("lint_be005")
        .constant("while", 3)
        .list("min", [1, 2])
        .constraint("uses_min", ConstraintClass::Hard, var("min").gt(var("while")))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE005", "min", Severity::Warning));
    assert!(has(&report, "BE005", "while", Severity::Warning));
}

/// BE006: the planner places checks by *declared* dependencies; when
/// simplification folds those away (`y * 0 + 7` is the constant 7), the
/// check runs deeper in the nest than it needs to.
#[test]
fn be006_hoistable_check() {
    // The erasing multiply is the point: the planner sees a dependency on
    // `y`, the simplifier folds it to a constant.
    #[allow(clippy::erasing_op)]
    let folded = var("y") * 0 + 7;
    let space = Space::builder("lint_be006")
        .range("y", 0, 4)
        .derived("folded", folded)
        .constraint("late_check", ConstraintClass::Hard, var("folded").lt(3))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE006", "late_check", Severity::Info));
}

/// BE007: a derived variable whose divisor interval contains zero can fail
/// at runtime.
#[test]
fn be007_fallible_define() {
    let space = Space::builder("lint_be007")
        .range("x", 0, 4)
        .derived("q", lit(100) / var("x"))
        .constraint("cap", ConstraintClass::Hard, var("q").gt(50))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE007", "q", Severity::Warning));
}

/// BE008: arithmetic whose interval provably escapes `i64` wraps at
/// runtime.
#[test]
fn be008_overflow_risk() {
    let space = Space::builder("lint_be008")
        .list("x", [1i64, 4_000_000_000_000_000_000])
        .derived("big", var("x") * var("x"))
        .constraint("cap", ConstraintClass::Hard, var("big").gt(10))
        .build()
        .unwrap();
    let report = analyze::check_space(&lower(&space));
    assert!(has(&report, "BE008", "big", Severity::Warning));
}

/// BE009: the counting pass reports the exact survivor count and survival
/// rate on any space it can afford to count.
#[test]
fn be009_exact_count_info() {
    let space = Space::builder("lint_be009")
        .range("x", 0, 10)
        .constraint("cap", ConstraintClass::Hard, var("x").gt(6))
        .build()
        .unwrap();
    let report = analyze::analyze_with_counts(&lower(&space));
    assert!(has(&report, "BE009", "lint_be009", Severity::Info));
    let d = report.diagnostics.iter().find(|d| d.code == "BE009").unwrap();
    assert!(d.message.contains("7 survivor(s) of 10 tuple(s)"), "{}", d.message);
    // The plain abstract entry point never counts.
    assert!(!analyze::check_space(&lower(&space))
        .diagnostics
        .iter()
        .any(|d| d.code == "BE009"));
}

/// BE010: a needle-in-a-haystack space (1 survivor in 100,000 tuples)
/// warns that rejection sampling is impractical.
#[test]
fn be010_low_survival_rate_warns() {
    let space = Space::builder("lint_be010")
        .range("x", 0, 100_000)
        .constraint("needle", ConstraintClass::Hard, var("x").ne(42))
        .build()
        .unwrap();
    let report = analyze::analyze_with_counts(&lower(&space));
    assert!(has(&report, "BE010", "lint_be010", Severity::Warning));
    let d = report.diagnostics.iter().find(|d| d.code == "BE010").unwrap();
    assert!(d.message.contains("below 1e-4"), "{}", d.message);
    assert!(!report.has_errors());
}

/// BE001 with an exact-count witness: `x·(x+1)` is always even, so a
/// constraint rejecting even products empties the space — but neither the
/// interval hull of `x·(x+1) % 2` (which is `[0, 1]`) nor any single-slot
/// residue fact can prove it. Only the counting pass sees zero survivors.
#[test]
fn be001_empty_space_by_exact_count_only() {
    let space = Space::builder("lint_be001_count")
        .range("x", 0, 10)
        .constraint(
            "consecutive_even",
            ConstraintClass::Hard,
            ((var("x") * (var("x") + 1)) % 2).eq(0),
        )
        .build()
        .unwrap();
    let lp = lower(&space);
    // The abstract passes alone cannot prove emptiness...
    assert!(
        !analyze::check_space(&lp).has_errors(),
        "abstract pass unexpectedly proved emptiness — the fixture no longer \
         isolates the counting witness"
    );
    // ...the counting pass can, and names the space rather than a constraint.
    let report = analyze::analyze_with_counts(&lp);
    assert!(has(&report, "BE001", "lint_be001_count", Severity::Error));
    assert!(report.has_errors());
    let d = report.diagnostics.iter().find(|d| d.code == "BE001").unwrap();
    assert!(d.message.contains("counting pass"), "{}", d.message);
}

/// The engine-side gate: `Deny` refuses to sweep a space with an
/// error-severity finding, `Warn` (the default) sweeps and records the
/// summary, `Allow` skips analysis entirely.
#[test]
fn lint_gate_controls_the_engine() {
    let space = Space::builder("lint_gate")
        .range("x", 1, 17)
        .constraint("always_fires", ConstraintClass::Hard, var("x").ge(1))
        .build()
        .unwrap();
    let lp = lower(&space);

    let deny = Compiled::with_options(
        lp.clone(),
        EngineOptions { lint: LintGate::Deny, ..EngineOptions::default() },
    );
    match deny.run(CountVisitor::default()) {
        Err(EvalError::Custom(msg)) => {
            assert!(msg.contains("lint gate"), "unexpected message: {msg}")
        }
        other => panic!("deny gate let a provably-empty space sweep: {other:?}"),
    }

    // Warn (default): the sweep runs — and indeed finds nothing — while
    // the summary is recorded for telemetry.
    let warn = Compiled::with_options(lp.clone(), EngineOptions::default());
    let sum = warn.lint_summary().expect("warn gate records a summary");
    assert_eq!(sum.errors, 1);
    let out = warn.run(CountVisitor::default()).unwrap();
    assert_eq!(out.visitor.count, 0);

    // Allow: no analysis at all.
    let allow = Compiled::with_options(
        lp,
        EngineOptions { lint: LintGate::Allow, ..EngineOptions::default() },
    );
    assert!(allow.lint_summary().is_none());
}
