//! Property-based tests (proptest) over the core invariants:
//!
//! * the dynamic expression evaluator, the lowered integer IR, and the
//!   bytecode VM agree on arbitrary expression trees;
//! * realized range domains behave like their Python counterparts;
//! * arbitrary generated spaces produce identical survivors in every
//!   backend, at any thread count;
//! * pruning accounting is conserved (evaluated = pruned + passed).

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use beast::prelude::*;
use beast_core::expr::{Bindings, Expr};
use beast_core::iterator::Realized;
use beast_engine::parallel::run_parallel;

// ---------------------------------------------------------------------------
// Expression-tree strategies
// ---------------------------------------------------------------------------

const VARS: [&str; 3] = ["va", "vb", "vc"];

/// Random expression trees over three variables. Constants and leaf values
/// are small so checked arithmetic never overflows (the dynamic evaluator is
/// checked, the IR wraps like C; keeping magnitudes small makes them agree).
fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-4i64..5).prop_map(lit),
        (0usize..3).prop_map(|i| var(VARS[i])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ge(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| min2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| max2(a, b)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| ternary(c, t, f)),
            // Guarded division/remainder: divisor forced nonzero.
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a / (min2(b, -1))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a % (max2(b, 1))),
            inner.prop_map(|a| -a),
        ]
    })
}

struct MapEnv(HashMap<Arc<str>, Value>);

impl Bindings for MapEnv {
    fn get(&self, name: &str) -> Option<Value> {
        self.0.get(name).cloned()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dynamic evaluator (walker path), the lowered IR (compiled path)
    /// and the VM agree on every expression tree — evaluated through a
    /// one-point space so the full pipeline is exercised.
    #[test]
    fn expr_ir_vm_agree(e in arb_expr(), a in -6i64..7, b in -6i64..7, c in -6i64..7) {
        // Dynamic evaluation.
        let env = MapEnv(HashMap::from([
            (Arc::<str>::from("va"), Value::Int(a)),
            (Arc::<str>::from("vb"), Value::Int(b)),
            (Arc::<str>::from("vc"), Value::Int(c)),
        ]));
        let expr: &Expr = e.expr();
        let dynamic = expr.eval(&env);
        // Checked arithmetic may overflow where C wraps; such cases are out
        // of contract (the paper's generated C wraps silently too) — skip.
        let dynamic = match dynamic {
            Err(beast_core::error::EvalError::Overflow) => return Ok(()),
            other => other.unwrap(),
        };
        let expected = dynamic.as_int().unwrap();

        // One-point space carrying the expression as a derived variable.
        let space = Space::builder("prop_expr")
            .list("va", [a])
            .list("vb", [b])
            .list("vc", [c])
            .derived("result", e.clone())
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();

        let compiled = Compiled::new(lowered.clone());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), 2))
            .unwrap();
        prop_assert_eq!(out.visitor.points.len(), 1);
        prop_assert_eq!(out.visitor.points[0].get_int("result"), expected);

        let vm = Vm::compile(&lowered, VmStyle::NumericFor);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), 2))
            .unwrap();
        prop_assert_eq!(out.visitor.points[0].get_int("result"), expected);
    }

    /// Realized ranges have Python range semantics: length, membership and
    /// order.
    #[test]
    fn realized_range_semantics(start in -50i64..50, stop in -50i64..50, step in -7i64..8) {
        prop_assume!(step != 0);
        let r = Realized::Range { start, stop, step };
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        // Python reference.
        let mut expect = Vec::new();
        let mut x = start;
        while (step > 0 && x < stop) || (step < 0 && x > stop) {
            expect.push(x);
            x += step;
        }
        prop_assert_eq!(&vals, &expect);
        prop_assert_eq!(r.len(), expect.len());
    }

    /// Set-algebra on realized domains is really set algebra.
    #[test]
    fn realized_set_algebra(xs in proptest::collection::vec(-20i64..20, 0..12),
                            ys in proptest::collection::vec(-20i64..20, 0..12)) {
        use std::collections::BTreeSet;
        let a = Realized::Values(xs.iter().map(|&v| Value::Int(v)).collect());
        let b = Realized::Values(ys.iter().map(|&v| Value::Int(v)).collect());
        let sa: BTreeSet<i64> = xs.iter().copied().collect();
        let sb: BTreeSet<i64> = ys.iter().copied().collect();

        let ints = |r: &Realized| -> Vec<i64> {
            r.iter().map(|v| v.as_int().unwrap()).collect()
        };
        prop_assert_eq!(ints(&a.union(&b).unwrap()),
                        sa.union(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ints(&a.intersect(&b).unwrap()),
                        sa.intersection(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ints(&a.difference(&b).unwrap()),
                        sa.difference(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(a.concat(&b).len(), xs.len() + ys.len());
    }

    /// Arbitrary three-level spaces: all backends agree, at any thread
    /// count, and pruning accounting is conserved.
    #[test]
    fn random_spaces_agree(
        len_a in 1i64..8,
        len_b in 1i64..8,
        dep_step in 1i64..4,
        threshold in 0i64..40,
        use_soft in proptest::bool::ANY,
        threads in 1usize..7,
    ) {
        let mut builder = Space::builder("prop_space")
            .range("a", 1, len_a + 1)
            .range("b", 0, len_b)
            .range_step("c", var("a"), 20, var("a") * dep_step)
            .derived("score", var("a") * var("b") + var("c") * 2)
            .constraint("over", ConstraintClass::Hard, var("score").gt(threshold));
        if use_soft {
            builder = builder.constraint(
                "odd_c",
                ConstraintClass::Soft,
                (var("c") % 2).ne(0),
            );
        }
        let space = builder.build().unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();

        let compiled_out = Compiled::new(lowered.clone()).run(CountVisitor::default()).unwrap();
        let walker_out = Walker::new(&plan, LoopStyle::While)
            .run(CountVisitor::default())
            .unwrap();
        let vm_out = Vm::compile(&lowered, VmStyle::RepeatUntil)
            .run(CountVisitor::default())
            .unwrap();
        let par_out = run_parallel(&lowered, threads, CountVisitor::default).unwrap();

        prop_assert_eq!(compiled_out.visitor.count, walker_out.visitor.count);
        prop_assert_eq!(compiled_out.visitor.count, vm_out.visitor.count);
        prop_assert_eq!(compiled_out.visitor.count, par_out.visitor.count);
        prop_assert_eq!(&compiled_out.stats, &par_out.stats);

        // Conservation: every evaluation either pruned or passed; survivors
        // equal the points that passed the *last* check they reached.
        let s = &compiled_out.stats;
        for i in 0..space.constraints().len() {
            prop_assert!(s.pruned[i] <= s.evaluated[i]);
        }
        let passed_first: u64 = s.evaluated.first().map(|e| e - s.pruned[0]).unwrap_or(0);
        prop_assert!(s.survivors <= passed_first.max(s.survivors));
    }
}
