//! Randomized property tests over the core invariants:
//!
//! * the dynamic expression evaluator, the lowered integer IR, and the
//!   bytecode VM agree on arbitrary expression trees;
//! * realized range domains behave like their Python counterparts;
//! * arbitrary generated spaces produce identical survivors in every
//!   backend, at any thread count;
//! * pruning accounting is conserved (evaluated = pruned + passed);
//! * the static interval analysis is *sound*: every successful evaluation
//!   lands inside the predicted interval, and an expression marked `clean`
//!   never fails at runtime (the contract the block pruner's subtree skips
//!   rely on);
//! * the congruence domain's transfer functions are sound against concrete
//!   arithmetic, the interval × congruence reduced product never drops a
//!   member, and the product evaluator keeps the interval half bit-identical
//!   to interval-only evaluation (the contract congruence subtree skips and
//!   the determinism suite rely on);
//! * the batched lane evaluator agrees lane-for-lane with the scalar
//!   postfix interpreter on random programs and arbitrary (including
//!   `i64`-extreme) lane values, and its fallible mask is sound: a lane
//!   left unflagged always evaluates cleanly to the identical value (the
//!   contract the compiled engine's batch tier relies on).
//!
//! Cases are generated from a fixed-seed [`StdRng`] (the vendored std-only
//! shim), so every run exercises the same case set — failures reproduce
//! without a shrinker.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use beast::prelude::*;
use beast_core::analyze::{cg_of_bind, cg_of_values, eval_product, reduce, Congruence};
use beast_core::expr::{lit, max2, min2, ternary, Bindings, Builtin, Expr, E};
use beast_core::interval::{interval_of, Interval, IntervalOutcome, IvProg};
use beast_core::ir::{IntBinOp, IntExpr, LBody, LIter, LStep};
use beast_core::iterator::Realized;
use beast_engine::lanes::{EvalScratch, LaneProg, LANES};
use beast_engine::parallel::run_parallel;
use beast_engine::postfix::Postfix;

const VARS: [&str; 3] = ["va", "vb", "vc"];

/// Random expression trees over three variables. Constants and leaf values
/// are small so checked arithmetic rarely overflows (the dynamic evaluator
/// is checked, the IR wraps like C; keeping magnitudes small makes them
/// agree — overflowing cases are skipped as out of contract).
fn arb_expr(rng: &mut StdRng, depth: usize) -> E {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            lit(rng.gen_range(-4i64..5))
        } else {
            var(VARS[rng.gen_range(0usize..3)])
        };
    }
    let a = arb_expr(rng, depth - 1);
    let b = arb_expr(rng, depth - 1);
    match rng.gen_range(0u32..14) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a.lt(b),
        4 => a.ge(b),
        5 => a.eq(b),
        6 => a.and(b),
        7 => a.or(b),
        8 => min2(a, b),
        9 => max2(a, b),
        10 => ternary(arb_expr(rng, depth - 1), a, b),
        // Guarded division/remainder: divisor forced nonzero.
        11 => a / min2(b, -1),
        12 => a % max2(b, 1),
        _ => -a,
    }
}

struct MapEnv(HashMap<Arc<str>, Value>);

impl Bindings for MapEnv {
    fn get(&self, name: &str) -> Option<Value> {
        self.0.get(name).cloned()
    }
}

/// The dynamic evaluator (walker path), the lowered IR (compiled path) and
/// the VM agree on every expression tree — evaluated through a one-point
/// space so the full pipeline is exercised.
#[test]
fn expr_ir_vm_agree() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7001);
    for case in 0..128 {
        let e = arb_expr(&mut rng, 3);
        let a = rng.gen_range(-6i64..7);
        let b = rng.gen_range(-6i64..7);
        let c = rng.gen_range(-6i64..7);

        // Dynamic evaluation.
        let env = MapEnv(HashMap::from([
            (Arc::<str>::from("va"), Value::Int(a)),
            (Arc::<str>::from("vb"), Value::Int(b)),
            (Arc::<str>::from("vc"), Value::Int(c)),
        ]));
        let expr: &Expr = e.expr();
        // Checked arithmetic may overflow where C wraps; such cases are out
        // of contract (the paper's generated C wraps silently too) — skip.
        let dynamic = match expr.eval(&env) {
            Err(beast_core::error::EvalError::Overflow) => continue,
            other => other.unwrap(),
        };
        let expected = dynamic.as_int().unwrap();

        // One-point space carrying the expression as a derived variable.
        let space = Space::builder("prop_expr")
            .list("va", [a])
            .list("vb", [b])
            .list("vc", [c])
            .derived("result", e.clone())
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();

        let compiled = Compiled::new(lowered.clone());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), 2))
            .unwrap();
        assert_eq!(out.visitor.points.len(), 1, "case {case}");
        assert_eq!(
            out.visitor.points[0].get_int("result"),
            expected,
            "case {case}: compiled disagrees with dynamic eval"
        );

        let vm = Vm::compile(&lowered, VmStyle::NumericFor);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), 2))
            .unwrap();
        assert_eq!(
            out.visitor.points[0].get_int("result"),
            expected,
            "case {case}: VM disagrees with dynamic eval"
        );
    }
}

/// Realized ranges have Python range semantics: length, membership, order.
#[test]
fn realized_range_semantics() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7002);
    for _ in 0..256 {
        let start = rng.gen_range(-50i64..50);
        let stop = rng.gen_range(-50i64..50);
        let step = loop {
            let s = rng.gen_range(-7i64..8);
            if s != 0 {
                break s;
            }
        };
        let r = Realized::Range { start, stop, step };
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        // Python reference.
        let mut expect = Vec::new();
        let mut x = start;
        while (step > 0 && x < stop) || (step < 0 && x > stop) {
            expect.push(x);
            x += step;
        }
        assert_eq!(vals, expect, "range({start}, {stop}, {step})");
        assert_eq!(r.len(), expect.len(), "range({start}, {stop}, {step})");
    }
}

/// Set-algebra on realized domains is really set algebra.
#[test]
fn realized_set_algebra() {
    use std::collections::BTreeSet;
    let mut rng = StdRng::seed_from_u64(0xBEA5_7003);
    for _ in 0..128 {
        let xs: Vec<i64> = (0..rng.gen_range(0usize..12))
            .map(|_| rng.gen_range(-20i64..20))
            .collect();
        let ys: Vec<i64> = (0..rng.gen_range(0usize..12))
            .map(|_| rng.gen_range(-20i64..20))
            .collect();
        let a = Realized::Values(xs.iter().map(|&v| Value::Int(v)).collect());
        let b = Realized::Values(ys.iter().map(|&v| Value::Int(v)).collect());
        let sa: BTreeSet<i64> = xs.iter().copied().collect();
        let sb: BTreeSet<i64> = ys.iter().copied().collect();

        let ints =
            |r: &Realized| -> Vec<i64> { r.iter().map(|v| v.as_int().unwrap()).collect() };
        assert_eq!(
            ints(&a.union(&b).unwrap()),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            ints(&a.intersect(&b).unwrap()),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            ints(&a.difference(&b).unwrap()),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(a.concat(&b).len(), xs.len() + ys.len());
    }
}

/// Arbitrary three-level spaces: all backends agree, at any thread count,
/// and pruning accounting is conserved.
#[test]
fn random_spaces_agree() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7004);
    for case in 0..64 {
        let len_a = rng.gen_range(1i64..8);
        let len_b = rng.gen_range(1i64..8);
        let dep_step = rng.gen_range(1i64..4);
        let threshold = rng.gen_range(0i64..40);
        let use_soft = rng.gen_bool(0.5);
        let threads = rng.gen_range(1usize..7);

        let mut builder = Space::builder("prop_space")
            .range("a", 1, len_a + 1)
            .range("b", 0, len_b)
            .range_step("c", var("a"), 20, var("a") * dep_step)
            .derived("score", var("a") * var("b") + var("c") * 2)
            .constraint("over", ConstraintClass::Hard, var("score").gt(threshold));
        if use_soft {
            builder =
                builder.constraint("odd_c", ConstraintClass::Soft, (var("c") % 2).ne(0));
        }
        let space = builder.build().unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();

        let compiled_out = Compiled::new(lowered.clone())
            .run(CountVisitor::default())
            .unwrap();
        let walker_out = Walker::new(&plan, LoopStyle::While)
            .run(CountVisitor::default())
            .unwrap();
        let vm_out = Vm::compile(&lowered, VmStyle::RepeatUntil)
            .run(CountVisitor::default())
            .unwrap();
        let par_out = run_parallel(&lowered, threads, CountVisitor::default).unwrap();

        assert_eq!(compiled_out.visitor.count, walker_out.visitor.count, "case {case}");
        assert_eq!(compiled_out.visitor.count, vm_out.visitor.count, "case {case}");
        assert_eq!(compiled_out.visitor.count, par_out.visitor.count, "case {case}");
        assert_eq!(compiled_out.stats, par_out.stats, "case {case}");

        // Conservation: every evaluation either pruned or passed; survivors
        // equal the points that passed the *last* check they reached.
        let s = &compiled_out.stats;
        for i in 0..space.constraints().len() {
            assert!(s.pruned[i] <= s.evaluated[i], "case {case}");
        }
        let passed_first: u64 = s.evaluated.first().map(|e| e - s.pruned[0]).unwrap_or(0);
        assert!(s.survivors <= passed_first.max(s.survivors), "case {case}");
    }
}

/// Random expression trees *including unguarded division and remainder*, so
/// the interval analysis sees both failure-free and possibly-failing shapes.
fn arb_expr_unguarded(rng: &mut StdRng, depth: usize) -> E {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            lit(rng.gen_range(-4i64..5))
        } else {
            var(VARS[rng.gen_range(0usize..3)])
        };
    }
    let a = arb_expr_unguarded(rng, depth - 1);
    let b = arb_expr_unguarded(rng, depth - 1);
    match rng.gen_range(0u32..14) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a.lt(b),
        4 => a.ge(b),
        5 => a.eq(b),
        6 => a.and(b),
        7 => a.or(b),
        8 => min2(a, b),
        9 => max2(a, b),
        10 => ternary(arb_expr_unguarded(rng, depth - 1), a, b),
        11 => a / b,
        12 => a % b,
        _ => -a,
    }
}

/// Soundness of the static interval analysis behind block pruning, checked
/// exhaustively against evaluation over small random domains:
///
/// * whenever evaluation succeeds, the result is inside the predicted
///   interval;
/// * whenever the analysis claims `clean`, evaluation never errors.
///
/// This pair is exactly what makes an interval-guard subtree skip safe.
#[test]
fn interval_analysis_is_sound() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7005);
    let mut checked_points = 0u64;
    let mut unclean_cases = 0u64;
    for case in 0..256 {
        let e = arb_expr_unguarded(&mut rng, 3);
        let mut domain = |_: &str| -> Vec<i64> {
            (0..rng.gen_range(1usize..4)).map(|_| rng.gen_range(-6i64..7)).collect()
        };
        let (da, db, dc) = (domain("va"), domain("vb"), domain("vc"));
        let space = Space::builder("prop_iv")
            .list("va", da.clone())
            .list("vb", db.clone())
            .list("vc", dc.clone())
            .derived("result", e)
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();

        // Domain intervals per slot, plus the realized value lists to
        // enumerate; the simplifier may have folded the derived into the
        // bind exprs, so walk the lowered steps rather than assuming shape.
        let mut ivals = vec![Interval::TOP; lp.n_slots as usize];
        let mut binds: Vec<(u32, Vec<i64>)> = Vec::new();
        let mut target = None;
        for step in &lp.steps {
            match step {
                LStep::Bind { slot, domain: LIter::Values(v), .. } => {
                    ivals[*slot as usize] = Interval {
                        lo: v.iter().copied().min().unwrap(),
                        hi: v.iter().copied().max().unwrap(),
                    };
                    binds.push((*slot, v.clone()));
                }
                LStep::Define { slot, body: LBody::Expr(expr), .. }
                    if &*lp.slot_names[*slot as usize] == "result" =>
                {
                    target = Some(expr.clone());
                }
                _ => {}
            }
        }
        let Some(expr) = target else {
            // Fully constant-folded away; nothing to check for this case.
            continue;
        };
        let outcome = interval_of(&expr, &ivals);
        unclean_cases += u64::from(!outcome.clean);

        let mut slots = vec![0i64; lp.n_slots as usize];
        let mut enumerate = vec![0usize; binds.len()];
        loop {
            for (k, (slot, values)) in binds.iter().enumerate() {
                slots[*slot as usize] = values[enumerate[k]];
            }
            checked_points += 1;
            match expr.eval(&slots) {
                Ok(v) => assert!(
                    outcome.iv.contains(v),
                    "case {case}: eval {v} escapes predicted {:?} for {expr:?}",
                    outcome.iv
                ),
                Err(e) => assert!(
                    !outcome.clean,
                    "case {case}: `clean` expression failed with {e:?}: {expr:?}"
                ),
            }
            // Odometer over the bind domains.
            let mut k = binds.len();
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                enumerate[k] += 1;
                if enumerate[k] < binds[k].1.len() {
                    break;
                }
                enumerate[k] = 0;
            }
            if enumerate.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    // The generator must exercise both sides of the contract.
    assert!(checked_points > 1000, "degenerate case set: {checked_points} points");
    assert!(unclean_cases > 0, "no possibly-failing expressions generated");
}

/// The peephole pass shortens the real GEMM plan's postfix programs: every
/// program is no longer than its unoptimized form, and the plan as a whole
/// gets strictly shorter (folded constant subtrees, elided `Jmp 0`s and
/// redundant boolean normalizations).
#[test]
fn gemm_postfix_peephole_reduces_ops() {
    let params = beast::gemm::GemmSpaceParams::reduced(12);
    let space = beast::gemm::build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let mut raw_total = 0usize;
    let mut opt_total = 0usize;
    for step in &lp.steps {
        let exprs = match step {
            LStep::Define { body: LBody::Expr(e), .. }
            | LStep::Check { body: LBody::Expr(e), .. } => vec![e],
            LStep::Bind { domain: LIter::Range { start, stop, step }, .. } => {
                vec![start, stop, step]
            }
            _ => vec![],
        };
        for e in exprs {
            let raw = Postfix::compile_unoptimized(e).len();
            let opt = Postfix::compile(e).len();
            assert!(opt <= raw, "peephole grew a program: {opt} > {raw} for {e:?}");
            raw_total += raw;
            opt_total += opt;
        }
    }
    assert!(raw_total > 0, "GEMM plan lowered to no programs at all");
    assert!(
        opt_total < raw_total,
        "peephole found nothing to fold in the GEMM plan ({opt_total} vs {raw_total} ops)"
    );
}

/// Random lowered integer expressions over three slots, spanning every
/// non-jumpy postfix op (wrapping arithmetic, all division flavors,
/// comparisons, two-argument builtins) plus the occasional ternary — which
/// compiles to jumps and therefore exercises the "program refuses to lane-
/// compile" path.
fn arb_int_expr(rng: &mut StdRng, depth: usize) -> IntExpr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.4) {
            IntExpr::Const(rng.gen_range(-5i64..6))
        } else {
            IntExpr::Slot(rng.gen_range(0u32..3))
        };
    }
    let a = Box::new(arb_int_expr(rng, depth - 1));
    let b = Box::new(arb_int_expr(rng, depth - 1));
    match rng.gen_range(0u32..20) {
        0 => IntExpr::Bin(IntBinOp::Add, a, b),
        1 => IntExpr::Bin(IntBinOp::Sub, a, b),
        2 => IntExpr::Bin(IntBinOp::Mul, a, b),
        3 => IntExpr::Bin(IntBinOp::Div, a, b),
        4 => IntExpr::Bin(IntBinOp::FloorDiv, a, b),
        5 => IntExpr::Bin(IntBinOp::Rem, a, b),
        6 => IntExpr::Bin(IntBinOp::Lt, a, b),
        7 => IntExpr::Bin(IntBinOp::Le, a, b),
        8 => IntExpr::Bin(IntBinOp::Gt, a, b),
        9 => IntExpr::Bin(IntBinOp::Ge, a, b),
        10 => IntExpr::Bin(IntBinOp::Eq, a, b),
        11 => IntExpr::Bin(IntBinOp::Ne, a, b),
        12 => IntExpr::Call2(Builtin::Min, a, b),
        13 => IntExpr::Call2(Builtin::Max, a, b),
        14 => IntExpr::Call2(Builtin::DivCeil, a, b),
        15 => IntExpr::Call2(Builtin::Gcd, a, b),
        16 => IntExpr::Call2(Builtin::RoundUp, a, b),
        17 => IntExpr::Neg(a),
        18 => IntExpr::Abs(a),
        _ => IntExpr::Ternary(Box::new(arb_int_expr(rng, depth - 1)), a, b),
    }
}

/// Lane values spanning the full `i64` range: mostly small magnitudes (so
/// divisions and gcds take interesting values), with a steady stream of the
/// extremes that make wrapping arithmetic and `MIN / -1` overflow bite.
fn arb_lane_value(rng: &mut StdRng) -> i64 {
    const EXTREMES: [i64; 6] = [i64::MIN, i64::MIN + 1, i64::MAX, -1, 0, 1];
    if rng.gen_bool(0.25) {
        EXTREMES[rng.gen_range(0usize..EXTREMES.len())]
    } else {
        rng.gen_range(-30i64..31)
    }
}

/// The batched lane evaluator agrees lane-for-lane with the scalar postfix
/// interpreter — the exact invariant the compiled engine's batch tier rests
/// on:
///
/// * a lane whose fallible bit is *clear* must evaluate scalar-cleanly to
///   the bit-identical value (this is what lets the engine trust slab
///   results without re-running them);
/// * a lane whose fallible bit is *set* must actually fail scalar
///   evaluation — error or arithmetic panic — in debug builds, where raw
///   arithmetic traps exactly where the slab's checked probes look. (In
///   release builds raw `+`/`-` wrap where the slab stays conservative, so
///   only the soundness direction holds there.)
///
/// Slots 0 and 1 vary per lane; slot 2 is a broadcast scalar, so both the
/// `Row` and `Slot` operand paths are exercised.
#[test]
fn lane_slab_agrees_with_scalar_postfix() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut rng = StdRng::seed_from_u64(0xBEA5_7009);
    let rows: [u32; 2] = [0, 1];
    let mut lane_programs = 0u64;
    let mut refused_programs = 0u64;
    let mut fallible_lanes = 0u64;
    for case in 0..256 {
        let e = arb_int_expr(&mut rng, 3);
        let pf = Postfix::compile(&e);
        let Some(prog) = LaneProg::compile(&pf, &rows) else {
            refused_programs += 1;
            continue;
        };
        lane_programs += 1;

        let mut r0 = [0i64; LANES];
        let mut r1 = [0i64; LANES];
        for i in 0..LANES {
            r0[i] = arb_lane_value(&mut rng);
            r1[i] = arb_lane_value(&mut rng);
        }
        let broadcast = arb_lane_value(&mut rng);
        // Slots 0/1 hold garbage the `Row` operands must shadow.
        let slots = [i64::MIN, i64::MAX, broadcast];
        let mut scratch = EvalScratch::default();
        let mut out = [0i64; LANES];
        let fall = prog.eval(&slots, &[r0, r1], LANES, &mut scratch, &mut out);

        for i in 0..LANES {
            let lane_slots = [r0[i], r1[i], broadcast];
            let scalar = catch_unwind(AssertUnwindSafe(|| {
                let mut s = Vec::new();
                pf.eval(&lane_slots, &mut s)
            }));
            if fall & (1u64 << i) == 0 {
                match scalar {
                    Ok(Ok(v)) => assert_eq!(
                        v, out[i],
                        "case {case} lane {i}: slab value diverged for {e:?} on {lane_slots:?}"
                    ),
                    Ok(Err(err)) => panic!(
                        "case {case} lane {i}: unflagged lane errored ({err:?}) for {e:?} on {lane_slots:?}"
                    ),
                    Err(_) => panic!(
                        "case {case} lane {i}: unflagged lane panicked for {e:?} on {lane_slots:?}"
                    ),
                }
            } else {
                fallible_lanes += 1;
                // In debug builds the slab's checked probes match the raw
                // arithmetic traps exactly; in release raw ops wrap where
                // the probes stay conservative, so exactness only holds
                // here.
                #[cfg(debug_assertions)]
                assert!(
                    !matches!(scalar, Ok(Ok(_))),
                    "case {case} lane {i}: flagged lane evaluated cleanly for {e:?} on {lane_slots:?}"
                );
            }
        }
    }
    assert!(lane_programs > 100, "degenerate case set: {lane_programs} lane programs");
    assert!(refused_programs > 0, "no jumpy programs exercised the refusal path");
    assert!(fallible_lanes > 0, "no lane ever went fallible");
}

/// Random congruence-domain elements: exact points and small progressions.
fn arb_cg(rng: &mut StdRng) -> Congruence {
    if rng.gen_bool(0.3) {
        Congruence::point(rng.gen_range(-9i64..10))
    } else {
        let m = rng.gen_range(1i64..13);
        Congruence { m, r: rng.gen_range(0..m) }
    }
}

/// A finite sample of an abstract value's concretization, straddling zero
/// so negative members are exercised too.
fn cg_members(cg: &Congruence) -> Vec<i64> {
    match cg.as_point() {
        Some(v) => vec![v],
        None => (-3i64..=3).map(|k| cg.r + k * cg.m).collect(),
    }
}

/// Soundness of every congruence transfer function against concrete
/// arithmetic: for random abstract values and members `x`, `y` of their
/// concretizations, the concrete result of each operation is a member of
/// the abstract result. Magnitudes stay far from `i64::MAX`, where the
/// mathematical and wrapping results coincide — the wrap regime is exactly
/// where the reduced product drops to ⊤ (`reduce_never_drops_members`).
#[test]
fn congruence_transfers_are_sound() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7006);
    for case in 0..512 {
        let a = arb_cg(&mut rng);
        let b = arb_cg(&mut rng);
        let (join, neg) = (a.join(b), -a);
        let (add, sub, mul) = (a + b, a - b, a * b);
        let (div, rem) = (a / b, a % b);
        let ne = a.never_equal(b);
        for &x in &cg_members(&a) {
            assert!(a.contains(x), "case {case}: member generator broke contains");
            assert!(join.contains(x), "case {case}: join dropped {x} from {a:?}");
            assert!(neg.contains(-x), "case {case}: neg({a:?}) lost {}", -x);
            if a.always_nonzero() {
                assert_ne!(x, 0, "case {case}: always_nonzero lied for {a:?}");
            }
            for &y in &cg_members(&b) {
                assert!(join.contains(y), "case {case}: join dropped {y} from {b:?}");
                assert!(add.contains(x + y), "case {case}: add lost {x}+{y} for {a:?}+{b:?}");
                assert!(sub.contains(x - y), "case {case}: sub lost {x}-{y} for {a:?}-{b:?}");
                assert!(mul.contains(x * y), "case {case}: mul lost {x}*{y} for {a:?}*{b:?}");
                if y != 0 {
                    assert!(div.contains(x / y), "case {case}: div lost {x}/{y} for {a:?}/{b:?}");
                    assert!(rem.contains(x % y), "case {case}: rem lost {x}%{y} for {a:?}%{b:?}");
                }
                if ne {
                    assert_ne!(x, y, "case {case}: never_equal lied for {a:?} vs {b:?}");
                }
            }
        }
        // The bind/values constructors cover their whole concretization too.
        let start = rng.gen_range(-20i64..21);
        let step = rng.gen_range(-6i64..7);
        let bind = cg_of_bind(Congruence::point(start), Congruence::point(step));
        for k in 0..5 {
            assert!(
                bind.contains(start + k * step),
                "case {case}: cg_of_bind({start}, step {step}) lost iteration {k}"
            );
        }
        let vals: Vec<i64> =
            (0..rng.gen_range(1usize..8)).map(|_| rng.gen_range(-30i64..31)).collect();
        let hull = cg_of_values(&vals);
        for &v in &vals {
            assert!(hull.contains(v), "case {case}: cg_of_values({vals:?}) lost {v}");
        }
    }
}

/// The product reduction never drops a member: every value inside both the
/// interval and the congruence concretizations is still in the reduced
/// congruence, across all flag combinations (point intervals collapse the
/// congruence to that point, widened outcomes collapse it to ⊤, everything
/// else passes through unchanged).
#[test]
fn reduce_never_drops_members() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7007);
    for case in 0..512 {
        let lo = rng.gen_range(-12i64..13);
        let hi = lo + rng.gen_range(0i64..9);
        let outcome = IntervalOutcome {
            iv: Interval { lo, hi },
            clean: rng.gen_bool(0.5),
            widened: rng.gen_bool(0.5),
        };
        let cg = arb_cg(&mut rng);
        let reduced = reduce(&outcome, cg);
        for v in lo..=hi {
            if cg.contains(v) {
                assert!(
                    reduced.contains(v),
                    "case {case}: reduce dropped {v} from {outcome:?} × {cg:?}"
                );
            }
        }
    }
}

/// Soundness of the interval × congruence product evaluator, checked
/// against concrete evaluation over small random domains:
///
/// * the interval half is bit-identical to the interval-only program, so
///   guard worthiness/elision verdicts cannot shift when the congruence
///   domain is enabled (the survivors-identical contract of
///   `ablation_congruence` and the determinism suite);
/// * whenever concrete evaluation succeeds, the result is a member of the
///   reduced congruence (what makes a congruence subtree skip safe).
#[test]
fn product_eval_is_sound_and_interval_identical() {
    let mut rng = StdRng::seed_from_u64(0xBEA5_7008);
    let mut checked_points = 0u64;
    let mut residue_facts = 0u64;
    for case in 0..256 {
        let e = arb_expr_unguarded(&mut rng, 3);
        let mut domain = |_: &str| -> Vec<i64> {
            (0..rng.gen_range(1usize..4)).map(|_| rng.gen_range(-6i64..7)).collect()
        };
        let (da, db, dc) = (domain("va"), domain("vb"), domain("vc"));
        let space = Space::builder("prop_cg")
            .list("va", da)
            .list("vb", db)
            .list("vc", dc)
            .derived("result", e)
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();

        let mut ivals = vec![Interval::TOP; lp.n_slots as usize];
        let mut cvals = vec![Congruence::top(); lp.n_slots as usize];
        let mut binds: Vec<(u32, Vec<i64>)> = Vec::new();
        let mut target = None;
        for step in &lp.steps {
            match step {
                LStep::Bind { slot, domain: LIter::Values(v), .. } => {
                    ivals[*slot as usize] = Interval {
                        lo: v.iter().copied().min().unwrap(),
                        hi: v.iter().copied().max().unwrap(),
                    };
                    cvals[*slot as usize] = cg_of_values(v);
                    binds.push((*slot, v.clone()));
                }
                LStep::Define { slot, body: LBody::Expr(expr), .. }
                    if &*lp.slot_names[*slot as usize] == "result" =>
                {
                    target = Some(expr.clone());
                }
                _ => {}
            }
        }
        let Some(expr) = target else {
            continue;
        };
        let prog = IvProg::compile(&expr);
        let mut iv_stack = Vec::new();
        let mut prod_stack = Vec::new();
        let iv_only = prog.eval(&ivals, &mut iv_stack);
        let (prod_iv, prod_cg) = eval_product(&prog, &ivals, &cvals, &mut prod_stack);
        assert_eq!(
            prod_iv, iv_only,
            "case {case}: congruence changed the interval half for {expr:?}"
        );
        residue_facts += u64::from(!prod_cg.is_top());

        let mut slots = vec![0i64; lp.n_slots as usize];
        let mut enumerate = vec![0usize; binds.len()];
        loop {
            for (k, (slot, values)) in binds.iter().enumerate() {
                slots[*slot as usize] = values[enumerate[k]];
            }
            checked_points += 1;
            if let Ok(v) = expr.eval(&slots) {
                assert!(
                    prod_iv.iv.contains(v),
                    "case {case}: eval {v} escapes interval {:?} for {expr:?}",
                    prod_iv.iv
                );
                assert!(
                    prod_cg.contains(v),
                    "case {case}: eval {v} escapes congruence {prod_cg:?} for {expr:?}"
                );
            }
            let mut k = binds.len();
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                enumerate[k] += 1;
                if enumerate[k] < binds[k].1.len() {
                    break;
                }
                enumerate[k] = 0;
            }
            if enumerate.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    assert!(checked_points > 1000, "degenerate case set: {checked_points} points");
    assert!(residue_facts > 0, "congruence half never learned a residue fact");
}
