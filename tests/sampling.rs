//! Zero-rejection direct sampling, end to end: every draw on the GEMM
//! space is a validated survivor, sampling is deterministic per seed, the
//! draw distribution is uniform (chi-square smoke), and the search
//! algorithms stay seed-deterministic under both sampler kinds.

use std::collections::HashMap;
use std::sync::Arc;

use beast::gemm::{build_gemm_space, GemmSpaceParams};
use beast::prelude::*;
use beast::search::{
    hill_climb, random_search, simulated_annealing, DirectSampler, Sampler, SamplerKind,
    SearchBudget,
};
use beast_core::ir::LStep;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lower(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

fn gemm16() -> LoweredPlan {
    lower(&build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap())
}

/// Pull the iterator `(slot, value)` pairs out of a sampled point so the
/// rejection sampler's independent validator can re-check them.
fn iter_assignment(lp: &LoweredPlan, p: &Point) -> Vec<(u32, i64)> {
    lp.steps
        .iter()
        .filter_map(|s| match s {
            LStep::Bind { slot, .. } => {
                Some((*slot, p.get_int(&lp.slot_names[*slot as usize])))
            }
            _ => None,
        })
        .collect()
}

/// The headline satellite: 1000 direct draws on GEMM reduced(16), zero
/// rejections, every point independently validated by the rejection
/// sampler's `evaluate_assignment` (re-realized domains, re-evaluated
/// deriveds and constraints).
#[test]
fn thousand_gemm_draws_are_all_survivors_with_zero_rejections() {
    let lp = gemm16();
    let mut direct = DirectSampler::new(&lp, StdRng::seed_from_u64(7)).unwrap();
    let mut validator = Sampler::new(&lp, StdRng::seed_from_u64(0));
    for i in 0..1000 {
        let p = direct.sample().unwrap().expect("space is nonempty");
        let pairs = iter_assignment(&lp, &p);
        assert!(
            validator.evaluate_assignment(&pairs).unwrap().is_some(),
            "draw {i} is not a survivor: {pairs:?}"
        );
    }
    assert_eq!(direct.stats.accepted, 1000);
    assert_eq!(direct.stats.rejected, 0, "direct sampling must never reject");
    assert_eq!(direct.stats.dead_ends, 0, "direct sampling must never dead-end");
}

/// The same seed draws the same GEMM points; a different seed does not.
#[test]
fn gemm_sampling_is_deterministic_per_seed() {
    let lp = gemm16();
    let draw = |seed: u64| -> Vec<String> {
        let mut s = DirectSampler::new(&lp, StdRng::seed_from_u64(seed)).unwrap();
        (0..50).map(|_| format!("{:?}", s.sample().unwrap().unwrap().values())).collect()
    };
    assert_eq!(draw(3), draw(3));
    assert_ne!(draw(3), draw(4));
}

/// A small dependent space whose survivors can be enumerated outright:
/// `a ∈ 1..9`, `b ∈ a..33 step a`, pruning `a·b > 30` — 42 survivors.
fn small_space() -> Arc<Space> {
    Space::builder("chi")
        .range_step("a", lit(1), lit(9), lit(1))
        .range_step("b", var("a"), lit(33), var("a"))
        .derived("ab", var("a") * var("b"))
        .constraint("cap", ConstraintClass::Hard, var("ab").gt(30))
        .build()
        .unwrap()
}

/// Chi-square uniformity smoke: draw 200·K samples from a K-survivor
/// space and check the statistic against mean + 6σ of the χ²(K−1)
/// distribution. The index→survivor bijection (`point_at`) enumerates the
/// expected support exactly.
#[test]
fn direct_draws_are_uniform_chi_square_smoke() {
    let lp = lower(&small_space());
    let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(11)).unwrap();
    let total = sampler.total();
    assert_eq!(total, 42, "fixture survivor count drifted");
    let k = total as usize;

    let mut support: HashMap<String, u64> = HashMap::new();
    for idx in 0..total {
        let p = sampler.point_at(idx).unwrap();
        support.insert(format!("{:?}", p.values()), 0);
    }
    assert_eq!(support.len(), k, "point_at is not injective");

    let n = 200 * k as u64;
    for _ in 0..n {
        let p = sampler.sample().unwrap().unwrap();
        *support.get_mut(&format!("{:?}", p.values())).expect("draw outside support") += 1;
    }

    let expected = n as f64 / k as f64;
    let stat: f64 =
        support.values().map(|&o| (o as f64 - expected).powi(2) / expected).sum();
    let df = (k - 1) as f64;
    let bound = df + 6.0 * (2.0 * df).sqrt();
    assert!(stat < bound, "chi-square statistic {stat:.1} exceeds {bound:.1} (df {df})");
}

/// Hill climbing, annealing and random search all replay bit-identically
/// for a fixed seed, under the rejection sampler and the direct sampler
/// alike — and the direct sampler never rejects along the way.
#[test]
fn search_algorithms_are_deterministic_per_seed_under_both_samplers() {
    let lp = gemm16();
    let score = |p: &Point| {
        p.values().iter().map(|v| v.as_int().unwrap() as f64).sum::<f64>()
    };
    for kind in [SamplerKind::Rejection, SamplerKind::Direct] {
        let budget = SearchBudget {
            evaluations: 30,
            attempts_per_sample: 100_000,
            sampler: kind,
        };
        let rs =
            |seed: u64| random_search(&lp, StdRng::seed_from_u64(seed), budget, score).unwrap();
        let hc =
            |seed: u64| hill_climb(&lp, StdRng::seed_from_u64(seed), budget, 6, score).unwrap();
        let sa = |seed: u64| {
            simulated_annealing(&lp, StdRng::seed_from_u64(seed), budget, 50.0, 0.99, score)
                .unwrap()
        };
        for (name, a, b) in [
            ("random_search", rs(9), rs(9)),
            ("hill_climb", hc(9), hc(9)),
            ("simulated_annealing", sa(9), sa(9)),
        ] {
            assert_eq!(a.evaluations, b.evaluations, "{kind:?} {name}: evaluations differ");
            assert_eq!(a.history, b.history, "{kind:?} {name}: history differs");
            assert_eq!(
                format!("{:?}", a.best),
                format!("{:?}", b.best),
                "{kind:?} {name}: best point differs"
            );
            assert!(a.best.is_some(), "{kind:?} {name}: found nothing");
        }
    }
}
