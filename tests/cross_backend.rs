//! Cross-backend equivalence: every evaluation backend — the AST walker in
//! all three loop styles, the bytecode VM in all three loop styles, the
//! compiled engine, and the parallel driver at several thread counts — must
//! produce identical survivors and pruning statistics for the same space.
//! This is the load-bearing guarantee behind the paper's performance claims:
//! the backends differ *only* in speed.
//!
//! The compiled engine's interval block pruner is exercised as a second
//! cohort: with intervals *off* the compiled/parallel backends match the
//! walker's statistics bit for bit; with intervals *on* they must still
//! produce identical survivors in identical order, agree exactly with each
//! other, and may only ever *shrink* per-constraint evaluation counts
//! (skipped subtrees are work the per-point backends did needlessly).

use std::sync::Arc;

use beast::prelude::*;
use beast_engine::compiled::EngineOptions;
use beast_engine::parallel::{run_parallel_report, ParallelOptions};

/// Canonical result of a sweep: survivors as sorted tuples + stats.
fn all_backend_results(space: &Arc<Space>) -> Vec<(String, PruneStats, Vec<Vec<i64>>)> {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    let lowered = LoweredPlan::new(&plan).unwrap();
    let mut results = Vec::new();

    let points_of = |points: &[Point]| -> Vec<Vec<i64>> {
        points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect()
    };

    for style in [LoopStyle::While, LoopStyle::RangeMaterialized, LoopStyle::RangeLazy] {
        let walker = Walker::new(&plan, style);
        let out = walker
            .run(CollectVisitor::new(walker.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            format!("walker/{style:?}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    for style in [VmStyle::While, VmStyle::RepeatUntil, VmStyle::NumericFor] {
        let vm = Vm::compile(&lowered, style);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            format!("vm/{style:?}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    {
        let compiled =
            Compiled::with_options(lowered.clone(), EngineOptions::no_intervals());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap();
        results.push(("compiled".into(), out.stats, points_of(&out.visitor.points)));
    }
    for threads in [2usize, 5] {
        let names = Compiled::new(lowered.clone()).point_names().clone();
        let opts = ParallelOptions {
            threads,
            engine: EngineOptions::no_intervals(),
            ..ParallelOptions::default()
        };
        let (out, _) = run_parallel_report(&lowered, &opts, || {
            CollectVisitor::new(names.clone(), usize::MAX)
        })
        .unwrap();
        results.push((
            format!("parallel/{threads}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    results
}

/// The intervals-on cohort: serial compiled engine plus the parallel driver
/// at two thread counts, all with block pruning enabled.
fn interval_backend_results(
    space: &Arc<Space>,
) -> Vec<(String, PruneStats, BlockStats, Vec<Vec<i64>>)> {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    let lowered = LoweredPlan::new(&plan).unwrap();
    let points_of = |points: &[Point]| -> Vec<Vec<i64>> {
        points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect()
    };
    let mut results = Vec::new();
    {
        let compiled = Compiled::new(lowered.clone());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            "compiled+iv".to_string(),
            out.stats,
            out.blocks,
            points_of(&out.visitor.points),
        ));
    }
    for threads in [2usize, 5] {
        let names = Compiled::new(lowered.clone()).point_names().clone();
        let opts = ParallelOptions { threads, ..ParallelOptions::default() };
        let (out, _) = run_parallel_report(&lowered, &opts, || {
            CollectVisitor::new(names.clone(), usize::MAX)
        })
        .unwrap();
        results.push((
            format!("parallel+iv/{threads}"),
            out.stats,
            out.blocks,
            points_of(&out.visitor.points),
        ));
    }
    results
}

/// The walker binds every variable by name while slot backends use dense
/// indices; surviving-point *values* must nevertheless agree column-for-
/// column because all backends report the same variable order.
fn assert_all_agree(space: Arc<Space>) {
    let results = all_backend_results(&space);
    let (ref_name, ref_stats, ref_points) = &results[0];
    assert!(
        !ref_points.is_empty() || ref_stats.total_pruned() > 0,
        "degenerate test space"
    );
    for (name, stats, points) in &results[1..] {
        assert_eq!(stats, ref_stats, "{name} vs {ref_name}: stats differ");
        assert_eq!(points, ref_points, "{name} vs {ref_name}: survivors differ");
    }

    // Intervals-on cohort: identical survivors and visit order, identical
    // rejections-or-fewer, never more work than the per-point backends —
    // and exact agreement (stats and block counters) within the cohort.
    let iv = interval_backend_results(&space);
    let (iv_ref_name, iv_ref_stats, iv_ref_blocks, iv_ref_points) = &iv[0];
    assert_eq!(
        iv_ref_points, ref_points,
        "{iv_ref_name} vs {ref_name}: intervals changed survivors"
    );
    assert_eq!(iv_ref_stats.survivors, ref_stats.survivors);
    for (i, (a, b)) in iv_ref_stats.evaluated.iter().zip(&ref_stats.evaluated).enumerate() {
        assert!(a <= b, "{iv_ref_name}: intervals increased evaluations of constraint {i}");
    }
    for (i, (a, b)) in iv_ref_stats.pruned.iter().zip(&ref_stats.pruned).enumerate() {
        assert!(a <= b, "{iv_ref_name}: intervals increased rejections of constraint {i}");
    }
    for (name, stats, blocks, points) in &iv[1..] {
        assert_eq!(stats, iv_ref_stats, "{name} vs {iv_ref_name}: stats differ");
        assert_eq!(blocks, iv_ref_blocks, "{name} vs {iv_ref_name}: block counters differ");
        assert_eq!(points, iv_ref_points, "{name} vs {iv_ref_name}: survivors differ");
    }
}

#[test]
fn dependent_ranges_with_derived_and_constraints() {
    let space = Space::builder("cross1")
        .constant("cap", 60)
        .range("a", 1, 9)
        .range("b", 1, 9)
        .range_step("c", var("a"), 33, var("a"))
        .derived("abc", var("a") * var("b") + var("c"))
        .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
        .constraint("odd", ConstraintClass::Soft, (var("c") % 2).ne(0))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn ternaries_short_circuits_and_builtins() {
    let space = Space::builder("cross2")
        .range("x", 0, 24)
        .range("y", 1, 7)
        .derived("m", min2(var("x"), var("y") * 3))
        .derived(
            "pick",
            ternary(var("x").gt(12), var("m") - var("y"), var("m") + var("y")),
        )
        .constraint(
            "guarded",
            ConstraintClass::Generic,
            var("x").ne(0).and((lit(48) % var("x")).eq(0)).not(),
        )
        .constraint("pick_small", ConstraintClass::Soft, var("pick").lt(2))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn negative_steps_lists_and_unions() {
    use beast_core::iterator::build as ib;
    let space = Space::builder("cross3")
        .iter(
            "s",
            ib::union(ib::list([3i64, 9, 27]), ib::range_step(lit(0), lit(20), lit(4))),
        )
        .range_step("d", var("s"), -1, -2)
        .constraint("tiny", ConstraintClass::Soft, var("d").lt(1))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn opaque_deferred_everything() {
    use beast_core::iterator::Realized;
    let space = Space::builder("cross4")
        .constant("cap", 10)
        .range("n", 1, 8)
        .deferred_iter("d", &["n"], |env| {
            let n = env.require_int("n")?;
            Ok(Realized::Range { start: n, stop: 0, step: -1 })
        })
        .derived_fn("dd", &["d", "n"], |env| {
            Ok(Value::Int(env.require_int("d")? * env.require_int("n")?))
        })
        .constraint_fn("big", ConstraintClass::Soft, &["dd", "cap"], |env| {
            Ok(env.require_int("dd")? > env.require_int("cap")?)
        })
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn closure_iterator_space() {
    let space = Space::builder("cross5")
        .constant("max", 40)
        .closure_iter("p", &["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let mut known: Vec<i64> = Vec::new();
            let mut n = 1i64;
            std::iter::from_fn(move || loop {
                n += 1;
                if n > max {
                    return None;
                }
                if known.iter().all(|k| n % k != 0) {
                    known.push(n);
                    return Some(Value::Int(n));
                }
            })
        })
        .range("r", 0, var("p"))
        .constraint("half", ConstraintClass::Generic, (var("r") * 2).lt(var("p")))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn reduced_gemm_space_full_agreement() {
    let params = beast::gemm::GemmSpaceParams::reduced(10);
    let space = beast::gemm::build_gemm_space(&params).unwrap();
    assert_all_agree(space);
}

#[test]
fn unhoisted_plans_agree_on_survivors() {
    let space = Space::builder("hoist_eq")
        .constant("cap", 30)
        .range("a", 1, 7)
        .range_step("b", var("a"), 25, var("a"))
        .derived("ab", var("a") * var("b"))
        .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
        .build()
        .unwrap();
    let hoisted = Plan::new(&space, PlanOptions::default()).unwrap();
    let unhoisted = Plan::new(&space, PlanOptions::unhoisted()).unwrap();
    let a = Compiled::new(LoweredPlan::new(&hoisted).unwrap())
        .run(CountVisitor::default())
        .unwrap();
    let b = Compiled::new(LoweredPlan::new(&unhoisted).unwrap())
        .run(CountVisitor::default())
        .unwrap();
    assert_eq!(a.visitor.count, b.visitor.count);
    // Hoisting can only reduce work.
    assert!(a.stats.evaluated.iter().sum::<u64>() <= b.stats.evaluated.iter().sum::<u64>());
}
