//! Cross-backend equivalence: every evaluation backend — the AST walker in
//! all three loop styles, the bytecode VM in all three loop styles, the
//! compiled engine, and the parallel driver at several thread counts — must
//! produce identical survivors and pruning statistics for the same space.
//! This is the load-bearing guarantee behind the paper's performance claims:
//! the backends differ *only* in speed.
//!
//! The compiled engine's interval block pruner is exercised as a second
//! cohort: with intervals *off* the compiled/parallel backends match the
//! walker's statistics bit for bit; with intervals *on* they must still
//! produce identical survivors in identical order, agree exactly with each
//! other, and may only ever *shrink* per-constraint evaluation counts
//! (skipped subtrees are work the per-point backends did needlessly).

use std::sync::Arc;

use beast::prelude::*;
use beast_engine::compiled::EngineOptions;
use beast_engine::parallel::{run_parallel_report, ParallelOptions};

/// Canonical result of a sweep: survivors as sorted tuples + stats.
fn all_backend_results(space: &Arc<Space>) -> Vec<(String, PruneStats, Vec<Vec<i64>>)> {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    let lowered = LoweredPlan::new(&plan).unwrap();
    let mut results = Vec::new();

    let points_of = |points: &[Point]| -> Vec<Vec<i64>> {
        points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect()
    };

    for style in [LoopStyle::While, LoopStyle::RangeMaterialized, LoopStyle::RangeLazy] {
        let walker = Walker::new(&plan, style);
        let out = walker
            .run(CollectVisitor::new(walker.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            format!("walker/{style:?}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    for style in [VmStyle::While, VmStyle::RepeatUntil, VmStyle::NumericFor] {
        let vm = Vm::compile(&lowered, style);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            format!("vm/{style:?}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    {
        let compiled =
            Compiled::with_options(lowered.clone(), EngineOptions::no_intervals());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap();
        results.push(("compiled".into(), out.stats, points_of(&out.visitor.points)));
    }
    for threads in [2usize, 5] {
        let names = Compiled::new(lowered.clone()).point_names().clone();
        let opts = ParallelOptions {
            threads,
            engine: EngineOptions::no_intervals(),
            ..ParallelOptions::default()
        };
        let (out, _) = run_parallel_report(&lowered, &opts, || {
            CollectVisitor::new(names.clone(), usize::MAX)
        })
        .unwrap();
        results.push((
            format!("parallel/{threads}"),
            out.stats,
            points_of(&out.visitor.points),
        ));
    }
    results
}

/// The intervals-on cohort: serial compiled engine plus the parallel driver
/// at two thread counts, all with block pruning enabled.
fn interval_backend_results(
    space: &Arc<Space>,
) -> Vec<(String, PruneStats, BlockStats, Vec<Vec<i64>>)> {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    let lowered = LoweredPlan::new(&plan).unwrap();
    let points_of = |points: &[Point]| -> Vec<Vec<i64>> {
        points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect()
    };
    let mut results = Vec::new();
    {
        let compiled = Compiled::new(lowered.clone());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap();
        results.push((
            "compiled+iv".to_string(),
            out.stats,
            out.blocks,
            points_of(&out.visitor.points),
        ));
    }
    for threads in [2usize, 5] {
        let names = Compiled::new(lowered.clone()).point_names().clone();
        let opts = ParallelOptions { threads, ..ParallelOptions::default() };
        let (out, _) = run_parallel_report(&lowered, &opts, || {
            CollectVisitor::new(names.clone(), usize::MAX)
        })
        .unwrap();
        results.push((
            format!("parallel+iv/{threads}"),
            out.stats,
            out.blocks,
            points_of(&out.visitor.points),
        ));
    }
    results
}

/// The walker binds every variable by name while slot backends use dense
/// indices; surviving-point *values* must nevertheless agree column-for-
/// column because all backends report the same variable order.
fn assert_all_agree(space: Arc<Space>) {
    let results = all_backend_results(&space);
    let (ref_name, ref_stats, ref_points) = &results[0];
    assert!(
        !ref_points.is_empty() || ref_stats.total_pruned() > 0,
        "degenerate test space"
    );
    for (name, stats, points) in &results[1..] {
        assert_eq!(stats, ref_stats, "{name} vs {ref_name}: stats differ");
        assert_eq!(points, ref_points, "{name} vs {ref_name}: survivors differ");
    }

    // Intervals-on cohort: identical survivors and visit order, identical
    // rejections-or-fewer, never more work than the per-point backends —
    // and exact agreement (stats and block counters) within the cohort.
    let iv = interval_backend_results(&space);
    let (iv_ref_name, iv_ref_stats, iv_ref_blocks, iv_ref_points) = &iv[0];
    assert_eq!(
        iv_ref_points, ref_points,
        "{iv_ref_name} vs {ref_name}: intervals changed survivors"
    );
    assert_eq!(iv_ref_stats.survivors, ref_stats.survivors);
    for (i, (a, b)) in iv_ref_stats.evaluated.iter().zip(&ref_stats.evaluated).enumerate() {
        assert!(a <= b, "{iv_ref_name}: intervals increased evaluations of constraint {i}");
    }
    for (i, (a, b)) in iv_ref_stats.pruned.iter().zip(&ref_stats.pruned).enumerate() {
        assert!(a <= b, "{iv_ref_name}: intervals increased rejections of constraint {i}");
    }
    for (name, stats, blocks, points) in &iv[1..] {
        assert_eq!(stats, iv_ref_stats, "{name} vs {iv_ref_name}: stats differ");
        assert_eq!(blocks, iv_ref_blocks, "{name} vs {iv_ref_name}: block counters differ");
        assert_eq!(points, iv_ref_points, "{name} vs {iv_ref_name}: survivors differ");
    }
}

#[test]
fn dependent_ranges_with_derived_and_constraints() {
    let space = Space::builder("cross1")
        .constant("cap", 60)
        .range("a", 1, 9)
        .range("b", 1, 9)
        .range_step("c", var("a"), 33, var("a"))
        .derived("abc", var("a") * var("b") + var("c"))
        .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
        .constraint("odd", ConstraintClass::Soft, (var("c") % 2).ne(0))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn ternaries_short_circuits_and_builtins() {
    let space = Space::builder("cross2")
        .range("x", 0, 24)
        .range("y", 1, 7)
        .derived("m", min2(var("x"), var("y") * 3))
        .derived(
            "pick",
            ternary(var("x").gt(12), var("m") - var("y"), var("m") + var("y")),
        )
        .constraint(
            "guarded",
            ConstraintClass::Generic,
            var("x").ne(0).and((lit(48) % var("x")).eq(0)).not(),
        )
        .constraint("pick_small", ConstraintClass::Soft, var("pick").lt(2))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn negative_steps_lists_and_unions() {
    use beast_core::iterator::build as ib;
    let space = Space::builder("cross3")
        .iter(
            "s",
            ib::union(ib::list([3i64, 9, 27]), ib::range_step(lit(0), lit(20), lit(4))),
        )
        .range_step("d", var("s"), -1, -2)
        .constraint("tiny", ConstraintClass::Soft, var("d").lt(1))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn opaque_deferred_everything() {
    use beast_core::iterator::Realized;
    let space = Space::builder("cross4")
        .constant("cap", 10)
        .range("n", 1, 8)
        .deferred_iter("d", &["n"], |env| {
            let n = env.require_int("n")?;
            Ok(Realized::Range { start: n, stop: 0, step: -1 })
        })
        .derived_fn("dd", &["d", "n"], |env| {
            Ok(Value::Int(env.require_int("d")? * env.require_int("n")?))
        })
        .constraint_fn("big", ConstraintClass::Soft, &["dd", "cap"], |env| {
            Ok(env.require_int("dd")? > env.require_int("cap")?)
        })
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn closure_iterator_space() {
    let space = Space::builder("cross5")
        .constant("max", 40)
        .closure_iter("p", &["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let mut known: Vec<i64> = Vec::new();
            let mut n = 1i64;
            std::iter::from_fn(move || loop {
                n += 1;
                if n > max {
                    return None;
                }
                if known.iter().all(|k| n % k != 0) {
                    known.push(n);
                    return Some(Value::Int(n));
                }
            })
        })
        .range("r", 0, var("p"))
        .constraint("half", ConstraintClass::Generic, (var("r") * 2).lt(var("p")))
        .build()
        .unwrap();
    assert_all_agree(space);
}

#[test]
fn reduced_gemm_space_full_agreement() {
    let params = beast::gemm::GemmSpaceParams::reduced(10);
    let space = beast::gemm::build_gemm_space(&params).unwrap();
    assert_all_agree(space);
}

/// Minimal deterministic LCG (PCG-XSH-style output) so the property test
/// below needs no RNG crate and replays identical spaces on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Sample 3–5 distinct values from the extreme pool.
fn sample_pool(rng: &mut Lcg) -> Vec<i64> {
    const POOL: [i64; 14] = [
        i64::MIN,
        i64::MIN + 1,
        -1_000_003,
        -37,
        -3,
        -1,
        0,
        1,
        2,
        7,
        64,
        999_983,
        i64::MAX - 1,
        i64::MAX,
    ];
    let k = 3 + rng.below(3) as usize;
    let mut vals: Vec<i64> = Vec::new();
    while vals.len() < k {
        let v = POOL[rng.below(POOL.len() as u64) as usize];
        if !vals.contains(&v) {
            vals.push(v);
        }
    }
    vals
}

/// Combine two operands with a random arithmetic operator. `/` and `%`
/// share the engine's wrapping contract with the generated C helpers but
/// reject a zero denominator outright, so the denominator is guarded to 1
/// instead of dropping those operators from the alphabet.
fn random_combine(rng: &mut Lcg, a: E, b: E) -> E {
    match rng.below(5) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / ternary(b.clone().eq(0), lit(1), b),
        _ => a % ternary(b.clone().eq(0), lit(1), b),
    }
}

/// Random comparison for constraint predicates.
fn random_compare(rng: &mut Lcg, a: E, b: E) -> E {
    match rng.below(4) {
        0 => a.lt(b),
        1 => a.le(b),
        2 => a.gt(b),
        _ => a.ne(b),
    }
}

/// Property test: random postfix expressions over i64 extremes evaluated by
/// the generated-and-compiled C program must agree with the IR interpreter
/// on survivors, per-constraint prune counts, and the XOR checksum of every
/// variable at every surviving point. Exercises wrapping `+ - *` and the
/// `/` / `%` edge cases (negative operands, `MIN / -1`, `MIN % -1`) that a
/// naive C lowering would hit as signed-overflow UB or SIGFPE.
#[test]
fn random_expressions_agree_with_generated_c() {
    use beast_codegen::{
        generate_and_run, lower, CBackend, Program, Toolchain, ToolchainResult,
    };
    use beast_core::iterator::build as ib;

    let mut rng = Lcg(0x5eed_cafe_f00d_0001);
    let mut total_survivors = 0u64;
    let mut total_pruned = 0u64;
    for round in 0..8u32 {
        let mut names: Vec<String> = vec!["x".into(), "y".into()];
        let mut builder = Space::builder(&format!("prop{round}"))
            .iter("x", ib::list(sample_pool(&mut rng)))
            .iter("y", ib::list(sample_pool(&mut rng)));
        for d in 0..3 {
            let a = var(&names[rng.below(names.len() as u64) as usize]);
            let b = var(&names[rng.below(names.len() as u64) as usize]);
            let name = format!("d{d}");
            builder = builder.derived(&name, random_combine(&mut rng, a, b));
            names.push(name);
        }
        for (ci, class) in [ConstraintClass::Hard, ConstraintClass::Soft]
            .into_iter()
            .enumerate()
        {
            let a = var(&names[rng.below(names.len() as u64) as usize]);
            let b = var(&names[rng.below(names.len() as u64) as usize]);
            builder =
                builder.constraint(&format!("k{ci}"), class, random_compare(&mut rng, a, b));
        }
        let space = builder.build().unwrap();

        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();
        let compiled =
            Compiled::with_options(lowered.clone(), EngineOptions::no_intervals());
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap();
        let engine_checksum = out
            .visitor
            .points
            .iter()
            .flat_map(|p| p.values().iter().map(|v| v.as_int().unwrap()))
            .fold(0i64, |acc, v| acc ^ v);
        let engine_pruned: Vec<(String, u64)> = space
            .constraints()
            .iter()
            .map(|c| c.name.to_string())
            .zip(out.stats.pruned.iter().copied())
            .collect();
        total_survivors += out.stats.survivors;
        total_pruned += out.stats.total_pruned();

        let program = Program::from_lowered(&lowered).unwrap();
        match generate_and_run(&CBackend, &Toolchain::c(), &lower(&program)) {
            ToolchainResult::Unavailable(what) => {
                eprintln!("skipping property test: {what} not on PATH");
                return;
            }
            ToolchainResult::Failed { stage, detail } => {
                panic!("round {round}: C backend failed at {stage:?}: {detail}")
            }
            ToolchainResult::Ran { counts, .. } => {
                assert_eq!(
                    counts.survivors, out.stats.survivors,
                    "round {round}: survivor counts diverged"
                );
                assert_eq!(
                    counts.pruned, engine_pruned,
                    "round {round}: per-constraint prune counts diverged"
                );
                assert_eq!(
                    counts.checksum, engine_checksum,
                    "round {round}: survivor checksums diverged"
                );
            }
        }
    }
    // The fixed seed must keep exercising both outcomes; if a generator
    // change makes every space degenerate, fail loudly instead of passing
    // vacuously.
    assert!(total_survivors > 0, "no round produced a survivor");
    assert!(total_pruned > 0, "no round pruned a point");
}

/// The native worker tier must reproduce the compiled tier's emission
/// fingerprint on every one of the 16 GEMM variants (4 precisions × 4
/// transpose cases) — each variant lowers to a different plan, worker
/// binary, and constraint mix. Without a C compiler the tier falls back
/// in-process and the equality still has to hold.
#[test]
fn native_tier_fingerprints_all_precision_transpose_cases() {
    use beast::gpu_sim::{Precision, Transpose};

    let have_cc = beast_codegen::find_c_compiler().is_some();
    for precision in Precision::all() {
        for transpose in Transpose::all() {
            let mut params = beast::gemm::GemmSpaceParams::reduced(16);
            params.precision = precision;
            params.transpose = transpose;
            let space = beast::gemm::build_gemm_space(&params).unwrap();
            let plan = Plan::new(&space, PlanOptions::default()).unwrap();
            let lowered = LoweredPlan::new(&plan).unwrap();
            let serial = Compiled::new(lowered.clone())
                .run(FingerprintVisitor::new())
                .unwrap();
            let opts = ParallelOptions {
                threads: 2,
                engine: EngineOptions::native(),
                ..ParallelOptions::default()
            };
            let (out, report) =
                run_parallel_report(&lowered, &opts, FingerprintVisitor::new).unwrap();
            assert_eq!(
                (out.visitor.count, out.visitor.hash),
                (serial.visitor.count, serial.visitor.hash),
                "{precision:?}/{transpose:?}: native tier fingerprint diverged"
            );
            if have_cc {
                let native = report
                    .native
                    .expect("compiler present: native counters should be reported");
                assert!(
                    native.chunks_native > 0,
                    "{precision:?}/{transpose:?}: no chunk ran in a worker process"
                );
                assert_eq!(
                    native.chunks_fallback, 0,
                    "{precision:?}/{transpose:?}: unexpected in-process fallback"
                );
                assert_eq!(native.rows_streamed, serial.visitor.count);
            }
        }
    }
}

#[test]
fn unhoisted_plans_agree_on_survivors() {
    let space = Space::builder("hoist_eq")
        .constant("cap", 30)
        .range("a", 1, 7)
        .range_step("b", var("a"), 25, var("a"))
        .derived("ab", var("a") * var("b"))
        .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
        .build()
        .unwrap();
    let hoisted = Plan::new(&space, PlanOptions::default()).unwrap();
    let unhoisted = Plan::new(&space, PlanOptions::unhoisted()).unwrap();
    let a = Compiled::new(LoweredPlan::new(&hoisted).unwrap())
        .run(CountVisitor::default())
        .unwrap();
    let b = Compiled::new(LoweredPlan::new(&unhoisted).unwrap())
        .run(CountVisitor::default())
        .unwrap();
    assert_eq!(a.visitor.count, b.visitor.count);
    // Hoisting can only reduce work.
    assert!(a.stats.evaluated.iter().sum::<u64>() <= b.stats.evaluated.iter().sum::<u64>());
}
