//! Checkpoint robustness property suite.
//!
//! A checkpoint file is the one artifact that crosses a crash boundary, so
//! it gets adversarial treatment: every corruption of a valid file —
//! truncation at *any* byte, any single bit flip, duplicated JSON keys,
//! engine/space mismatches — must surface as a structured
//! [`SweepError::Checkpoint`] from the resume path. Never a panic, and
//! never a silent resume into wrong results. The only input that resumes is
//! the pristine file, and that resume is bit-identical to an uninterrupted
//! sweep (format 2 guards the payload with an FNV-1a CRC, so "valid JSON
//! that lies" is caught too).

use beast::prelude::*;
use beast_core::ir::LoweredPlan;
use beast_engine::checkpoint::{run_checkpointed, CheckpointConfig, JsonValue};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const CHUNKS: usize = 16;

fn gemm_lowered() -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

fn opts() -> ParallelOptions {
    ParallelOptions { threads: 2, chunk_count: CHUNKS, ..ParallelOptions::default() }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("beast-checkpoint-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Produce a valid mid-sweep checkpoint file and return its bytes plus the
/// fingerprint of the uninterrupted reference sweep.
fn valid_checkpoint(name: &str) -> (std::path::PathBuf, String, FingerprintVisitor) {
    let lp = gemm_lowered();
    let path = scratch(name);
    let _ = std::fs::remove_file(&path);
    let mut interrupted = opts();
    interrupted.stop_after_chunks = CHUNKS / 2;
    let mut ck = CheckpointConfig::new(&path);
    ck.every_chunks = 1;
    let (_, report) =
        run_checkpointed(&lp, &interrupted, &ck, FingerprintVisitor::default).unwrap();
    assert!(report.partial, "the seed run must stop mid-sweep");
    let text = std::fs::read_to_string(&path).unwrap();
    let (reference, _) = run_parallel_report(&lp, &opts(), FingerprintVisitor::default).unwrap();
    (path, text, reference.visitor)
}

/// Resume from whatever is currently in `path`; the Err side is the
/// structured checkpoint diagnostic.
fn try_resume(lp: &LoweredPlan, path: &std::path::Path) -> Result<FingerprintVisitor, String> {
    let mut ck = CheckpointConfig::new(path);
    ck.resume = true;
    match run_checkpointed(lp, &opts(), &ck, FingerprintVisitor::default) {
        Ok((out, _)) => Ok(out.visitor),
        Err(SweepError::Checkpoint(msg)) => Err(msg),
        Err(other) => panic!("resume must fail as SweepError::Checkpoint, got: {other}"),
    }
}

/// Truncating the file at *every* byte boundary is refused with a
/// structured error; only the full file resumes, and it resumes
/// bit-identically.
#[test]
fn truncation_at_every_length_is_refused() {
    let lp = gemm_lowered();
    let (path, text, reference) = valid_checkpoint("truncate.json");
    for len in 0..text.len() {
        std::fs::write(&path, &text[..len]).unwrap();
        let err = try_resume(&lp, &path)
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} byte(s) must be refused"));
        assert!(!err.is_empty());
    }
    std::fs::write(&path, &text).unwrap();
    let resumed = try_resume(&lp, &path).expect("the pristine file must resume");
    assert_eq!(resumed, reference, "a pristine resume must be bit-identical");
}

/// Any single bit flip anywhere in the file — payload, counters, crc field,
/// structural punctuation — is caught (by the JSON parser, the UTF-8
/// decoder, or the format-2 CRC) and refused with a structured error.
#[test]
fn single_bit_flips_are_always_refused() {
    let lp = gemm_lowered();
    let (path, text, _) = valid_checkpoint("bitflip.json");
    let bytes = text.as_bytes();
    // Deterministic LCG so the sampled positions are stable run to run.
    let mut state: u64 = 0x5bd1_e995;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..200 {
        let pos = (next() % bytes.len() as u64) as usize;
        let bit = 1u8 << (next() % 8);
        let mut flipped = bytes.to_vec();
        flipped[pos] ^= bit;
        std::fs::write(&path, &flipped).unwrap();
        assert!(
            try_resume(&lp, &path).is_err(),
            "flipping bit {bit:#04x} of byte {pos} must be refused"
        );
    }
}

/// Duplicated keys are a parse error at every nesting level — the parser
/// must not silently pick one of the two values.
#[test]
fn duplicated_keys_never_parse() {
    assert!(JsonValue::parse("{\"a\":1,\"a\":2}").is_err());
    assert!(JsonValue::parse("{\"outer\":{\"x\":1,\"x\":1}}").is_err());
    assert!(JsonValue::parse("{\"survivors\":9,\"stats\":{\"survivors\":9}}").is_ok());

    // File-level: splicing a duplicated key into a real checkpoint is
    // refused (the CRC catches the edit even before the parser would).
    let lp = gemm_lowered();
    let (path, text, _) = valid_checkpoint("dupkey.json");
    let doctored = text.replacen("{\"format\":", "{\"format\":2,\"format\":", 1);
    assert_ne!(doctored, text, "the fixture must contain a format key");
    std::fs::write(&path, &doctored).unwrap();
    assert!(try_resume(&lp, &path).is_err());
}

/// A checkpoint written under different engine options (a different chunk
/// semantics) or for a different space must be refused, not resumed into
/// subtly wrong results.
#[test]
fn mismatched_engine_or_space_is_refused() {
    let lp = gemm_lowered();
    let (path, _, _) = valid_checkpoint("mismatch.json");

    let mut other_engine = opts();
    other_engine.engine = EngineOptions::no_intervals();
    let mut ck = CheckpointConfig::new(&path);
    ck.resume = true;
    match run_checkpointed(&lp, &other_engine, &ck, FingerprintVisitor::default) {
        Err(SweepError::Checkpoint(msg)) => {
            assert!(msg.contains("engine"), "diagnostic should name the engine: {msg}")
        }
        other => panic!("engine mismatch must be refused, got: {other:?}"),
    }

    let other_space = build_gemm_space(&GemmSpaceParams::reduced(24)).unwrap();
    let other_plan = Plan::new(&other_space, PlanOptions::default()).unwrap();
    let other_lp = LoweredPlan::new(&other_plan).unwrap();
    let err = match try_resume(&other_lp, &path) {
        Err(err) => err,
        Ok(_) => panic!("space mismatch must be refused"),
    };
    assert!(!err.is_empty());
}

/// An empty and a non-JSON file both produce structured errors (the
/// degenerate corruption cases a crashed writer can leave behind).
#[test]
fn degenerate_files_are_refused() {
    let lp = gemm_lowered();
    for (name, contents) in [
        ("empty.json", "".as_bytes()),
        ("garbage.json", b"not json at all".as_slice()),
        ("non-utf8.json", &[0xff, 0xfe, 0x00, 0x01][..]),
    ] {
        let path = scratch(name);
        std::fs::write(&path, contents).unwrap();
        assert!(try_resume(&lp, &path).is_err(), "{name} must be refused");
    }
}
