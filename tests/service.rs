//! Cache-correctness suite for the sweep service (`beast_engine::service`).
//!
//! Pins the headline soundness claim of `DESIGN.md` §8: a sweep served from
//! the fingerprint-keyed sub-sweep cache is **bit-identical** to a cold
//! run — same survivors, same emission order (order-sensitive fingerprint),
//! same merged statistics. Every scenario asserts fingerprint equality
//! against a cold in-process baseline:
//!
//! - identical request resubmitted → every chunk hits;
//! - prefix overlap (a partial sweep seeds the cache, a full sweep follows)
//!   → exactly the seeded chunks hit, the rest miss;
//! - device-parameter mismatch (`reduced(16)` vs `reduced(32)`) → no hits,
//!   because device limits fold into the lowered plan's constants and
//!   change its structural hash;
//! - concurrent HTTP clients racing the same sweep → all get the cold
//!   fingerprint;
//! - the chunked progress stream terminates with the full result.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use beast_engine::checkpoint::JsonValue;
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::service::cache::{run_cached, SweepCache};
use beast_engine::service::{ServiceConfig, SweepService};
use beast_engine::visit::FingerprintVisitor;
use beast_gemm::{gemm_resolver, resolve_gemm_space};

/// Same grid the service pins, so in-process baselines and HTTP runs chunk
/// identically (the cache key tolerates grid changes, but matching grids
/// make hit counts exact).
const CHUNKS: usize = 32;

fn gemm_plan(dim: i64) -> beast_core::ir::LoweredPlan {
    let doc = JsonValue::parse(&format!("{{\"kind\":\"gemm\",\"reduced\":{dim}}}")).unwrap();
    resolve_gemm_space(&doc).unwrap().plan
}

fn opts() -> ParallelOptions {
    ParallelOptions { chunk_count: CHUNKS, ..ParallelOptions::new(2) }
}

/// Cold, cache-free baseline: (fingerprint hash, survivors).
fn cold_baseline(dim: i64) -> (u64, u64) {
    let (out, report) =
        run_parallel_report(&gemm_plan(dim), &opts(), FingerprintVisitor::new).unwrap();
    (out.visitor.hash, report.survivors)
}

// ---------------------------------------------------------------------------
// run_cached-level scenarios
// ---------------------------------------------------------------------------

#[test]
fn identical_sweep_hits_every_chunk_and_is_bit_identical() {
    let lp = gemm_plan(16);
    let (cold_fp, cold_survivors) = cold_baseline(16);
    let cache: SweepCache<FingerprintVisitor> = SweepCache::new();

    let (first, first_rep) =
        run_cached(&lp, &opts(), &cache, "t", FingerprintVisitor::new).unwrap();
    assert_eq!(first.visitor.hash, cold_fp, "cold cached run must match cache-free run");
    assert_eq!(first_rep.cache_hits, 0);
    let chunks = first_rep.chunks as u64;
    assert_eq!(first_rep.cache_misses, chunks);

    let (second, second_rep) =
        run_cached(&lp, &opts(), &cache, "t", FingerprintVisitor::new).unwrap();
    assert_eq!(second_rep.cache_hits, chunks, "every chunk must be served from cache");
    assert_eq!(second_rep.cache_misses, 0);
    assert_eq!(second.visitor, first.visitor, "fingerprint must be bit-identical");
    assert_eq!(second.stats, first.stats);
    assert_eq!(second.blocks, first.blocks);
    assert_eq!(second_rep.survivors, cold_survivors);
}

#[test]
fn prefix_overlap_hits_exactly_the_seeded_chunks() {
    let lp = gemm_plan(16);
    let (cold_fp, _) = cold_baseline(16);
    let cache: SweepCache<FingerprintVisitor> = SweepCache::new();

    // Seed the cache with a strict prefix of the chunk grid.
    let seed_opts = ParallelOptions { stop_after_chunks: 5, ..opts() };
    let (_, seed_rep) =
        run_cached(&lp, &seed_opts, &cache, "t", FingerprintVisitor::new).unwrap();
    assert!(seed_rep.partial, "seeding run must stop early");
    let seeded = cache.stats().entries as u64;
    assert!(seeded >= 5, "expected at least 5 seeded chunks, got {seeded}");

    // The full sweep folds the seeded prefix from cache and computes the
    // rest — and is still bit-identical to the cold run.
    let (full, full_rep) =
        run_cached(&lp, &opts(), &cache, "t", FingerprintVisitor::new).unwrap();
    assert_eq!(full_rep.cache_hits, seeded, "exactly the seeded chunks must hit");
    assert_eq!(full_rep.cache_misses, full_rep.chunks as u64 - seeded);
    assert_eq!(full.visitor.hash, cold_fp, "partial-hit run must be bit-identical to cold");
}

#[test]
fn device_param_mismatch_never_hits() {
    let (fp16, _) = cold_baseline(16);
    let (fp32, _) = cold_baseline(32);
    assert_ne!(fp16, fp32, "the two devices must genuinely differ");

    let cache: SweepCache<FingerprintVisitor> = SweepCache::new();
    let (a, _) =
        run_cached(&gemm_plan(16), &opts(), &cache, "t", FingerprintVisitor::new).unwrap();
    let (b, rep) =
        run_cached(&gemm_plan(32), &opts(), &cache, "t", FingerprintVisitor::new).unwrap();
    assert_eq!(rep.cache_hits, 0, "different device limits must never share entries");
    assert_eq!(a.visitor.hash, fp16);
    assert_eq!(b.visitor.hash, fp32);
}

// ---------------------------------------------------------------------------
// HTTP-level scenarios
// ---------------------------------------------------------------------------

/// One HTTP/1.1 exchange: send, read to EOF, strip headers, de-chunk.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let (headers, payload) = raw.split_once("\r\n\r\n").unwrap();
    let body = if headers.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        let mut out = String::new();
        let mut rest = payload;
        loop {
            let (size_line, tail) = rest.split_once("\r\n").unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            if size == 0 {
                break;
            }
            out.push_str(&tail[..size]);
            rest = tail[size..].strip_prefix("\r\n").unwrap_or(&tail[size..]);
        }
        out
    } else {
        payload.to_string()
    };
    (status, body)
}

fn start_service() -> (SweepService, String) {
    let cfg = ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        executors: 2,
        chunk_count: CHUNKS,
        cache_path: None,
    };
    let service = SweepService::start(cfg, gemm_resolver()).unwrap();
    let addr = service.addr().to_string();
    (service, addr)
}

fn submit_wait(addr: &str, dim: i64) -> JsonValue {
    let body = format!("{{\"space\":{{\"kind\":\"gemm\",\"reduced\":{dim}}},\"wait\":true}}");
    let (status, body) = http(addr, "POST", "/sweeps", &body);
    assert_eq!(status, 200, "{body}");
    let doc = JsonValue::parse(&body).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"), "{body}");
    doc
}

fn fingerprint_of(doc: &JsonValue) -> u64 {
    doc.get("fingerprint").and_then(|f| f.get("hash")).and_then(JsonValue::as_u64).unwrap()
}

fn hits_of(doc: &JsonValue) -> (u64, u64) {
    (
        doc.get("cache_hits").and_then(JsonValue::as_u64).unwrap(),
        doc.get("cache_misses").and_then(JsonValue::as_u64).unwrap(),
    )
}

#[test]
fn http_resubmission_hits_and_matches_cold_fingerprint() {
    let (cold_fp, cold_survivors) = cold_baseline(16);
    let (service, addr) = start_service();

    let first = submit_wait(&addr, 16);
    let (h1, m1) = hits_of(&first);
    assert_eq!(h1, 0);
    assert!(m1 > 0);
    assert_eq!(fingerprint_of(&first), cold_fp);
    assert_eq!(first.get("survivors").and_then(JsonValue::as_u64), Some(cold_survivors));

    let second = submit_wait(&addr, 16);
    let (h2, m2) = hits_of(&second);
    assert_eq!(m2, 0, "resubmission must not re-enumerate any chunk");
    assert_eq!(h2, m1, "every first-run chunk must be served from cache");
    assert_eq!(fingerprint_of(&second), cold_fp, "cache hit must be bit-identical");

    // Different device parameters must not reuse those entries.
    let other = submit_wait(&addr, 32);
    let (h3, _) = hits_of(&other);
    assert_eq!(h3, 0, "reduced(32) must miss entries stored for reduced(16)");
    assert_eq!(fingerprint_of(&other), cold_baseline(32).0);

    let (status, stats) = http(&addr, "GET", "/cache/stats", "");
    assert_eq!(status, 200);
    let stats = JsonValue::parse(&stats).unwrap();
    assert_eq!(stats.get("hits").and_then(JsonValue::as_u64), Some(h2));

    service.shutdown();
    service.wait().unwrap();
}

#[test]
fn concurrent_clients_all_get_the_cold_fingerprint() {
    let (cold_fp, _) = cold_baseline(16);
    let (service, addr) = start_service();

    let addr = Arc::new(addr);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || fingerprint_of(&submit_wait(&addr, 16)))
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), cold_fp, "every concurrent client must agree");
    }

    // After the race settles, a fresh submission is served fully from cache.
    let settled = submit_wait(&addr, 16);
    let (_, misses) = hits_of(&settled);
    assert_eq!(misses, 0);
    assert_eq!(fingerprint_of(&settled), cold_fp);

    service.shutdown();
    service.wait().unwrap();
}

#[test]
fn progress_stream_terminates_with_the_full_result() {
    let (cold_fp, _) = cold_baseline(16);
    let (service, addr) = start_service();

    let (status, body) =
        http(&addr, "POST", "/sweeps", "{\"space\":{\"kind\":\"gemm\",\"reduced\":16}}");
    assert_eq!(status, 202, "{body}");
    let id = JsonValue::parse(&body).unwrap().get("id").and_then(JsonValue::as_u64).unwrap();

    let (status, stream) = http(&addr, "GET", "/sweeps/{id}/progress".replace("{id}", &id.to_string()).as_str(), "");
    assert_eq!(status, 200);
    let last = stream.lines().last().unwrap();
    let terminal = JsonValue::parse(last).unwrap();
    assert_eq!(terminal.get("state").and_then(JsonValue::as_str), Some("done"), "{last}");
    assert_eq!(fingerprint_of(&terminal), cold_fp);

    // The result endpoint agrees with the stream's terminal line.
    let (status, body) = http(&addr, "GET", &format!("/sweeps/{id}"), "");
    assert_eq!(status, 200);
    assert_eq!(fingerprint_of(&JsonValue::parse(&body).unwrap()), cold_fp);

    // Unknown ids and malformed requests are diagnosed, not 500s.
    let (status, _) = http(&addr, "GET", "/sweeps/99999", "");
    assert_eq!(status, 404);
    let (status, _) = http(&addr, "POST", "/sweeps", "{\"space\":{\"kind\":\"gemm\"}}");
    assert_eq!(status, 400);
    let (status, _) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    service.shutdown();
    service.wait().unwrap();
}
