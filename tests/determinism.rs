//! Determinism regression suite for the dynamic parallel scheduler.
//!
//! `run_parallel` pulls level-0 chunks off a shared atomic cursor, so *which
//! worker evaluates which chunk* is a race — but the merged outcome must not
//! be. These tests pin the contract documented on
//! [`beast_engine::parallel`]: for every space and every thread count, the
//! parallel sweep reproduces the serial [`Compiled::run`] bit for bit —
//! same survivors, same visit *order*, same [`PruneStats`] — and repeated
//! parallel runs reproduce each other.

use std::sync::Arc;

use beast::prelude::*;
use beast_core::ir::LoweredPlan;
use beast_engine::compiled::EngineOptions;
use beast_engine::parallel::{run_parallel, run_parallel_report, ParallelOptions};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn lower(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// A uniform space: every level-0 subtree has the same static fanout.
fn uniform_space() -> Arc<Space> {
    Space::builder("det_uniform")
        .range("a", 0, 24)
        .range("b", 0, 12)
        .range("c", 0, 6)
        .derived("abc", var("a") * var("b") + var("c"))
        .constraint("hard_cut", ConstraintClass::Hard, var("abc").gt(180))
        .constraint("soft_cut", ConstraintClass::Soft, (var("abc") % 3).eq(0))
        .build()
        .unwrap()
}

/// A deliberately skewed space: the inner domains depend on the level-0
/// value, and a hoisted constraint kills whole subtrees — the shape the
/// dynamic scheduler exists for.
fn skewed_space() -> Arc<Space> {
    Space::builder("det_skewed")
        .range("outer", 1, 40)
        .constraint("upper_half", ConstraintClass::Hard, var("outer").gt(20))
        .range_step("mid", var("outer"), 200, var("outer"))
        .range("inner", 0, var("mid"))
        .derived("w", var("mid") + var("inner"))
        .constraint("odd_w", ConstraintClass::Soft, (var("w") % 2).ne(0))
        .build()
        .unwrap()
}

/// The paper's own GEMM space on a reduced device.
fn gemm_space() -> Arc<Space> {
    build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap()
}

fn all_spaces() -> Vec<(&'static str, Arc<Space>)> {
    vec![
        ("uniform", uniform_space()),
        ("skewed", skewed_space()),
        ("gemm", gemm_space()),
    ]
}

/// Survivor count and statistics match the serial run at every thread count.
#[test]
fn counts_and_stats_are_thread_count_invariant() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        assert!(serial.visitor.count > 0, "{name}: degenerate test space");
        for threads in THREAD_COUNTS {
            let par = run_parallel(&lp, threads, CountVisitor::default).unwrap();
            assert_eq!(
                par.visitor.count, serial.visitor.count,
                "{name}: survivor count diverged at {threads} threads"
            );
            assert_eq!(
                par.stats, serial.stats,
                "{name}: PruneStats diverged at {threads} threads"
            );
        }
    }
}

/// The *order* in which the merged visitor sees survivors equals the serial
/// visit order — full point-by-point equality, not just the same set.
#[test]
fn visit_order_matches_serial_exactly() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let compiled = Compiled::new(lp.clone());
        let names = compiled.point_names().clone();
        let serial = compiled
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        for threads in THREAD_COUNTS {
            let par = run_parallel(&lp, threads, || {
                CollectVisitor::new(names.clone(), usize::MAX)
            })
            .unwrap();
            assert_eq!(
                par.visitor.points.len(),
                serial.visitor.points.len(),
                "{name}: survivor count diverged at {threads} threads"
            );
            assert_eq!(
                par.visitor.points, serial.visitor.points,
                "{name}: visit order diverged at {threads} threads"
            );
        }
    }
}

/// Order-sensitive visitors (capped collection: keeps the *first* `cap`
/// survivors) see the same prefix at every thread count.
#[test]
fn capped_collection_keeps_the_same_prefix() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let compiled = Compiled::new(lp.clone());
        let names = compiled.point_names().clone();
        let serial = compiled.run(CollectVisitor::new(names.clone(), 13)).unwrap();
        for threads in THREAD_COUNTS {
            let par =
                run_parallel(&lp, threads, || CollectVisitor::new(names.clone(), 13)).unwrap();
            assert_eq!(
                par.visitor.points, serial.visitor.points,
                "{name}: capped prefix diverged at {threads} threads"
            );
        }
    }
}

/// Back-to-back parallel runs agree with each other (the chunk race never
/// leaks into results), and the report's accounting matches the outcome.
#[test]
fn repeated_runs_and_reports_agree() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        for threads in THREAD_COUNTS {
            let opts = ParallelOptions::new(threads);
            let (a, ra) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
            let (b, rb) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
            assert_eq!(a.stats, b.stats, "{name}: reruns diverged at {threads} threads");
            assert_eq!(a.visitor.count, b.visitor.count, "{name}");
            // Scheduler shape is deterministic even though worker
            // assignment is not.
            assert_eq!(
                (ra.chunks, ra.chunk_len, ra.outer_len),
                (rb.chunks, rb.chunk_len, rb.outer_len),
                "{name}: scheduler shape diverged at {threads} threads"
            );
            assert_eq!(ra.survivors, a.stats.survivors, "{name}");
            let by_worker: u64 = ra.workers.iter().map(|w| w.survivors).sum();
            assert_eq!(by_worker, ra.survivors, "{name}: worker accounting leak");
        }
    }
}

/// Interval block pruning is invisible in results: with intervals on or
/// off, serial and parallel sweeps at every thread count produce the same
/// survivors in the same order. Only `PruneStats::evaluated` may shrink
/// (subtree skips remove per-point evaluations), and `pruned`/`survivors`
/// never change. The intervals-on runs must additionally be bit-for-bit
/// identical to each other across thread counts.
#[test]
fn intervals_on_and_off_agree_at_every_thread_count() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let on = Compiled::new(lp.clone());
        let off = Compiled::with_options(lp.clone(), EngineOptions::no_intervals());
        let names = on.point_names().clone();
        let serial_on = on.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();
        let serial_off = off.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();

        // Same survivors, same order, same rejection counts; evaluations
        // can only shrink with intervals on.
        assert_eq!(
            serial_on.visitor.points, serial_off.visitor.points,
            "{name}: intervals changed survivors or their order"
        );
        assert_eq!(serial_on.stats.survivors, serial_off.stats.survivors, "{name}");
        for i in 0..serial_off.stats.evaluated.len() {
            assert!(
                serial_on.stats.evaluated[i] <= serial_off.stats.evaluated[i],
                "{name}: intervals *increased* evaluations of constraint {i}"
            );
            // A skipped subtree removes the skip-deciding constraint's
            // per-point rejections along with the evaluations.
            assert!(
                serial_on.stats.pruned[i] <= serial_off.stats.pruned[i],
                "{name}: intervals *increased* rejections of constraint {i}"
            );
        }
        assert_eq!(serial_off.blocks, BlockStats::default(), "{name}: off mode counted blocks");

        for threads in THREAD_COUNTS {
            for (mode, engine, serial) in [
                ("on", EngineOptions::default(), &serial_on),
                ("off", EngineOptions::no_intervals(), &serial_off),
            ] {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, _) = run_parallel_report(&lp, &opts, || {
                    CollectVisitor::new(names.clone(), usize::MAX)
                })
                .unwrap();
                assert_eq!(
                    par.visitor.points, serial.visitor.points,
                    "{name}: intervals-{mode} visit order diverged at {threads} threads"
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "{name}: intervals-{mode} stats diverged at {threads} threads"
                );
                assert_eq!(
                    par.blocks, serial.blocks,
                    "{name}: intervals-{mode} block counters diverged at {threads} threads"
                );
            }
        }
    }
}

/// The congruence half of the guard product is invisible in results: with
/// congruence tracking on or off, serial and parallel sweeps at every
/// thread count produce the same survivors in the same order (the reduced
/// product never changes an interval verdict, so guard decisions can only
/// be *added*, and added decisions remove whole subtrees no survivor lives
/// in). On the divisibility-heavy GEMM space the congruence half must also
/// actually earn its keep: at least one subtree skip the interval hull
/// could not decide.
#[test]
fn congruence_on_and_off_agree_at_every_thread_count() {
    let mut total_congruence_skips = 0u64;
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let on = Compiled::new(lp.clone());
        let off = Compiled::with_options(lp.clone(), EngineOptions::no_congruence());
        let names = on.point_names().clone();
        let serial_on = on.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();
        let serial_off = off.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();

        assert_eq!(
            serial_on.visitor.points, serial_off.visitor.points,
            "{name}: congruence changed survivors or their order"
        );
        assert_eq!(serial_on.stats.survivors, serial_off.stats.survivors, "{name}");
        for i in 0..serial_off.stats.evaluated.len() {
            assert!(
                serial_on.stats.evaluated[i] <= serial_off.stats.evaluated[i],
                "{name}: congruence *increased* evaluations of constraint {i}"
            );
            assert!(
                serial_on.stats.pruned[i] <= serial_off.stats.pruned[i],
                "{name}: congruence *increased* rejections of constraint {i}"
            );
        }
        assert_eq!(
            serial_off.blocks.congruence_skips, 0,
            "{name}: congruence-off mode counted congruence skips"
        );
        assert!(
            serial_on.blocks.congruence_skips <= serial_on.blocks.subtree_skips,
            "{name}: congruence skips are a subset of subtree skips"
        );
        total_congruence_skips += serial_on.blocks.congruence_skips;

        for threads in THREAD_COUNTS {
            for (mode, engine, serial) in [
                ("on", EngineOptions::default(), &serial_on),
                ("off", EngineOptions::no_congruence(), &serial_off),
            ] {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, _) = run_parallel_report(&lp, &opts, || {
                    CollectVisitor::new(names.clone(), usize::MAX)
                })
                .unwrap();
                assert_eq!(
                    par.visitor.points, serial.visitor.points,
                    "{name}: congruence-{mode} visit order diverged at {threads} threads"
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "{name}: congruence-{mode} stats diverged at {threads} threads"
                );
                assert_eq!(
                    par.blocks, serial.blocks,
                    "{name}: congruence-{mode} block counters diverged at {threads} threads"
                );
            }
        }
    }
    assert!(
        total_congruence_skips > 0,
        "congruence guards never fired on any space (GEMM's divisibility \
         constraints should produce skips)"
    );
}

/// Constraint scheduling is invisible in results: static and adaptive
/// check ordering — with intervals on or off, serial and parallel at every
/// thread count — reproduces the declared-order survivors in the identical
/// emission order. Only the per-constraint kill *credit* may move between
/// the members of a reorder-safe group.
#[test]
fn schedule_modes_agree_at_every_thread_count() {
    use beast_core::schedule::ScheduleMode;
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let baseline_engine = Compiled::new(lp.clone());
        let names = baseline_engine.point_names().clone();
        let baseline = baseline_engine
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        for mode in [ScheduleMode::Static, ScheduleMode::Adaptive] {
            for intervals in [true, false] {
                let mut engine = if intervals {
                    EngineOptions::default()
                } else {
                    EngineOptions::no_intervals()
                };
                engine.schedule = mode;
                let serial = Compiled::with_options(lp.clone(), engine)
                    .run(CollectVisitor::new(names.clone(), usize::MAX))
                    .unwrap();
                assert_eq!(
                    serial.visitor.points, baseline.visitor.points,
                    "{name}: {mode} (intervals={intervals}) changed survivors or order"
                );
                assert_eq!(serial.stats.survivors, baseline.stats.survivors, "{name}");
                for threads in THREAD_COUNTS {
                    let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                    let (par, report) = run_parallel_report(&lp, &opts, || {
                        CollectVisitor::new(names.clone(), usize::MAX)
                    })
                    .unwrap();
                    assert_eq!(
                        par.visitor.points, baseline.visitor.points,
                        "{name}: {mode} (intervals={intervals}) diverged at {threads} threads"
                    );
                    assert_eq!(report.schedule.mode, mode.as_str(), "{name}");
                }
            }
        }
    }
}

/// The determinism contract survives fault recovery: with a pinned chunk
/// grid and a seeded injector, every space produces the same survivors in
/// the same order — and the same structured fault records — at every
/// thread count, under both point-skip and chunk-quarantine policies.
#[test]
fn faulted_sweeps_are_thread_count_invariant() {
    use beast_engine::fault::FaultPolicy;
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let compiled = Compiled::new(lp.clone());
        let names = compiled.point_names().clone();
        for policy in [FaultPolicy::SkipPoint, FaultPolicy::QuarantineChunk] {
            let mut baseline = None;
            for threads in THREAD_COUNTS {
                let opts = ParallelOptions {
                    threads,
                    chunk_count: 12,
                    fault_policy: policy,
                    injector: Some(FaultInjector::new(7).error_rate(0.002)),
                    ..ParallelOptions::default()
                };
                let (par, report) = run_parallel_report(&lp, &opts, || {
                    CollectVisitor::new(names.clone(), usize::MAX)
                })
                .unwrap();
                match &baseline {
                    None => baseline = Some((par.visitor.points, report.faults)),
                    Some((points, faults)) => {
                        assert_eq!(
                            &par.visitor.points, points,
                            "{name}: {policy:?} survivors diverged at {threads} threads"
                        );
                        assert_eq!(
                            &report.faults, faults,
                            "{name}: {policy:?} fault records diverged at {threads} threads"
                        );
                    }
                }
            }
        }
    }
}

/// Batched lane evaluation is invisible in results: with the batch tier on
/// or off, serial and parallel sweeps at every thread count produce the
/// same survivors in the same order with identical `PruneStats` *and*
/// identical `BlockStats` (the slab path defers stats crediting so even
/// per-constraint evaluation counts match the scalar path exactly). The
/// lane counters are the only permitted difference: batch-off runs must
/// report zero lane activity, and the GEMM space must actually exercise
/// the slab path.
#[test]
fn batch_on_and_off_agree_at_every_thread_count() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let on = Compiled::new(lp.clone());
        let off = Compiled::with_options(lp.clone(), EngineOptions::no_batch());
        let names = on.point_names().clone();
        let serial_on = on.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();
        let serial_off = off.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();

        assert_eq!(
            serial_on.visitor.points, serial_off.visitor.points,
            "{name}: batching changed survivors or their order"
        );
        assert_eq!(serial_on.stats, serial_off.stats, "{name}: batching changed PruneStats");
        assert_eq!(serial_on.blocks, serial_off.blocks, "{name}: batching changed BlockStats");
        assert_eq!(
            serial_off.lanes,
            LaneStats::default(),
            "{name}: batch-off mode counted lane activity"
        );
        if name == "gemm" {
            assert!(serial_on.lanes.lane_evals > 0, "gemm never hit the slab path");
        }

        // A deliberately odd lane width stresses tail masking (almost every
        // block is partial) and must still be invisible in results.
        let w7 = Compiled::with_options(
            lp.clone(),
            EngineOptions { lane_width: 7, ..EngineOptions::default() },
        );
        let serial_w7 = w7.run(CollectVisitor::new(names.clone(), usize::MAX)).unwrap();
        assert_eq!(
            serial_w7.visitor.points, serial_on.visitor.points,
            "{name}: lane_width=7 changed survivors or their order"
        );
        assert_eq!(serial_w7.stats, serial_on.stats, "{name}: lane_width=7 changed PruneStats");
        assert_eq!(serial_w7.blocks, serial_on.blocks, "{name}: lane_width=7 changed BlockStats");

        for threads in THREAD_COUNTS {
            for (mode, engine, serial) in [
                ("on", EngineOptions::default(), &serial_on),
                ("off", EngineOptions::no_batch(), &serial_off),
            ] {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, report) = run_parallel_report(&lp, &opts, || {
                    CollectVisitor::new(names.clone(), usize::MAX)
                })
                .unwrap();
                assert_eq!(
                    par.visitor.points, serial.visitor.points,
                    "{name}: batch-{mode} visit order diverged at {threads} threads"
                );
                assert_eq!(
                    par.stats, serial.stats,
                    "{name}: batch-{mode} stats diverged at {threads} threads"
                );
                assert_eq!(
                    par.blocks, serial.blocks,
                    "{name}: batch-{mode} block counters diverged at {threads} threads"
                );
                if mode == "off" {
                    assert_eq!(
                        report.lanes,
                        LaneStats::default(),
                        "{name}: batch-off parallel run counted lane activity at {threads} threads"
                    );
                } else if name == "gemm" {
                    assert!(
                        report.lanes.lane_evals > 0,
                        "{name}: parallel batch run never hit the slab path at {threads} threads"
                    );
                }
            }
        }
    }
}

/// The runtime-native tier (chunks evaluated in gcc-compiled worker
/// processes) reproduces the compiled tier bit for bit at every thread
/// count: same survivors, same emission order, and — against a compiled
/// engine normalized to the worker's per-point declared-order accounting —
/// identical `PruneStats`. On hosts without a C compiler the tier must
/// silently fall back and still produce the identical outcome.
#[test]
fn native_tier_matches_compiled_bit_for_bit() {
    use beast_core::schedule::ScheduleMode;

    let lp = lower(&gemm_space());
    let compiled = Compiled::new(lp.clone());
    let names = compiled.point_names().clone();
    let baseline = compiled
        .run(CollectVisitor::new(names.clone(), usize::MAX))
        .unwrap();
    // Stats reference: native workers account per point in declared order
    // with no block pruning, so the comparable in-process run disables the
    // interval/congruence product and reordering (batching stays on — it is
    // stats-invisible, see `batch_on_and_off_agree_at_every_thread_count`).
    let normalized = Compiled::with_options(
        lp.clone(),
        EngineOptions {
            intervals: false,
            congruence: false,
            schedule: ScheduleMode::Declared,
            ..EngineOptions::native()
        },
    )
    .run(CollectVisitor::new(names.clone(), usize::MAX))
    .unwrap();
    assert_eq!(
        normalized.visitor.points, baseline.visitor.points,
        "normalization itself must not change survivors or order"
    );

    for threads in THREAD_COUNTS {
        let opts = ParallelOptions {
            threads,
            engine: EngineOptions::native(),
            ..ParallelOptions::default()
        };
        let (par, report) = run_parallel_report(&lp, &opts, || {
            CollectVisitor::new(names.clone(), usize::MAX)
        })
        .unwrap();
        assert_eq!(
            par.visitor.points, baseline.visitor.points,
            "native visit order diverged from compiled at {threads} threads"
        );
        assert_eq!(
            par.stats, normalized.stats,
            "native PruneStats diverged from declared-order compiled at {threads} threads"
        );
        if beast_codegen::find_c_compiler().is_some() {
            let n = report
                .native
                .expect("a C compiler is present: the native tier must be active");
            assert!(n.chunks_native > 0, "no chunks ran in worker processes");
            assert_eq!(n.chunks_fallback, 0, "healthy workers must not fall back");
            assert_eq!(
                n.rows_streamed, par.stats.survivors,
                "streamed rows must equal survivors at {threads} threads"
            );
        }
    }
}

/// Same bit-identity contract on the larger reduced(32) GEMM device,
/// pinned through the order-sensitive survivor fingerprint (collecting
/// every point would dominate the suite's runtime at this size).
#[test]
fn native_tier_fingerprints_match_on_reduced_32() {
    let space = build_gemm_space(&GemmSpaceParams::reduced(32)).unwrap();
    let lp = lower(&space);
    let baseline = Compiled::new(lp.clone()).run(FingerprintVisitor::new()).unwrap();
    assert!(baseline.visitor.count > 0, "degenerate reduced(32) space");
    for threads in THREAD_COUNTS {
        let opts = ParallelOptions {
            threads,
            engine: EngineOptions::native(),
            ..ParallelOptions::default()
        };
        let (par, _) = run_parallel_report(&lp, &opts, FingerprintVisitor::new).unwrap();
        assert_eq!(
            (par.visitor.count, par.visitor.hash),
            (baseline.visitor.count, baseline.visitor.hash),
            "native fingerprint diverged on reduced(32) at {threads} threads"
        );
    }
}

/// Forcing pathologically fine chunks (1 outer value per chunk) still
/// reproduces the serial outcome — chunk granularity is invisible.
#[test]
fn chunk_granularity_is_invisible() {
    for (name, space) in all_spaces() {
        let lp = lower(&space);
        let compiled = Compiled::new(lp.clone());
        let names = compiled.point_names().clone();
        let serial = compiled
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        for chunks_per_thread in [1, 7, 1024] {
            let opts = ParallelOptions {
                threads: 3,
                chunks_per_thread,
                ..ParallelOptions::default()
            };
            let (par, _) = run_parallel_report(&lp, &opts, || {
                CollectVisitor::new(names.clone(), usize::MAX)
            })
            .unwrap();
            assert_eq!(
                par.visitor.points, serial.visitor.points,
                "{name}: chunks_per_thread={chunks_per_thread} changed results"
            );
            assert_eq!(par.stats, serial.stats, "{name}");
        }
    }
}
