//! Fault-tolerance regression suite for the sweep supervisor.
//!
//! Pins the contracts documented on [`beast_engine::parallel`] and
//! [`beast_engine::checkpoint`]:
//!
//! - Injected faults are keyed on `(seed, chunk, ordinal, attempt)` only,
//!   so with a pinned chunk grid the *same* faults fire — and the same
//!   structured [`FaultRecord`]s come back — at every thread count.
//! - Recovery policies degrade deterministically: `SkipPoint` drops exactly
//!   the faulted points, `QuarantineChunk` drops exactly the faulted
//!   chunks, and `Retry` over transient faults reproduces the un-faulted
//!   sweep bit for bit (with idempotent progress accounting).
//! - Injected panics are caught at the chunk boundary and never poison the
//!   orchestrator.
//! - An interrupted checkpointed sweep, resumed, is bit-identical to an
//!   uninterrupted run: same survivors, same emission order (fingerprint),
//!   same merged [`PruneStats`].

use std::sync::Arc;

use beast::prelude::*;
use beast_core::ir::LoweredPlan;
use beast_engine::checkpoint::{run_checkpointed, CheckpointConfig};
use beast_engine::fault::{FaultKind, FaultPolicy};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Pinned chunk grid: injector decisions and checkpoint prefixes are keyed
/// on chunk indices, so every run in this suite uses the same grid.
const CHUNKS: usize = 16;

fn gemm_lowered() -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

fn opts(threads: usize) -> ParallelOptions {
    ParallelOptions {
        threads,
        chunk_count: CHUNKS,
        ..ParallelOptions::default()
    }
}

/// A unique scratch path for checkpoint files.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("beast-fault-tolerance");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Injected errors under `SkipPoint` and `QuarantineChunk` produce the
/// same survivors, same fingerprint, and byte-identical fault records at
/// every thread count.
#[test]
fn injected_faults_are_thread_count_invariant() {
    let lp = gemm_lowered();
    for policy in [FaultPolicy::SkipPoint, FaultPolicy::QuarantineChunk] {
        let mut baseline: Option<(FingerprintVisitor, Vec<FaultRecord>, PruneStats)> = None;
        for threads in THREAD_COUNTS {
            let mut o = opts(threads);
            o.fault_policy = policy;
            o.injector = Some(FaultInjector::new(42).error_rate(0.001));
            let (out, report) =
                run_parallel_report(&lp, &o, FingerprintVisitor::default).unwrap();
            assert!(!report.partial, "{policy:?}: faulted sweep marked partial");
            assert!(
                !report.faults.is_empty(),
                "{policy:?}: injector never fired — rate too low for this space"
            );
            match &baseline {
                None => baseline = Some((out.visitor, report.faults, out.stats)),
                Some((fp, faults, stats)) => {
                    assert_eq!(
                        &out.visitor, fp,
                        "{policy:?}: fingerprint diverged at {threads} threads"
                    );
                    assert_eq!(
                        &report.faults, faults,
                        "{policy:?}: fault records diverged at {threads} threads"
                    );
                    assert_eq!(
                        &out.stats, stats,
                        "{policy:?}: stats diverged at {threads} threads"
                    );
                }
            }
        }
    }
}

/// `SkipPoint` loses at most one survivor per fault record; every other
/// point of the un-faulted sweep is still emitted, in order.
#[test]
fn skip_point_drops_at_most_the_faulted_points() {
    let lp = gemm_lowered();
    let (clean, _) = run_parallel_report(&lp, &opts(2), FingerprintVisitor::default).unwrap();
    let mut o = opts(2);
    o.fault_policy = FaultPolicy::SkipPoint;
    o.injector = Some(FaultInjector::new(42).error_rate(0.001));
    let (faulted, report) = run_parallel_report(&lp, &o, FingerprintVisitor::default).unwrap();
    let skipped = report.fault_counters.points_skipped;
    assert!(skipped > 0, "injector never fired");
    assert!(
        clean.visitor.count - faulted.visitor.count <= skipped,
        "skip dropped more survivors ({} → {}) than faults recorded ({skipped})",
        clean.visitor.count,
        faulted.visitor.count
    );
}

/// Transient faults under `Retry` recover completely: the outcome is
/// bit-identical to the un-faulted sweep, every fault shows up as a
/// `Retried` record, and the progress counter stays idempotent — retried
/// chunks are counted once, not once per attempt.
#[test]
fn transient_retry_reproduces_the_unfaulted_sweep() {
    let lp = gemm_lowered();
    let (clean, _) = run_parallel_report(&lp, &opts(2), FingerprintVisitor::default).unwrap();
    for threads in THREAD_COUNTS {
        let progress = Arc::new(SweepProgress::default());
        let mut o = opts(threads);
        o.fault_policy = FaultPolicy::Retry { max: 2, backoff_ms: 0 };
        o.injector = Some(FaultInjector::new(42).error_rate(0.001).transient(true));
        o.progress = Some(progress.clone());
        let (out, report) = run_parallel_report(&lp, &o, FingerprintVisitor::default).unwrap();
        assert_eq!(
            out.visitor, clean.visitor,
            "retry over transient faults diverged at {threads} threads"
        );
        assert_eq!(out.stats, clean.stats, "stats diverged at {threads} threads");
        assert!(report.fault_counters.retries > 0, "injector never fired");
        assert_eq!(
            report.fault_counters.chunks_quarantined, 0,
            "transient faults should never exhaust two retries"
        );
        // Idempotent accounting (the double-count bug): chunks and tuples
        // are credited when a chunk *folds*, not per attempt.
        let snap = progress.snapshot();
        assert_eq!(snap.chunks_done, report.chunks, "chunks over-counted at {threads} threads");
        assert_eq!(
            snap.tuples_decided,
            out.stats.survivors + out.stats.total_pruned(),
            "tuples_decided over-counted on retried chunks at {threads} threads"
        );
    }
}

/// Injected panics are confined to their chunk: the sweep completes, the
/// process never aborts, and each panic is a structured record.
#[test]
fn injected_panics_never_poison_the_orchestrator() {
    let lp = gemm_lowered();
    let mut baseline: Option<(FingerprintVisitor, Vec<FaultRecord>)> = None;
    for threads in THREAD_COUNTS {
        let mut o = opts(threads);
        o.fault_policy = FaultPolicy::QuarantineChunk;
        o.injector = Some(FaultInjector::new(11).panic_rate(0.3));
        let (out, report) =
            run_parallel_report(&lp, &o, FingerprintVisitor::default).unwrap();
        assert!(report.fault_counters.panics > 0, "injector never fired");
        assert_eq!(
            report.fault_counters.panics, report.fault_counters.chunks_quarantined,
            "every panic quarantines exactly one chunk"
        );
        for r in &report.faults {
            assert_eq!(r.kind, FaultKind::Panic);
            assert!(r.error.contains("injected panic"), "unexpected payload: {}", r.error);
        }
        match &baseline {
            None => baseline = Some((out.visitor, report.faults)),
            Some((fp, faults)) => {
                assert_eq!(&out.visitor, fp, "panic set diverged at {threads} threads");
                assert_eq!(&report.faults, faults, "records diverged at {threads} threads");
            }
        }
    }
}

/// An already-expired deadline degrades to an empty partial result instead
/// of an error — the graceful-degradation contract.
#[test]
fn expired_deadline_degrades_to_partial() {
    let lp = gemm_lowered();
    let mut o = opts(4);
    o.deadline = Some(std::time::Duration::ZERO);
    let (out, report) = run_parallel_report(&lp, &o, FingerprintVisitor::default).unwrap();
    assert!(report.partial, "expired deadline must mark the report partial");
    assert_eq!(out.visitor.count, 0);
}

/// The headline acceptance check: interrupt a checkpointed GEMM sweep
/// after K chunks, resume it, and the final outcome — survivors, emission
/// order, merged `PruneStats` and block counters — is bit-identical to an
/// uninterrupted run, at every thread count.
#[test]
fn interrupted_then_resumed_equals_uninterrupted() {
    let lp = gemm_lowered();
    let (full, full_report) =
        run_parallel_report(&lp, &opts(2), FingerprintVisitor::default).unwrap();
    assert!(full.visitor.count > 0);
    for threads in THREAD_COUNTS {
        let path = scratch(&format!("resume-{threads}.json"));
        let _ = std::fs::remove_file(&path);

        // Phase 1: run, but stop pulling chunks after 5 — a deterministic
        // stand-in for killing the process mid-sweep.
        let mut o = opts(threads);
        o.stop_after_chunks = 5;
        let ck = CheckpointConfig { path: path.clone(), every_chunks: 2, resume: false };
        let (_, partial) =
            run_checkpointed(&lp, &o, &ck, FingerprintVisitor::default).unwrap();
        assert!(partial.partial, "stopped sweep must be partial at {threads} threads");
        let pulled: u64 = partial.workers.iter().map(|w| w.chunks).sum();
        assert!(pulled < full_report.chunks as u64, "stop_after_chunks did not stop early");

        // Phase 2: resume from the file and finish.
        let o = opts(threads);
        let ck = CheckpointConfig { path: path.clone(), every_chunks: 2, resume: true };
        let (resumed, report) =
            run_checkpointed(&lp, &o, &ck, FingerprintVisitor::default).unwrap();
        assert!(!report.partial, "resumed sweep did not finish at {threads} threads");
        assert!(report.resumed_at.is_some());
        assert_eq!(
            resumed.visitor, full.visitor,
            "resume fingerprint diverged at {threads} threads"
        );
        assert_eq!(resumed.stats, full.stats, "resume stats diverged at {threads} threads");
        assert_eq!(resumed.blocks, full.blocks, "resume blocks diverged at {threads} threads");
        let _ = std::fs::remove_file(&path);
    }
}

/// Resuming a checkpoint written by a *different* space refuses cleanly
/// with a structured checkpoint error, not a corrupt merge.
#[test]
fn resume_refuses_a_mismatched_checkpoint() {
    let lp = gemm_lowered();
    let other = Space::builder("ft_other")
        .range("x", 0, 8)
        .build()
        .unwrap();
    let other_lp = {
        let plan = Plan::new(&other, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    };
    let path = scratch("mismatch.json");
    let _ = std::fs::remove_file(&path);
    let ck = CheckpointConfig { path: path.clone(), every_chunks: 1, resume: false };
    let mut o = opts(2);
    o.stop_after_chunks = 2;
    run_checkpointed(&other_lp, &o, &ck, FingerprintVisitor::default).unwrap();

    let ck = CheckpointConfig { path: path.clone(), every_chunks: 1, resume: true };
    let err = run_checkpointed(&lp, &opts(2), &ck, FingerprintVisitor::default).unwrap_err();
    assert!(
        matches!(err, SweepError::Checkpoint(_)),
        "expected a checkpoint error, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}
