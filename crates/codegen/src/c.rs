//! The C backend — the paper's primary target: "a translation system that
//! converts that description to a standard C code, which can then be
//! compiled with a C compiler, executed at high speed" (Section I).

use beast_core::expr::Builtin;

use crate::backend::Backend;
use crate::flatten::{ArithOp, CmpOp, PExpr};
use crate::lower::{LoweredProgram, SNode};
use crate::writer::CodeWriter;

/// C (C99) source generator.
#[derive(Debug, Default, Clone, Copy)]
pub struct CBackend;

pub(crate) fn expr_c(e: &PExpr) -> String {
    expr(e)
}

fn expr(e: &PExpr) -> String {
    match e {
        PExpr::Const(k) => {
            // `-9223372036854775808LL` is formally two tokens (unary minus on
            // an out-of-range literal); spell INT64_MIN the portable way.
            if *k == i64::MIN {
                "(-9223372036854775807LL - 1)".to_string()
            } else {
                format!("{k}LL")
            }
        }
        PExpr::Var(v) => v.clone(),
        PExpr::Arith(op, a, b) => {
            let (a, b) = (expr(a), expr(b));
            let f = match op {
                ArithOp::Add => "b_add",
                ArithOp::Sub => "b_sub",
                ArithOp::Mul => "b_mul",
                ArithOp::Div => "b_div",
                ArithOp::FloorDiv => "b_floordiv",
                ArithOp::Rem => "b_rem",
            };
            format!("{f}({a}, {b})")
        }
        PExpr::Cmp(op, a, b) => {
            let tok = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            format!("((int64_t)({} {tok} {}))", expr(a), expr(b))
        }
        PExpr::Neg(a) => format!("b_neg({})", expr(a)),
        PExpr::Not(a) => format!("((int64_t)({} == 0))", expr(a)),
        PExpr::Abs(a) => format!("b_abs({})", expr(a)),
        PExpr::Call(b, x, y) => {
            let f = match b {
                Builtin::Min => "b_min",
                Builtin::Max => "b_max",
                Builtin::DivCeil => "b_divceil",
                Builtin::Gcd => "b_gcd",
                Builtin::RoundUp => "b_roundup",
                Builtin::Abs => unreachable!("abs is unary"),
            };
            format!("{f}({}, {})", expr(x), expr(y))
        }
    }
}

/// Emit the arithmetic runtime shared by every C-family emitter (plain C,
/// OpenMP, and the native chunk worker).
///
/// The helpers replicate the engine's postfix interpreter bit for bit, i64
/// extremes included: `+`/`-`/`*`/negate/abs wrap modulo 2^64 (via unsigned
/// arithmetic, so no signed-overflow UB); `/` and `%` are the wrapping
/// truncated forms (`INT64_MIN / -1 == INT64_MIN`, `INT64_MIN % -1 == 0`);
/// floor-division is *Euclidean* (`div_euclid`, remainder always
/// non-negative), not C99/Python floor semantics. Division by zero and the
/// one unrepresentable Euclidean quotient abort through `b_fail` (exit 2),
/// mirroring the interpreter's evaluation error / overflow panic.
pub(crate) fn emit_c_helpers(w: &mut CodeWriter) {
    w.line("static int64_t b_add(int64_t a, int64_t b) { return (int64_t)((uint64_t)a + (uint64_t)b); }");
    w.line("static int64_t b_sub(int64_t a, int64_t b) { return (int64_t)((uint64_t)a - (uint64_t)b); }");
    w.line("static int64_t b_mul(int64_t a, int64_t b) { return (int64_t)((uint64_t)a * (uint64_t)b); }");
    w.line("static int64_t b_neg(int64_t a) { return (int64_t)(0ULL - (uint64_t)a); }");
    w.line("static int64_t b_min(int64_t a, int64_t b) { return a < b ? a : b; }");
    w.line("static int64_t b_max(int64_t a, int64_t b) { return a > b ? a : b; }");
    w.line("static int64_t b_abs(int64_t a) { return a < 0 ? b_neg(a) : a; }");
    w.line("static void b_fail(const char *what) { fprintf(stderr, \"evaluation error: %s\\n\", what); exit(2); }");
    w.line("static int64_t b_div(int64_t a, int64_t b) { if (b == 0) b_fail(\"division by zero\"); if (b == -1) return b_neg(a); return a / b; }");
    w.line("static int64_t b_rem(int64_t a, int64_t b) { if (b == 0) b_fail(\"division by zero\"); if (b == -1) return 0; return a % b; }");
    w.line("static int64_t b_floordiv(int64_t a, int64_t b) { int64_t q, r; if (b == 0) b_fail(\"division by zero\"); if (a == INT64_MIN && b == -1) b_fail(\"floor-division overflow\"); q = a / b; r = a % b; if (r < 0) q = (b > 0) ? q - 1 : q + 1; return q; }");
    w.line("static int64_t b_divceil(int64_t a, int64_t b) { return b_floordiv(b_sub(b_add(a, b), 1), b); }");
    w.line("static int64_t b_roundup(int64_t a, int64_t b) { return b_mul(b_divceil(a, b), b); }");
    w.line("static int64_t b_gcd(int64_t a, int64_t b) { uint64_t x = a < 0 ? 0ULL - (uint64_t)a : (uint64_t)a; uint64_t y = b < 0 ? 0ULL - (uint64_t)b : (uint64_t)b; while (y != 0) { uint64_t t = x % y; x = y; y = t; } return (int64_t)x; }");
}

fn emit(w: &mut CodeWriter, nodes: &[SNode], program: &LoweredProgram, loop_depth: usize) {
    for node in nodes {
        match node {
            SNode::Declare { .. } => {} // all temps pre-declared at the top
            SNode::Assign { var, value } => w.line(format!("{var} = {};", expr(value))),
            SNode::If { cond, then, otherwise } => {
                w.open(format!("if ({} != 0) {{", expr(cond)));
                emit(w, then, program, loop_depth);
                if !otherwise.is_empty() {
                    w.hinge("} else {");
                    emit(w, otherwise, program, loop_depth);
                }
                w.close("}");
            }
            SNode::RangeLoop { var, start, stop, step, const_positive_step, body } => {
                if *const_positive_step {
                    w.open(format!("for ({var} = {start}; {var} < {stop}; {var} += {step}) {{"));
                } else {
                    w.open(format!(
                        "for ({var} = {start}; ({step} > 0) ? ({var} < {stop}) : ({var} > {stop}); {var} += {step}) {{"
                    ));
                }
                emit(w, body, program, loop_depth + 1);
                w.close("}");
            }
            SNode::ValuesLoop { var, pool, body } => {
                let n = program.pools[*pool].len();
                w.open(format!(
                    "for (size_t _pi_{var} = 0; _pi_{var} < {n}; _pi_{var}++) {{"
                ));
                w.line(format!("{var} = pool_{pool}[_pi_{var}];"));
                emit(w, body, program, loop_depth + 1);
                w.close("}");
            }
            SNode::Prune { idx } => {
                w.line(format!("pruned[{idx}]++;"));
                if loop_depth > 0 {
                    w.line("continue;");
                } else {
                    w.line("return;");
                }
            }
            SNode::Visit => {
                w.line("survivors++;");
                let xor = program.vars.join(" ^ ");
                w.line(format!("checksum ^= {xor};"));
            }
        }
    }
}

impl Backend for CBackend {
    fn language(&self) -> &'static str {
        "C"
    }

    fn extension(&self) -> &'static str {
        "c"
    }

    fn generate(&self, p: &LoweredProgram) -> String {
        let mut w = CodeWriter::new();
        w.line(format!("/* generated by beast-codegen: space `{}` */", p.name));
        w.line("#include <stdio.h>");
        w.line("#include <stdint.h>");
        w.line("#include <stdlib.h>");
        w.line("#include <inttypes.h>");
        w.blank();
        emit_c_helpers(&mut w);
        w.blank();
        w.line("static uint64_t survivors = 0;");
        w.line(format!("static uint64_t pruned[{}];", p.constraint_names.len().max(1)));
        w.line("static int64_t checksum = 0;");
        for (i, pool) in p.pools.iter().enumerate() {
            let vals: Vec<String> = pool.iter().map(|v| format!("{v}LL")).collect();
            w.line(format!(
                "static const int64_t pool_{i}[{}] = {{{}}};",
                pool.len(),
                vals.join(", ")
            ));
        }
        w.blank();
        w.open("static void run(void) {");
        if !p.vars.is_empty() {
            w.line(format!("int64_t {};", join_decl(&p.vars)));
        }
        if !p.temps.is_empty() {
            w.line(format!("int64_t {};", join_decl(&p.temps)));
        }
        emit(&mut w, &p.body, p, 0);
        w.close("}");
        w.blank();
        w.open("int main(void) {");
        w.line("run();");
        w.line("printf(\"survivors %\" PRIu64 \"\\n\", survivors);");
        for (i, name) in p.constraint_names.iter().enumerate() {
            w.line(format!(
                "printf(\"pruned {name} %\" PRIu64 \"\\n\", pruned[{i}]);"
            ));
        }
        w.line("printf(\"checksum %\" PRId64 \"\\n\", checksum);");
        w.line("return 0;");
        w.close("}");
        w.finish()
    }
}

pub(crate) fn join_decl(names: &[String]) -> String {
    names
        .iter()
        .map(|n| format!("{n} = 0"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::tree::Program;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    #[test]
    fn generates_compilable_looking_c() {
        let s = Space::builder("cgen")
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .list("m", [0i64, 1])
            .derived("d", var("a") * var("b") + var("m"))
            .constraint("big", ConstraintClass::Hard, var("d").gt(20))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let prog = lower(&Program::from_lowered(&lp).unwrap());
        let src = CBackend.generate(&prog);
        assert!(src.contains("#include <stdint.h>"));
        assert!(src.contains("static void run(void)"));
        assert!(src.contains("pruned[0]++;"));
        assert!(src.contains("continue;"));
        assert!(src.contains("pool_0"));
        assert!(src.contains("checksum ^= a ^ b ^ m ^ d;"));
        assert!(src.contains("pruned big"));
        // Balanced braces.
        assert_eq!(
            src.matches('{').count(),
            src.matches('}').count(),
            "unbalanced braces:\n{src}"
        );
    }
}
