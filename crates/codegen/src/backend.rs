//! The backend interface and the canonical output contract.
//!
//! Every generated program, in every language, prints exactly:
//!
//! ```text
//! survivors <u64>
//! pruned <constraint-name> <u64>     (one line per constraint, in order)
//! checksum <i64>
//! ```
//!
//! The checksum XOR-folds every bound variable at every surviving point, so
//! two backends agree on it only if they enumerate the *same* survivors with
//! the same variable values — a far stronger cross-language equivalence
//! check than survivor counts alone.

use crate::lower::LoweredProgram;

/// A source-code generation backend.
pub trait Backend {
    /// Human-readable language name.
    fn language(&self) -> &'static str;
    /// Source-file extension (without dot).
    fn extension(&self) -> &'static str;
    /// Generate a complete, self-contained program.
    fn generate(&self, program: &LoweredProgram) -> String;
}

/// Parsed canonical output of a generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCounts {
    /// Survivor count.
    pub survivors: u64,
    /// Per-constraint (name, pruned) pairs in program order.
    pub pruned: Vec<(String, u64)>,
    /// XOR-fold of all variables over all survivors.
    pub checksum: i64,
}

impl RunCounts {
    /// Parse the canonical output format; `None` on any deviation.
    pub fn parse(output: &str) -> Option<RunCounts> {
        let mut survivors = None;
        let mut pruned = Vec::new();
        let mut checksum = None;
        for line in output.lines() {
            let mut it = line.split_whitespace();
            match it.next()? {
                "survivors" => survivors = Some(it.next()?.parse().ok()?),
                "pruned" => {
                    let name = it.next()?.to_string();
                    let count = it.next()?.parse().ok()?;
                    pruned.push((name, count));
                }
                "checksum" => checksum = Some(it.next()?.parse().ok()?),
                _ => return None,
            }
        }
        Some(RunCounts { survivors: survivors?, pruned, checksum: checksum? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = "survivors 42\npruned over_max 7\npruned low_occ 9\nchecksum -13\n";
        let c = RunCounts::parse(text).unwrap();
        assert_eq!(c.survivors, 42);
        assert_eq!(c.pruned.len(), 2);
        assert_eq!(c.pruned[1], ("low_occ".to_string(), 9));
        assert_eq!(c.checksum, -13);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunCounts::parse("hello world").is_none());
        assert!(RunCounts::parse("survivors x\nchecksum 0").is_none());
        assert!(RunCounts::parse("survivors 1").is_none()); // missing checksum
    }
}
