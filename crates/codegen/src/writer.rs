//! A tiny indentation-aware code writer shared by all backends.

/// Accumulates generated source with indentation management.
#[derive(Debug, Default)]
pub struct CodeWriter {
    buf: String,
    indent: usize,
    /// Indentation unit (defaults to four spaces).
    pub unit: &'static str,
}

impl CodeWriter {
    /// New writer with four-space indentation.
    pub fn new() -> CodeWriter {
        CodeWriter { buf: String::new(), indent: 0, unit: "    " }
    }

    /// Append one indented line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        for _ in 0..self.indent {
            self.buf.push_str(self.unit);
        }
        self.buf.push_str(s.as_ref());
        self.buf.push('\n');
    }

    /// Append a blank line.
    pub fn blank(&mut self) {
        self.buf.push('\n');
    }

    /// Append a line and increase indentation (block open).
    pub fn open(&mut self, s: impl AsRef<str>) {
        self.line(s);
        self.indent += 1;
    }

    /// Decrease indentation and append a line (block close).
    pub fn close(&mut self, s: impl AsRef<str>) {
        self.indent = self.indent.saturating_sub(1);
        self.line(s);
    }

    /// Decrease indentation, append the line, and increase again — for
    /// `} else {`-style hinges.
    pub fn hinge(&mut self, s: impl AsRef<str>) {
        self.indent = self.indent.saturating_sub(1);
        self.line(s);
        self.indent += 1;
    }

    /// Current indentation depth.
    pub fn depth(&self) -> usize {
        self.indent
    }

    /// Finish and return the source.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indentation_tracks_blocks() {
        let mut w = CodeWriter::new();
        w.open("fn main() {");
        w.line("let x = 1;");
        w.open("if x > 0 {");
        w.line("println!(\"hi\");");
        w.close("}");
        w.close("}");
        assert_eq!(
            w.finish(),
            "fn main() {\n    let x = 1;\n    if x > 0 {\n        println!(\"hi\");\n    }\n}\n"
        );
    }

    #[test]
    fn close_never_underflows() {
        let mut w = CodeWriter::new();
        w.close("}");
        assert_eq!(w.depth(), 0);
    }
}
