//! Backend-agnostic program tree extracted from a lowered plan.
//!
//! This is the input every source-code backend consumes: the loop nest with
//! hoisted defines and checks, constants already folded, all expressions in
//! integer IR. Spaces containing opaque Rust closures (deferred/closure
//! iterators or constraints) cannot be translated — the paper's system has
//! the same boundary: its translator consumes the declarative description,
//! not arbitrary host-language code.

use beast_core::constraint::ConstraintClass;
use beast_core::ir::{IntExpr, LBody, LIter, LStep, LoweredPlan};

/// Codegen errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The plan contains an opaque Rust closure that cannot be printed.
    Opaque(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Opaque(name) => {
                write!(f, "definition `{name}` is an opaque closure and cannot be translated")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// A loop domain.
#[derive(Debug, Clone)]
pub enum GDomain {
    /// Half-open range with IR bounds.
    Range {
        /// Inclusive start.
        start: IntExpr,
        /// Exclusive stop.
        stop: IntExpr,
        /// Stride (sign may be dynamic).
        step: IntExpr,
    },
    /// Explicit values.
    Values(Vec<i64>),
}

/// A program-tree node.
#[derive(Debug, Clone)]
pub enum GNode {
    /// A loop binding `var`.
    Loop {
        /// Loop variable name.
        var: String,
        /// The domain.
        domain: GDomain,
        /// Loop body.
        body: Vec<GNode>,
    },
    /// Derived-variable assignment.
    Define {
        /// Variable name.
        var: String,
        /// Value expression.
        expr: IntExpr,
    },
    /// Pruning check: when `expr` is nonzero, count it and skip to the next
    /// iteration of the innermost enclosing loop (or end the run when there
    /// is none).
    Check {
        /// Constraint index (into [`Program::constraints`]).
        idx: usize,
        /// The predicate.
        expr: IntExpr,
    },
    /// Survivor point: count it and fold all bound variables into the
    /// checksum.
    Visit,
}

/// One constraint's metadata.
#[derive(Debug, Clone)]
pub struct GConstraint {
    /// Name (used in the canonical output).
    pub name: String,
    /// Class, for generated comments.
    pub class: ConstraintClass,
}

/// The backend-agnostic program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (from the space name).
    pub name: String,
    /// Every variable the program binds (iterators then deriveds, slot
    /// order) — backends declare these and XOR them into the checksum.
    pub vars: Vec<String>,
    /// Constraint metadata, indexed by check `idx`.
    pub constraints: Vec<GConstraint>,
    /// Top-level nodes (preamble defines/checks, then the loop nest).
    pub roots: Vec<GNode>,
}

impl Program {
    /// Extract the program tree from a lowered plan.
    pub fn from_lowered(lp: &LoweredPlan) -> Result<Program, CodegenError> {
        let space = lp.plan.space();
        let vars: Vec<String> = lp.slot_names.iter().map(|n| n.to_string()).collect();
        let constraints: Vec<GConstraint> = space
            .constraints()
            .iter()
            .map(|c| GConstraint { name: c.name.to_string(), class: c.class })
            .collect();

        let mut stack: Vec<Vec<GNode>> = vec![Vec::new()];
        let mut open: Vec<(String, GDomain)> = Vec::new();
        for step in &lp.steps {
            match step {
                LStep::Bind { slot, domain, iter, .. } => {
                    let var = lp.slot_names[*slot as usize].to_string();
                    let domain = match domain {
                        LIter::Range { start, stop, step } => GDomain::Range {
                            start: start.clone(),
                            stop: stop.clone(),
                            step: step.clone(),
                        },
                        LIter::Values(v) => GDomain::Values(v.clone()),
                        LIter::Opaque { .. } => {
                            return Err(CodegenError::Opaque(
                                space.iters()[*iter].name.to_string(),
                            ))
                        }
                    };
                    open.push((var, domain));
                    stack.push(Vec::new());
                }
                LStep::Define { slot, body, derived } => {
                    let var = lp.slot_names[*slot as usize].to_string();
                    let expr = match body {
                        LBody::Expr(e) => e.clone(),
                        LBody::Opaque => {
                            return Err(CodegenError::Opaque(
                                space.deriveds()[*derived].name.to_string(),
                            ))
                        }
                    };
                    stack.last_mut().expect("body").push(GNode::Define { var, expr });
                }
                LStep::Check { constraint, body } => {
                    let expr = match body {
                        LBody::Expr(e) => e.clone(),
                        LBody::Opaque => {
                            return Err(CodegenError::Opaque(
                                space.constraints()[*constraint].name.to_string(),
                            ))
                        }
                    };
                    stack
                        .last_mut()
                        .expect("body")
                        .push(GNode::Check { idx: *constraint, expr });
                }
                LStep::Visit => stack.last_mut().expect("body").push(GNode::Visit),
            }
        }
        while let Some((var, domain)) = open.pop() {
            let body = stack.pop().expect("loop body");
            stack.last_mut().expect("outer").push(GNode::Loop { var, domain, body });
        }
        let roots = stack.pop().expect("roots");
        debug_assert!(stack.is_empty());
        Ok(Program { name: space.name().to_string(), vars, constraints, roots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    #[test]
    fn extracts_tree_shape() {
        let s = Space::builder("tree")
            .constant("cap", 10)
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint(
                "over",
                ConstraintClass::Hard,
                var("ab").gt(var("cap")),
            )
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let p = Program::from_lowered(&lp).unwrap();
        assert_eq!(p.vars, vec!["a", "b", "ab"]);
        assert_eq!(p.constraints.len(), 1);
        // One outer loop at the root.
        assert_eq!(p.roots.len(), 1);
        match &p.roots[0] {
            GNode::Loop { var, body, .. } => {
                assert_eq!(var, "a");
                assert!(matches!(body[0], GNode::Loop { .. }));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn opaque_spaces_are_rejected() {
        let s = Space::builder("opaque")
            .range("a", 0, 4)
            .deferred_iter("b", &["a"], |env| {
                Ok(beast_core::iterator::Realized::Range {
                    start: 0,
                    stop: env.require_int("a")?,
                    step: 1,
                })
            })
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let err = Program::from_lowered(&lp).unwrap_err();
        assert_eq!(err, CodegenError::Opaque("b".into()));
    }
}
