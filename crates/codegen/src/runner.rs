//! Compile-and-run harness for generated sources: the cross-language
//! equivalence check. Each generated program prints the canonical counters;
//! if a toolchain is missing on the host, the run is reported as
//! [`ToolchainResult::Unavailable`] rather than failing. Build and run are
//! timed separately so the benchmark harness can report both end-to-end and
//! run-only figures.
//!
//! Compiler probing and command plumbing live in [`crate::toolchain`], which
//! the engine's runtime-native tier shares; this module only adds the
//! counter-parsing contract on top.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use crate::backend::{Backend, RunCounts};
use crate::java::JAVA_CLASS;
use crate::lower::LoweredProgram;
use crate::toolchain::{
    compile, find_c_compiler, run_binary, run_cmd, which, write_source, ToolError,
};

/// Result of attempting to build + run a generated program.
#[derive(Debug)]
pub enum ToolchainResult {
    /// The program ran; counters parsed.
    Ran {
        /// Parsed canonical counters.
        counts: RunCounts,
        /// Compile time (zero for interpreted languages).
        build: Duration,
        /// Wall time of the generated program itself.
        run: Duration,
    },
    /// The needed compiler/interpreter is not installed.
    Unavailable(String),
    /// The toolchain exists but the build or run failed — a codegen bug.
    Failed {
        /// Which stage failed.
        stage: &'static str,
        /// Captured stderr/stdout.
        detail: String,
    },
}

impl ToolchainResult {
    /// The counters, if the program ran.
    pub fn counts(&self) -> Option<&RunCounts> {
        match self {
            ToolchainResult::Ran { counts, .. } => Some(counts),
            _ => None,
        }
    }
}

impl From<ToolError> for ToolchainResult {
    fn from(e: ToolError) -> ToolchainResult {
        match e {
            ToolError::Unavailable(what) => ToolchainResult::Unavailable(what),
            ToolError::Failed { stage, detail } => ToolchainResult::Failed { stage, detail },
        }
    }
}

fn parse_or_fail(stdout: String, build: Duration, run: Duration) -> ToolchainResult {
    match RunCounts::parse(&stdout) {
        Some(counts) => ToolchainResult::Ran { counts, build, run },
        None => ToolchainResult::Failed { stage: "parse", detail: stdout },
    }
}

/// Compile `src` with `compiler args` into `bin`, then run it.
fn compile_and_run(
    compiler: &Path,
    args: &[&str],
    src_path: &Path,
    bin: &Path,
    src: &str,
) -> ToolchainResult {
    if let Err(e) = write_source(src_path, src) {
        return e.into();
    }
    let build_time = match compile(compiler, args, src_path, bin) {
        Ok(d) => d,
        Err(e) => return e.into(),
    };
    match run_binary(bin) {
        Ok((out, run_time)) => parse_or_fail(out, build_time, run_time),
        Err(e) => e.into(),
    }
}

/// Run `src` directly through an interpreter.
fn interpret(interpreter: &Path, src_path: &Path, src: &str) -> ToolchainResult {
    if let Err(e) = write_source(src_path, src) {
        return e.into();
    }
    let t_run = Instant::now();
    let mut run = Command::new(interpreter);
    run.arg(src_path);
    match run_cmd(run, "run") {
        Ok(out) => parse_or_fail(out, Duration::ZERO, t_run.elapsed()),
        Err(e) => e.into(),
    }
}

/// Callback that builds and runs one generated source file.
type BuildAndRun = Box<dyn Fn(&Path, &str) -> ToolchainResult + Send + Sync>;

/// A language toolchain that can build and execute one backend's output.
pub struct Toolchain {
    /// Language name (matches the backend).
    pub language: &'static str,
    build_and_run: BuildAndRun,
}

impl Toolchain {
    /// Execute generated `source` in the scratch directory `dir`.
    pub fn execute(&self, dir: &Path, source: &str) -> ToolchainResult {
        (self.build_and_run)(dir, source)
    }

    /// C via `gcc` (or `cc`).
    pub fn c() -> Toolchain {
        Toolchain {
            language: "C",
            build_and_run: Box::new(|dir, src| {
                let Some(cc) = find_c_compiler() else {
                    return ToolchainResult::Unavailable("gcc/cc".into());
                };
                compile_and_run(&cc, &["-O2"], &dir.join("space.c"), &dir.join("space_c"), src)
            }),
        }
    }

    /// C with OpenMP via `gcc -O2 -fopenmp`; the generated program runs
    /// with `OMP_NUM_THREADS=4` so the reduction/private structure is
    /// actually exercised by concurrent threads.
    pub fn c_openmp() -> Toolchain {
        Toolchain {
            language: "C/OpenMP",
            build_and_run: Box::new(|dir, src| {
                let Some(cc) = which("gcc") else {
                    return ToolchainResult::Unavailable("gcc".into());
                };
                let src_path = dir.join("space_omp.c");
                let bin = dir.join("space_omp");
                if let Err(e) = write_source(&src_path, src) {
                    return e.into();
                }
                let build_time =
                    match compile(&cc, &["-O2", "-fopenmp"], &src_path, &bin) {
                        Ok(d) => d,
                        Err(e) => return e.into(),
                    };
                let t_run = Instant::now();
                let mut run = Command::new(&bin);
                run.env("OMP_NUM_THREADS", "4");
                match run_cmd(run, "run") {
                    Ok(out) => parse_or_fail(out, build_time, t_run.elapsed()),
                    Err(e) => e.into(),
                }
            }),
        }
    }

    /// Rust via `rustc -O`.
    pub fn rust() -> Toolchain {
        Toolchain {
            language: "Rust",
            build_and_run: Box::new(|dir, src| {
                let Some(rustc) = which("rustc") else {
                    return ToolchainResult::Unavailable("rustc".into());
                };
                compile_and_run(
                    &rustc,
                    &["-O"],
                    &dir.join("space.rs"),
                    &dir.join("space_rs"),
                    src,
                )
            }),
        }
    }

    /// Python via `python3`.
    pub fn python() -> Toolchain {
        Toolchain {
            language: "Python",
            build_and_run: Box::new(|dir, src| {
                let Some(py) = which("python3").or_else(|| which("python")) else {
                    return ToolchainResult::Unavailable("python3".into());
                };
                interpret(&py, &dir.join("space.py"), src)
            }),
        }
    }

    /// Lua via `lua5.4` / `lua5.3` / `lua`.
    pub fn lua() -> Toolchain {
        Toolchain {
            language: "Lua",
            build_and_run: Box::new(|dir, src| {
                let Some(lua) = which("lua5.4")
                    .or_else(|| which("lua5.3"))
                    .or_else(|| which("lua"))
                else {
                    return ToolchainResult::Unavailable("lua".into());
                };
                interpret(&lua, &dir.join("space.lua"), src)
            }),
        }
    }

    /// Fortran via `gfortran`.
    pub fn fortran() -> Toolchain {
        Toolchain {
            language: "Fortran",
            build_and_run: Box::new(|dir, src| {
                let Some(fc) = which("gfortran") else {
                    return ToolchainResult::Unavailable("gfortran".into());
                };
                compile_and_run(
                    &fc,
                    &["-O2"],
                    &dir.join("space.f90"),
                    &dir.join("space_f90"),
                    src,
                )
            }),
        }
    }

    /// Java via `javac` + `java`.
    pub fn java() -> Toolchain {
        Toolchain {
            language: "Java",
            build_and_run: Box::new(|dir, src| {
                let (Some(javac), Some(java)) = (which("javac"), which("java")) else {
                    return ToolchainResult::Unavailable("javac/java".into());
                };
                let src_path = dir.join(format!("{JAVA_CLASS}.java"));
                if let Err(e) = write_source(&src_path, src) {
                    return e.into();
                }
                let t_build = Instant::now();
                let mut build = Command::new(javac);
                build.arg(&src_path);
                if let Err(e) = run_cmd(build, "compile") {
                    return e.into();
                }
                let build_time = t_build.elapsed();
                let t_run = Instant::now();
                let mut run = Command::new(java);
                run.arg("-cp").arg(dir).arg(JAVA_CLASS);
                match run_cmd(run, "run") {
                    Ok(out) => parse_or_fail(out, build_time, t_run.elapsed()),
                    Err(e) => e.into(),
                }
            }),
        }
    }
}

/// Generate, build and run a program for one backend, in a fresh scratch
/// directory under the system temp dir.
pub fn generate_and_run(
    backend: &dyn Backend,
    toolchain: &Toolchain,
    program: &LoweredProgram,
) -> ToolchainResult {
    let dir = std::env::temp_dir().join(format!(
        "beast-codegen-{}-{}-{}",
        program.name,
        backend.extension(),
        std::process::id()
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return ToolchainResult::Failed { stage: "mkdir", detail: e.to_string() };
    }
    let source = backend.generate(program);
    let result = toolchain.execute(&dir, &source);
    let _ = std::fs::remove_dir_all(&dir);
    result
}
