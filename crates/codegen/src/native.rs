//! Chunk-worker emitter for the engine's runtime-native tier.
//!
//! The offline [`crate::c::CBackend`] prints a whole-space program that
//! enumerates every tuple and reports aggregate counters. The native tier
//! instead needs a *chunk worker*: the same loop nest, but with the
//! outermost (level-0) loop replaced by a loop over outer values handed to
//! the process at runtime, and with every survivor streamed back so the
//! engine can fold results in chunk order — bit-identical survivors,
//! emission order, and per-constraint statistics.
//!
//! ## Worker protocol (version [`PROTOCOL_VERSION`], host-endian)
//!
//! stdin:  `u32 n`, then `n × i64` level-0 values (one chunk).
//! stdout: per survivor, a length-prefixed row — `u32 len` (= `8 × n_vars`)
//!         followed by `n_vars × i64` slot values in slot order — then a
//!         trailer: `u32` [`ROW_SENTINEL`], `u32 n_constraints`, per
//!         constraint `u64 evaluated` + `u64 pruned`, and `u64 survivors`.
//!
//! Exit codes: 0 success; 2 evaluation error (`b_fail`, matching the
//! interpreter's evaluation-error path); 3 protocol/IO error. The engine
//! treats any nonzero exit — or a malformed stream — as grounds to re-run
//! the chunk in-process, so a worker failure is never observable in results.
//!
//! Per-point statistics are exact: `evaluated[i]` is bumped immediately
//! before constraint `i`'s condition is tested, `pruned[i]` when it fires —
//! the same per-point, declared-order accounting the compiled engine uses
//! with block pruning disabled.

use crate::c::{emit_c_helpers, expr_c, join_decl};
use crate::lower::{LoweredProgram, SNode};
use crate::writer::CodeWriter;

/// Version stamp folded into the artifact cache key; bump on any protocol
/// or emission change so stale cached binaries can never be reused.
pub const PROTOCOL_VERSION: u32 = 1;

/// `u32` marker separating survivor rows from the stats trailer. Never a
/// valid row length (rows are `8 × n_vars ≤ 2^31`).
pub const ROW_SENTINEL: u32 = 0xFFFF_FFFF;

/// Why a plan cannot be lowered to a chunk worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEmitError {
    /// The plan has no loop at all — nothing to chunk over.
    NoOuterLoop,
    /// A constraint check or visit precedes the first loop; its once-per-
    /// sweep accounting cannot be replicated by per-chunk processes.
    PreambleEffect,
}

impl std::fmt::Display for WorkerEmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerEmitError::NoOuterLoop => write!(f, "plan has no outer loop to chunk"),
            WorkerEmitError::PreambleEffect => {
                write!(f, "plan checks or visits before the first loop")
            }
        }
    }
}

fn contains_effect(nodes: &[SNode]) -> bool {
    nodes.iter().any(|n| match n {
        SNode::Prune { .. } | SNode::Visit => true,
        SNode::If { then, otherwise, .. } => {
            contains_effect(then) || contains_effect(otherwise)
        }
        SNode::RangeLoop { body, .. } | SNode::ValuesLoop { body, .. } => contains_effect(body),
        SNode::Declare { .. } | SNode::Assign { .. } => false,
    })
}

/// Emit statements with the worker's extras: per-point `evaluated[i]++`
/// ahead of every constraint check, and survivor rows streamed on `Visit`.
fn emit(w: &mut CodeWriter, nodes: &[SNode], program: &LoweredProgram) {
    for node in nodes {
        match node {
            SNode::Declare { .. } => {} // all temps pre-declared at the top
            SNode::Assign { var, value } => w.line(format!("{var} = {};", expr_c(value))),
            // A constraint check lowers to exactly `if (cond) prune;` — the
            // shape we key the per-point evaluation counter on.
            SNode::If { cond, then, otherwise }
                if otherwise.is_empty()
                    && matches!(then.as_slice(), [SNode::Prune { .. }]) =>
            {
                let SNode::Prune { idx } = &then[0] else { unreachable!() };
                w.line(format!("evaluated[{idx}]++;"));
                w.open(format!("if ({} != 0) {{", expr_c(cond)));
                w.line(format!("pruned[{idx}]++;"));
                w.line("continue;");
                w.close("}");
            }
            SNode::If { cond, then, otherwise } => {
                w.open(format!("if ({} != 0) {{", expr_c(cond)));
                emit(w, then, program);
                if !otherwise.is_empty() {
                    w.hinge("} else {");
                    emit(w, otherwise, program);
                }
                w.close("}");
            }
            SNode::RangeLoop { var, start, stop, step, const_positive_step, body } => {
                if *const_positive_step {
                    w.open(format!("for ({var} = {start}; {var} < {stop}; {var} += {step}) {{"));
                } else {
                    w.open(format!(
                        "for ({var} = {start}; ({step} > 0) ? ({var} < {stop}) : ({var} > {stop}); {var} += {step}) {{"
                    ));
                }
                emit(w, body, program);
                w.close("}");
            }
            SNode::ValuesLoop { var, pool, body } => {
                let n = program.pools[*pool].len();
                w.open(format!(
                    "for (size_t _pi_{var} = 0; _pi_{var} < {n}; _pi_{var}++) {{"
                ));
                w.line(format!("{var} = pool_{pool}[_pi_{var}];"));
                emit(w, body, program);
                w.close("}");
            }
            SNode::Prune { idx } => {
                // A prune outside the check shape (should not occur today).
                w.line(format!("pruned[{idx}]++;"));
                w.line("continue;");
            }
            SNode::Visit => {
                w.line("survivors++;");
                for (i, v) in program.vars.iter().enumerate() {
                    w.line(format!("row[{i}] = {v};"));
                }
                w.line("put_u32(8u * (uint32_t)N_VARS);");
                w.line("fwrite(row, 8, N_VARS, stdout);");
            }
        }
    }
}

/// Lower a program to standalone chunk-worker C source.
///
/// Fails (so the engine can fall back to the in-process tier) when the plan
/// has no outer loop, or when a check/visit precedes it — those execute
/// once per sweep in the engine but would execute once per worker process.
pub fn emit_chunk_worker(p: &LoweredProgram) -> Result<String, WorkerEmitError> {
    let split = p
        .body
        .iter()
        .position(|n| matches!(n, SNode::RangeLoop { .. } | SNode::ValuesLoop { .. }))
        .ok_or(WorkerEmitError::NoOuterLoop)?;
    if contains_effect(&p.body[split + 1..]) {
        // A second top-level nest would also evaluate per chunk.
        return Err(WorkerEmitError::PreambleEffect);
    }
    if contains_effect(&p.body[..split]) {
        return Err(WorkerEmitError::PreambleEffect);
    }

    let nc = p.constraint_names.len();
    let nv = p.vars.len();
    let mut w = CodeWriter::new();
    w.line(format!(
        "/* generated by beast-codegen: native chunk worker for space `{}` (protocol {PROTOCOL_VERSION}) */",
        p.name
    ));
    w.line("#include <stdio.h>");
    w.line("#include <stdint.h>");
    w.line("#include <stdlib.h>");
    w.blank();
    emit_c_helpers(&mut w);
    w.blank();
    w.line(format!("#define N_VARS {nv}"));
    w.line(format!("#define N_CONSTRAINTS {nc}"));
    w.line(format!("static uint64_t evaluated[{}];", nc.max(1)));
    w.line(format!("static uint64_t pruned[{}];", nc.max(1)));
    w.line("static uint64_t survivors = 0;");
    w.line(format!("static int64_t row[{}];", nv.max(1)));
    for (i, pool) in p.pools.iter().enumerate() {
        let vals: Vec<String> = pool.iter().map(|v| format!("{v}LL")).collect();
        w.line(format!(
            "static const int64_t pool_{i}[{}] = {{{}}};",
            pool.len(),
            vals.join(", ")
        ));
    }
    w.blank();
    w.line("static int read_exact(void *buf, size_t n) { return fread(buf, 1, n, stdin) == n; }");
    w.line("static void put_u32(uint32_t v) { fwrite(&v, 4, 1, stdout); }");
    w.line("static void put_u64(uint64_t v) { fwrite(&v, 8, 1, stdout); }");
    w.blank();

    w.open("static void run_chunk(const int64_t *chunk, uint32_t n_chunk) {");
    if !p.vars.is_empty() {
        w.line(format!("int64_t {};", join_decl(&p.vars)));
    }
    if !p.temps.is_empty() {
        w.line(format!("int64_t {};", join_decl(&p.temps)));
    }
    // Preamble: bound temps (and any pre-loop defines) for the outer loop.
    emit(&mut w, &p.body[..split], p);
    // The outer loop, re-targeted at the supplied chunk values.
    let outer_var = match &p.body[split] {
        SNode::RangeLoop { var, .. } | SNode::ValuesLoop { var, .. } => var.clone(),
        _ => unreachable!("split points at a loop"),
    };
    let body: &[SNode] = match &p.body[split] {
        SNode::RangeLoop { body, .. } | SNode::ValuesLoop { body, .. } => body,
        _ => unreachable!("split points at a loop"),
    };
    w.open("for (uint32_t _ci = 0; _ci < n_chunk; _ci++) {");
    w.line(format!("{outer_var} = chunk[_ci];"));
    emit(&mut w, body, p);
    w.close("}");
    w.close("}");
    w.blank();

    w.open("int main(void) {");
    w.line("uint32_t n_chunk = 0;");
    w.line("static char outbuf[1 << 20];");
    w.line("setvbuf(stdout, outbuf, _IOFBF, sizeof outbuf);");
    w.open("if (!read_exact(&n_chunk, 4)) {");
    w.line("fprintf(stderr, \"protocol: missing chunk length\\n\");");
    w.line("return 3;");
    w.close("}");
    w.line("int64_t *chunk = NULL;");
    w.open("if (n_chunk > 0) {");
    w.line("chunk = malloc((size_t)n_chunk * 8);");
    w.open("if (!chunk || !read_exact(chunk, (size_t)n_chunk * 8)) {");
    w.line("fprintf(stderr, \"protocol: truncated chunk values\\n\");");
    w.line("return 3;");
    w.close("}");
    w.close("}");
    w.line("run_chunk(chunk, n_chunk);");
    w.line(format!("put_u32(0x{ROW_SENTINEL:08X}u);"));
    w.line("put_u32(N_CONSTRAINTS);");
    w.open("for (uint32_t _i = 0; _i < N_CONSTRAINTS; _i++) {");
    w.line("put_u64(evaluated[_i]);");
    w.line("put_u64(pruned[_i]);");
    w.close("}");
    w.line("put_u64(survivors);");
    w.line("fflush(stdout);");
    w.line("return ferror(stdout) ? 3 : 0;");
    w.close("}");
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::tree::Program;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    fn worker_for(space: &std::sync::Arc<Space>) -> Result<String, WorkerEmitError> {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        emit_chunk_worker(&lower(&Program::from_lowered(&lp).unwrap()))
    }

    #[test]
    fn emits_protocol_scaffolding_and_per_check_counters() {
        let s = Space::builder("worker")
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .derived("d", var("a") * var("b"))
            .constraint("big", ConstraintClass::Hard, var("d").gt(20))
            .build()
            .unwrap();
        let src = worker_for(&s).unwrap();
        assert!(src.contains("a = chunk[_ci];"), "outer loop not chunk-driven:\n{src}");
        assert!(src.contains("evaluated[0]++;"));
        assert!(src.contains("pruned[0]++;"));
        assert!(src.contains("put_u32(0xFFFFFFFFu);"));
        assert!(src.contains("fwrite(row, 8, N_VARS, stdout);"));
        // The original outer range loop must be gone — only the chunk loop
        // iterates at top level.
        assert!(!src.contains("for (a = "), "outer range loop survived:\n{src}");
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn rejects_planless_or_preamble_effect_shapes() {
        // A space whose only constraint involves no iterators is checked
        // before the first loop — once per sweep — which a per-chunk worker
        // cannot reproduce.
        let s = Space::builder("pre")
            .constant("k", 3)
            .range("a", 0, 4)
            .constraint("never", ConstraintClass::Hard, var("k").gt(10))
            .build()
            .unwrap();
        match worker_for(&s) {
            Err(WorkerEmitError::PreambleEffect) | Ok(_) => {} // hoisting-dependent
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
}
