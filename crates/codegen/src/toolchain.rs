//! Shared toolchain plumbing: compiler discovery and compile/run command
//! helpers used by both the offline cross-language harness ([`crate::runner`])
//! and the engine's runtime-native tier.
//!
//! Everything here is deliberately primitive — probe `PATH`, write a source
//! file, run a command, time a compile — so callers can compose the pieces:
//! the offline harness parses canonical counters from stdout, while the
//! native tier manages a persistent artifact cache and a binary stream
//! protocol on top of the same compile step.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// A toolchain-level failure, independent of what the caller wanted to do
/// with the program.
#[derive(Debug)]
pub enum ToolError {
    /// The needed compiler/interpreter is not installed.
    Unavailable(String),
    /// The toolchain exists but the invoked command failed.
    Failed {
        /// Which stage failed (`write`, `compile`, `run`, ...).
        stage: &'static str,
        /// Captured stderr/stdout or OS error.
        detail: String,
    },
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Unavailable(what) => write!(f, "{what} not installed"),
            ToolError::Failed { stage, detail } => write!(f, "{stage} failed: {detail}"),
        }
    }
}

/// Locate `tool` on `PATH`.
pub fn which(tool: &str) -> Option<PathBuf> {
    let path = std::env::var_os("PATH")?;
    for dir in std::env::split_paths(&path) {
        let candidate = dir.join(tool);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// The host C compiler: `gcc`, falling back to `cc`.
pub fn find_c_compiler() -> Option<PathBuf> {
    which("gcc").or_else(|| which("cc"))
}

/// Run a prepared command, capturing stdout; nonzero exit or spawn failure
/// becomes a [`ToolError::Failed`] tagged with `stage`.
pub fn run_cmd(mut cmd: Command, stage: &'static str) -> Result<String, ToolError> {
    match cmd.output() {
        Ok(out) if out.status.success() => Ok(String::from_utf8_lossy(&out.stdout).into_owned()),
        Ok(out) => Err(ToolError::Failed {
            stage,
            detail: format!(
                "{}\n{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            ),
        }),
        Err(e) => Err(ToolError::Failed { stage, detail: e.to_string() }),
    }
}

/// Write generated source to `path`.
pub fn write_source(path: &Path, src: &str) -> Result<(), ToolError> {
    std::fs::write(path, src)
        .map_err(|e| ToolError::Failed { stage: "write", detail: e.to_string() })
}

/// Compile `src_path` with `compiler args` into `bin`, returning the timed
/// compile duration.
pub fn compile(
    compiler: &Path,
    args: &[&str],
    src_path: &Path,
    bin: &Path,
) -> Result<Duration, ToolError> {
    let t_build = Instant::now();
    let mut build = Command::new(compiler);
    build.args(args).arg("-o").arg(bin).arg(src_path);
    run_cmd(build, "compile")?;
    Ok(t_build.elapsed())
}

/// Run a compiled binary, returning its stdout and timed run duration.
pub fn run_binary(bin: &Path) -> Result<(String, Duration), ToolError> {
    let t_run = Instant::now();
    let out = run_cmd(Command::new(bin), "run")?;
    Ok((out, t_run.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn which_finds_sh() {
        assert!(which("sh").is_some());
        assert!(which("definitely-not-a-real-tool-xyz").is_none());
    }

    #[test]
    fn c_compiler_probe_resolves_to_a_file() {
        // On hosts without any C compiler the probe must return None rather
        // than guessing; where one exists it must be an actual file. (The
        // masked-PATH fallback path is exercised end-to-end by CI, which
        // runs `repro sweep --engine native` under an emptied PATH.)
        if let Some(cc) = find_c_compiler() {
            assert!(cc.is_file());
        }
    }
}
