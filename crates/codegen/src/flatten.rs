//! Expression flattening: control flow out of expressions, into statements.
//!
//! Ternaries and short-circuiting `&&`/`||` carry *guard semantics* — the
//! untaken branch must not be evaluated (`x != 0 && y % x == 0` must never
//! divide by zero). Languages differ in how (and whether) their expression
//! syntax can express that lazily, so the generator normalizes first: every
//! lazy construct becomes an `if` statement assigning a fresh temporary, and
//! what remains ([`PExpr`]) is pure, eager, and renderable verbatim in any
//! backend.

use beast_core::expr::Builtin;
use beast_core::ir::{IntBinOp, IntExpr};

/// Pure arithmetic operators (no control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// Trunc-toward-zero division.
    Div,
    /// Floor division.
    FloorDiv,
    /// C remainder.
    Rem,
}

/// Comparison operators, producing 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A pure (eager, side-effect-free) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Integer literal.
    Const(i64),
    /// Variable reference (slot variable or generated temporary).
    Var(String),
    /// Arithmetic.
    Arith(ArithOp, Box<PExpr>, Box<PExpr>),
    /// Comparison producing 0/1.
    Cmp(CmpOp, Box<PExpr>, Box<PExpr>),
    /// Arithmetic negation.
    Neg(Box<PExpr>),
    /// Logical not producing 0/1.
    Not(Box<PExpr>),
    /// Absolute value.
    Abs(Box<PExpr>),
    /// Two-argument builtin (min/max/div_ceil/gcd/round_up).
    Call(Builtin, Box<PExpr>, Box<PExpr>),
}

/// A flattened statement.
#[derive(Debug, Clone, PartialEq)]
pub enum FStmt {
    /// Declare a temporary (backends that require declarations render it;
    /// others ignore it). Always followed eventually by an [`FStmt::Assign`].
    Declare {
        /// Temporary name.
        var: String,
    },
    /// Assign a pure expression to a variable.
    Assign {
        /// Target name.
        var: String,
        /// Pure value.
        value: PExpr,
    },
    /// Conditional: `cond != 0` selects the branch.
    If {
        /// The (pure) condition, tested against zero.
        cond: PExpr,
        /// Taken when nonzero.
        then: Vec<FStmt>,
        /// Taken when zero.
        otherwise: Vec<FStmt>,
    },
}

/// Generates fresh temporary names (`_t0`, `_t1`, ...).
#[derive(Debug, Default)]
pub struct TempGen {
    counter: usize,
}

impl TempGen {
    /// A fresh temporary name.
    pub fn fresh(&mut self) -> String {
        let name = format!("_t{}", self.counter);
        self.counter += 1;
        name
    }
}

/// Flatten `e`: emit any needed statements into `out` and return the pure
/// expression for the final value. `names` maps slots to variable names.
pub fn flatten(
    e: &IntExpr,
    names: &[std::sync::Arc<str>],
    gen: &mut TempGen,
    out: &mut Vec<FStmt>,
) -> PExpr {
    match e {
        IntExpr::Const(c) => PExpr::Const(*c),
        IntExpr::Slot(s) => PExpr::Var(names[*s as usize].to_string()),
        IntExpr::Neg(a) => PExpr::Neg(Box::new(flatten(a, names, gen, out))),
        IntExpr::Not(a) => PExpr::Not(Box::new(flatten(a, names, gen, out))),
        IntExpr::Abs(a) => PExpr::Abs(Box::new(flatten(a, names, gen, out))),
        IntExpr::Call2(b, x, y) => PExpr::Call(
            *b,
            Box::new(flatten(x, names, gen, out)),
            Box::new(flatten(y, names, gen, out)),
        ),
        IntExpr::Ternary(c, t, f) => {
            let cond = flatten(c, names, gen, out);
            let tmp = gen.fresh();
            out.push(FStmt::Declare { var: tmp.clone() });
            let mut then = Vec::new();
            let tv = flatten(t, names, gen, &mut then);
            then.push(FStmt::Assign { var: tmp.clone(), value: tv });
            let mut otherwise = Vec::new();
            let fv = flatten(f, names, gen, &mut otherwise);
            otherwise.push(FStmt::Assign { var: tmp.clone(), value: fv });
            out.push(FStmt::If { cond, then, otherwise });
            PExpr::Var(tmp)
        }
        IntExpr::Bin(op, a, b) => match op {
            IntBinOp::And => {
                let av = flatten(a, names, gen, out);
                let tmp = gen.fresh();
                out.push(FStmt::Declare { var: tmp.clone() });
                let mut then = Vec::new();
                let bv = flatten(b, names, gen, &mut then);
                then.push(FStmt::Assign {
                    var: tmp.clone(),
                    value: PExpr::Cmp(CmpOp::Ne, Box::new(bv), Box::new(PExpr::Const(0))),
                });
                let otherwise =
                    vec![FStmt::Assign { var: tmp.clone(), value: PExpr::Const(0) }];
                out.push(FStmt::If { cond: av, then, otherwise });
                PExpr::Var(tmp)
            }
            IntBinOp::Or => {
                let av = flatten(a, names, gen, out);
                let tmp = gen.fresh();
                out.push(FStmt::Declare { var: tmp.clone() });
                let mut otherwise = Vec::new();
                let bv = flatten(b, names, gen, &mut otherwise);
                otherwise.push(FStmt::Assign {
                    var: tmp.clone(),
                    value: PExpr::Cmp(CmpOp::Ne, Box::new(bv), Box::new(PExpr::Const(0))),
                });
                let then = vec![FStmt::Assign { var: tmp.clone(), value: PExpr::Const(1) }];
                out.push(FStmt::If { cond: av, then, otherwise });
                PExpr::Var(tmp)
            }
            _ => {
                let av = flatten(a, names, gen, out);
                let bv = flatten(b, names, gen, out);
                let (a, b) = (Box::new(av), Box::new(bv));
                match op {
                    IntBinOp::Add => PExpr::Arith(ArithOp::Add, a, b),
                    IntBinOp::Sub => PExpr::Arith(ArithOp::Sub, a, b),
                    IntBinOp::Mul => PExpr::Arith(ArithOp::Mul, a, b),
                    IntBinOp::Div => PExpr::Arith(ArithOp::Div, a, b),
                    IntBinOp::FloorDiv => PExpr::Arith(ArithOp::FloorDiv, a, b),
                    IntBinOp::Rem => PExpr::Arith(ArithOp::Rem, a, b),
                    IntBinOp::Lt => PExpr::Cmp(CmpOp::Lt, a, b),
                    IntBinOp::Le => PExpr::Cmp(CmpOp::Le, a, b),
                    IntBinOp::Gt => PExpr::Cmp(CmpOp::Gt, a, b),
                    IntBinOp::Ge => PExpr::Cmp(CmpOp::Ge, a, b),
                    IntBinOp::Eq => PExpr::Cmp(CmpOp::Eq, a, b),
                    IntBinOp::Ne => PExpr::Cmp(CmpOp::Ne, a, b),
                    IntBinOp::And | IntBinOp::Or => unreachable!("handled above"),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn names() -> Vec<Arc<str>> {
        vec![Arc::from("x"), Arc::from("y")]
    }

    #[test]
    fn pure_expressions_stay_inline() {
        let e = IntExpr::Bin(
            IntBinOp::Mul,
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Const(3)),
        );
        let mut gen = TempGen::default();
        let mut out = Vec::new();
        let p = flatten(&e, &names(), &mut gen, &mut out);
        assert!(out.is_empty());
        assert_eq!(
            p,
            PExpr::Arith(
                ArithOp::Mul,
                Box::new(PExpr::Var("x".into())),
                Box::new(PExpr::Const(3))
            )
        );
    }

    #[test]
    fn and_becomes_guarded_if() {
        // x != 0 && (y % x) == 0
        let e = IntExpr::Bin(
            IntBinOp::And,
            Box::new(IntExpr::Bin(
                IntBinOp::Ne,
                Box::new(IntExpr::Slot(0)),
                Box::new(IntExpr::Const(0)),
            )),
            Box::new(IntExpr::Bin(
                IntBinOp::Eq,
                Box::new(IntExpr::Bin(
                    IntBinOp::Rem,
                    Box::new(IntExpr::Slot(1)),
                    Box::new(IntExpr::Slot(0)),
                )),
                Box::new(IntExpr::Const(0)),
            )),
        );
        let mut gen = TempGen::default();
        let mut out = Vec::new();
        let p = flatten(&e, &names(), &mut gen, &mut out);
        assert_eq!(p, PExpr::Var("_t0".into()));
        // Declare then If; the remainder operation lives inside `then` only.
        assert!(matches!(out[0], FStmt::Declare { .. }));
        match &out[1] {
            FStmt::If { then, otherwise, .. } => {
                assert_eq!(otherwise.len(), 1);
                let then_str = format!("{then:?}");
                assert!(then_str.contains("Rem"), "division must be guarded");
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn ternary_becomes_if() {
        let e = IntExpr::Ternary(
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Const(1)),
            Box::new(IntExpr::Const(2)),
        );
        let mut gen = TempGen::default();
        let mut out = Vec::new();
        let p = flatten(&e, &names(), &mut gen, &mut out);
        assert_eq!(p, PExpr::Var("_t0".into()));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nested_lazies_generate_distinct_temps() {
        // (x && y) || x
        let and = IntExpr::Bin(
            IntBinOp::And,
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Slot(1)),
        );
        let e = IntExpr::Bin(IntBinOp::Or, Box::new(and), Box::new(IntExpr::Slot(0)));
        let mut gen = TempGen::default();
        let mut out = Vec::new();
        let p = flatten(&e, &names(), &mut gen, &mut out);
        assert_eq!(p, PExpr::Var("_t1".into()));
        assert!(out.len() >= 3);
    }
}
