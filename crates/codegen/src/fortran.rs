//! The Fortran backend (free-form F2008) — one of the compiled languages of
//! the paper's Fig. 19, where it was "the fastest, albeit by a negligibly
//! small margin".
//!
//! Fortran quirks handled here: identifiers cannot start with an underscore
//! (generated temporaries are mangled `z...`), declarations must precede
//! executable statements (all temporaries are collected and declared up
//! front), `do` loops are inclusive with a loop-control variable that `CYCLE`
//! must still advance (loops run over a precomputed trip count with the user
//! variable derived from the index), and comparisons are `logical`, folded
//! to integers with `merge`.

use beast_core::expr::Builtin;

use crate::backend::Backend;
use crate::flatten::{ArithOp, CmpOp, PExpr};
use crate::lower::{LoweredProgram, SNode};
use crate::writer::CodeWriter;

/// Fortran source generator.
#[derive(Debug, Default, Clone, Copy)]
pub struct FortranBackend;

/// Fortran identifiers cannot begin with `_`.
fn mangle(name: &str) -> String {
    if let Some(rest) = name.strip_prefix('_') {
        format!("z{rest}")
    } else {
        name.to_string()
    }
}

fn expr(e: &PExpr) -> String {
    match e {
        PExpr::Const(k) => format!("{k}_i8"),
        PExpr::Var(v) => mangle(v),
        PExpr::Arith(op, a, b) => {
            let (a, b) = (expr(a), expr(b));
            match op {
                ArithOp::Add => format!("({a} + {b})"),
                ArithOp::Sub => format!("({a} - {b})"),
                ArithOp::Mul => format!("({a} * {b})"),
                // Fortran integer division truncates toward zero (C-like);
                // mod() matches C's remainder.
                ArithOp::Div => format!("({a} / {b})"),
                ArithOp::FloorDiv => format!("b_floordiv({a}, {b})"),
                ArithOp::Rem => format!("mod({a}, {b})"),
            }
        }
        PExpr::Cmp(op, a, b) => {
            let tok = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "/=",
            };
            format!("merge(1_i8, 0_i8, {} {tok} {})", expr(a), expr(b))
        }
        PExpr::Neg(a) => format!("(-{})", expr(a)),
        PExpr::Not(a) => format!("merge(1_i8, 0_i8, {} == 0_i8)", expr(a)),
        PExpr::Abs(a) => format!("abs({})", expr(a)),
        PExpr::Call(b, x, y) => {
            let (x, y) = (expr(x), expr(y));
            match b {
                Builtin::Min => format!("min({x}, {y})"),
                Builtin::Max => format!("max({x}, {y})"),
                Builtin::DivCeil => format!("b_floordiv({x} + {y} - 1_i8, {y})"),
                Builtin::Gcd => format!("b_gcd({x}, {y})"),
                Builtin::RoundUp => format!("(b_floordiv({x} + {y} - 1_i8, {y}) * {y})"),
                Builtin::Abs => unreachable!("abs is unary"),
            }
        }
    }
}

/// Collect the per-loop helper variables (trip count + index) so they can be
/// declared at the top of the subroutine.
fn collect_loop_vars(nodes: &[SNode], out: &mut Vec<String>) {
    for node in nodes {
        match node {
            SNode::RangeLoop { var, body, .. } => {
                out.push(format!("zcnt_{var}"));
                out.push(format!("zit_{var}"));
                collect_loop_vars(body, out);
            }
            SNode::ValuesLoop { var, body, .. } => {
                out.push(format!("zit_{var}"));
                collect_loop_vars(body, out);
            }
            SNode::If { then, otherwise, .. } => {
                collect_loop_vars(then, out);
                collect_loop_vars(otherwise, out);
            }
            _ => {}
        }
    }
}

fn emit(w: &mut CodeWriter, nodes: &[SNode], program: &LoweredProgram, loop_depth: usize) {
    for node in nodes {
        match node {
            SNode::Declare { .. } => {}
            SNode::Assign { var, value } => {
                w.line(format!("{} = {}", mangle(var), expr(value)))
            }
            SNode::If { cond, then, otherwise } => {
                w.open(format!("if ({} /= 0_i8) then", expr(cond)));
                emit(w, then, program, loop_depth);
                if !otherwise.is_empty() {
                    w.hinge("else");
                    emit(w, otherwise, program, loop_depth);
                }
                w.close("end if");
            }
            SNode::RangeLoop { var, start, stop, step, body, .. } => {
                let (start, stop, step) = (mangle(start), mangle(stop), mangle(step));
                // Trip-count form: CYCLE-safe because the user variable is
                // derived from the do index, not incremented in the body.
                w.line(format!("zcnt_{var} = b_range_count({start}, {stop}, {step})"));
                w.open(format!("do zit_{var} = 0_i8, zcnt_{var} - 1_i8"));
                w.line(format!("{var} = {start} + zit_{var} * {step}"));
                emit(w, body, program, loop_depth + 1);
                w.close("end do");
            }
            SNode::ValuesLoop { var, pool, body } => {
                let n = program.pools[*pool].len();
                w.open(format!("do zit_{var} = 1_i8, {n}_i8"));
                w.line(format!("{var} = pool_{pool}(zit_{var})"));
                emit(w, body, program, loop_depth + 1);
                w.close("end do");
            }
            SNode::Prune { idx } => {
                w.line(format!("pruned({}) = pruned({}) + 1_i8", idx + 1, idx + 1));
                if loop_depth > 0 {
                    w.line("cycle");
                } else {
                    w.line("return");
                }
            }
            SNode::Visit => {
                w.line("survivors = survivors + 1_i8");
                let mut xor = String::from("checksum");
                for v in &program.vars {
                    xor = format!("ieor({xor}, {})", mangle(v));
                }
                w.line(format!("checksum = {xor}"));
            }
        }
    }
}

impl Backend for FortranBackend {
    fn language(&self) -> &'static str {
        "Fortran"
    }

    fn extension(&self) -> &'static str {
        "f90"
    }

    fn generate(&self, p: &LoweredProgram) -> String {
        let mut w = CodeWriter::new();
        w.line(format!("! generated by beast-codegen: space `{}`", p.name));
        w.open("program beast_space");
        w.line("use iso_fortran_env, only: i8 => int64");
        w.line("implicit none");
        w.line("integer(i8) :: survivors, checksum");
        w.line(format!(
            "integer(i8) :: pruned({})",
            p.constraint_names.len().max(1)
        ));
        for v in &p.vars {
            w.line(format!("integer(i8) :: {}", mangle(v)));
        }
        for t in &p.temps {
            w.line(format!("integer(i8) :: {}", mangle(t)));
        }
        let mut loop_vars = Vec::new();
        collect_loop_vars(&p.body, &mut loop_vars);
        for lv in &loop_vars {
            w.line(format!("integer(i8) :: {lv}"));
        }
        for (i, pool) in p.pools.iter().enumerate() {
            let vals: Vec<String> = pool.iter().map(|v| format!("{v}_i8")).collect();
            w.line(format!(
                "integer(i8), parameter :: pool_{i}({}) = [{}]",
                pool.len(),
                vals.join(", ")
            ));
        }
        w.blank();
        w.line("survivors = 0_i8");
        w.line("checksum = 0_i8");
        w.line("pruned = 0_i8");
        w.line("call run()");
        w.line("write(*, '(A,1X,I0)') 'survivors', survivors");
        for (i, name) in p.constraint_names.iter().enumerate() {
            w.line(format!(
                "write(*, '(A,1X,A,1X,I0)') 'pruned', '{name}', pruned({})",
                i + 1
            ));
        }
        w.line("write(*, '(A,1X,I0)') 'checksum', checksum");
        w.blank();
        w.open("contains");
        w.blank();
        w.open("subroutine run()");
        for v in &p.vars {
            w.line(format!("{} = 0_i8", mangle(v)));
        }
        emit(&mut w, &p.body, p, 0);
        w.close("end subroutine run");
        w.blank();
        w.open("pure function b_floordiv(a, b) result(q)");
        w.line("integer(i8), intent(in) :: a, b");
        w.line("integer(i8) :: q");
        w.line("q = a / b");
        w.line("if (mod(a, b) /= 0_i8 .and. ((a < 0_i8) .neqv. (b < 0_i8))) q = q - 1_i8");
        w.close("end function b_floordiv");
        w.blank();
        w.open("pure function b_gcd(x, y) result(g)");
        w.line("integer(i8), intent(in) :: x, y");
        w.line("integer(i8) :: g, b, t");
        w.line("g = abs(x)");
        w.line("b = abs(y)");
        w.open("do while (b /= 0_i8)");
        w.line("t = mod(g, b)");
        w.line("g = b");
        w.line("b = t");
        w.close("end do");
        w.close("end function b_gcd");
        w.blank();
        w.open("pure function b_range_count(s, e, st) result(c)");
        w.line("integer(i8), intent(in) :: s, e, st");
        w.line("integer(i8) :: c");
        w.line("c = 0_i8");
        w.open("if (st > 0_i8 .and. e > s) then");
        w.line("c = (e - s + st - 1_i8) / st");
        w.hinge("else if (st < 0_i8 .and. e < s) then");
        w.line("c = (s - e - st - 1_i8) / (-st)");
        w.close("end if");
        w.close("end function b_range_count");
        w.blank();
        w.close("end program beast_space");
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::tree::Program;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::{ternary, var};
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    #[test]
    fn generates_fortran_shape() {
        let s = Space::builder("fgen")
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .derived("d", ternary(var("a").gt(2), var("b") * 2, var("b")))
            .constraint("big", ConstraintClass::Hard, var("d").gt(20))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let prog = lower(&Program::from_lowered(&lp).unwrap());
        let src = FortranBackend.generate(&prog);
        assert!(src.contains("program beast_space"));
        assert!(src.contains("subroutine run()"));
        assert!(src.contains("cycle"));
        assert!(src.contains("b_range_count"));
        // No identifier starts with an underscore.
        for line in src.lines() {
            for word in line.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
                assert!(
                    !word.starts_with('_'),
                    "fortran identifier starts with underscore: {word} in {line}"
                );
            }
        }
        // Ternary temps were mangled (some `zt<N>` appears).
        assert!(src.lines().any(|l| l.trim_start().starts_with("integer(i8) :: zt")));
    }

    #[test]
    fn range_count_logic() {
        // Mirror of b_range_count for verification.
        fn count(s: i64, e: i64, st: i64) -> i64 {
            if st > 0 && e > s {
                (e - s + st - 1) / st
            } else if st < 0 && e < s {
                (s - e - st - 1) / -st
            } else {
                0
            }
        }
        assert_eq!(count(1, 5, 1), 4);
        assert_eq!(count(1, 5, 2), 2);
        assert_eq!(count(5, 5, 1), 0);
        assert_eq!(count(4, 0, -1), 4);
        assert_eq!(count(9, 0, -3), 3);
        assert_eq!(count(0, 4, -1), 0);
    }
}
