//! # beast-codegen
//!
//! The *translation system* of the paper: converts a declarative search
//! space (planned and lowered by `beast-core`) into standalone source code —
//! the paper's headline path being **standard C** "which can then be
//! compiled with a C compiler \[and\] executed at high speed" (Section I) —
//! plus Rust, Python, Lua, Fortran and Java backends covering every language
//! in the paper's performance study (Figs. 17–19).
//!
//! Pipeline:
//!
//! 1. [`tree::Program::from_lowered`] — extract the loop-nest tree (rejects
//!    opaque Rust closures, which have no printable source);
//! 2. [`lower::lower`] — flatten lazy constructs (ternary, `&&`, `||`) into
//!    guarded statements so every target language preserves their
//!    don't-evaluate-the-dead-branch semantics;
//! 3. a [`backend::Backend`] prints the program. Every generated program
//!    emits the same canonical counters (survivors, per-constraint prune
//!    counts, and an XOR checksum over all variables of all survivors), so
//!    [`runner`] can cross-check any two implementations for exact
//!    agreement.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod c;
pub mod c_openmp;
pub mod flatten;
pub mod fortran;
pub mod java;
pub mod lower;
pub mod lua;
pub mod native;
pub mod python;
pub mod runner;
pub mod rust;
pub mod toolchain;
pub mod tree;
pub mod writer;

pub use backend::{Backend, RunCounts};
pub use c::CBackend;
pub use c_openmp::COpenMpBackend;
pub use fortran::FortranBackend;
pub use java::JavaBackend;
pub use lower::{lower, LoweredProgram};
pub use lua::LuaBackend;
pub use native::{emit_chunk_worker, WorkerEmitError, PROTOCOL_VERSION, ROW_SENTINEL};
pub use python::PythonBackend;
pub use runner::{generate_and_run, Toolchain, ToolchainResult};
pub use toolchain::{find_c_compiler, ToolError};
pub use rust::RustBackend;
pub use tree::{CodegenError, Program};

/// Convenience: generate source for a lowered plan in one call.
pub fn generate(
    lp: &beast_core::ir::LoweredPlan,
    backend: &dyn Backend,
) -> Result<String, CodegenError> {
    let program = Program::from_lowered(lp)?;
    Ok(backend.generate(&lower(&program)))
}

/// All built-in backends, in the order of the paper's language study.
pub fn all_backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(PythonBackend),
        Box::new(LuaBackend),
        Box::new(CBackend),
        Box::new(JavaBackend),
        Box::new(FortranBackend),
        Box::new(RustBackend),
        Box::new(COpenMpBackend),
    ]
}

/// The toolchain matching each backend of [`all_backends`].
pub fn all_toolchains() -> Vec<Toolchain> {
    vec![
        Toolchain::python(),
        Toolchain::lua(),
        Toolchain::c(),
        Toolchain::java(),
        Toolchain::fortran(),
        Toolchain::rust(),
        Toolchain::c_openmp(),
    ]
}
