//! Final lowering: the program tree with all expressions flattened into
//! pure statements — the representation the backends print verbatim.
//!
//! Every backend-visible construct is explicit here: loop bounds are
//! pre-assigned to named temporaries, lazy operators are `if` statements,
//! value-list domains are numbered constant pools, and all temporaries are
//! collected up front for declare-at-top languages (Fortran).

use crate::flatten::{flatten, FStmt, PExpr, TempGen};
use crate::tree::{GDomain, GNode, Program};

/// A statement node of the final, backend-ready program.
#[derive(Debug, Clone)]
pub enum SNode {
    /// Declare a temporary (ignored by declaration-free languages).
    Declare {
        /// Temporary name.
        var: String,
    },
    /// Assign a pure expression.
    Assign {
        /// Target variable.
        var: String,
        /// Pure value.
        value: PExpr,
    },
    /// Conditional on `cond != 0`.
    If {
        /// Condition.
        cond: PExpr,
        /// Nonzero branch.
        then: Vec<SNode>,
        /// Zero branch.
        otherwise: Vec<SNode>,
    },
    /// Half-open range loop; `start`/`stop`/`step` name temporaries assigned
    /// immediately before this node.
    RangeLoop {
        /// Loop variable.
        var: String,
        /// Temp holding the inclusive start.
        start: String,
        /// Temp holding the exclusive stop.
        stop: String,
        /// Temp holding the stride.
        step: String,
        /// True when the stride is a compile-time positive constant (lets
        /// backends emit a plain `<` loop instead of the sign-dispatching
        /// form).
        const_positive_step: bool,
        /// Loop body.
        body: Vec<SNode>,
    },
    /// Loop over constant pool `pool`.
    ValuesLoop {
        /// Loop variable.
        var: String,
        /// Index into [`LoweredProgram::pools`].
        pool: usize,
        /// Loop body.
        body: Vec<SNode>,
    },
    /// Count a rejection of constraint `idx` and skip to the next iteration
    /// of the innermost enclosing loop (or end the run if none encloses).
    Prune {
        /// Constraint index.
        idx: usize,
    },
    /// Count a survivor and fold all program variables into the checksum.
    Visit,
}

/// The backend-ready program.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// Program name.
    pub name: String,
    /// All named variables (iterators + deriveds, slot order).
    pub vars: Vec<String>,
    /// Constraint names, indexed by `Prune::idx`.
    pub constraint_names: Vec<String>,
    /// Constant pools for value-list loops.
    pub pools: Vec<Vec<i64>>,
    /// Every temporary name appearing in `Declare` nodes, in order.
    pub temps: Vec<String>,
    /// The statement tree.
    pub body: Vec<SNode>,
}

/// Lower a [`Program`] to the final statement form.
pub fn lower(program: &Program) -> LoweredProgram {
    let names: Vec<std::sync::Arc<str>> = program
        .vars
        .iter()
        .map(|v| std::sync::Arc::<str>::from(v.as_str()))
        .collect();
    let mut gen = TempGen::default();
    let mut pools = Vec::new();
    let mut temps = Vec::new();
    let body =
        lower_nodes(&program.roots, &names, &mut gen, &mut pools, &mut temps);
    LoweredProgram {
        name: program.name.clone(),
        vars: program.vars.clone(),
        constraint_names: program.constraints.iter().map(|c| c.name.clone()).collect(),
        pools,
        temps,
        body,
    }
}

fn fstmts_to_snodes(stmts: Vec<FStmt>, temps: &mut Vec<String>) -> Vec<SNode> {
    stmts
        .into_iter()
        .map(|s| match s {
            FStmt::Declare { var } => {
                temps.push(var.clone());
                SNode::Declare { var }
            }
            FStmt::Assign { var, value } => SNode::Assign { var, value },
            FStmt::If { cond, then, otherwise } => SNode::If {
                cond,
                then: fstmts_to_snodes(then, temps),
                otherwise: fstmts_to_snodes(otherwise, temps),
            },
        })
        .collect()
}

fn lower_nodes(
    nodes: &[GNode],
    names: &[std::sync::Arc<str>],
    gen: &mut TempGen,
    pools: &mut Vec<Vec<i64>>,
    temps: &mut Vec<String>,
) -> Vec<SNode> {
    let mut out = Vec::new();
    for node in nodes {
        match node {
            GNode::Define { var, expr } => {
                let mut stmts = Vec::new();
                let value = flatten(expr, names, gen, &mut stmts);
                out.extend(fstmts_to_snodes(stmts, temps));
                out.push(SNode::Assign { var: var.clone(), value });
            }
            GNode::Check { idx, expr } => {
                let mut stmts = Vec::new();
                let cond = flatten(expr, names, gen, &mut stmts);
                out.extend(fstmts_to_snodes(stmts, temps));
                out.push(SNode::If {
                    cond,
                    then: vec![SNode::Prune { idx: *idx }],
                    otherwise: vec![],
                });
            }
            GNode::Visit => out.push(SNode::Visit),
            GNode::Loop { var, domain, body } => match domain {
                GDomain::Range { start, stop, step } => {
                    let const_positive_step =
                        matches!(step.as_const(), Some(k) if k > 0);
                    let mut emit_bound = |e: &beast_core::ir::IntExpr,
                                          suffix: &str,
                                          out: &mut Vec<SNode>,
                                          temps: &mut Vec<String>|
                     -> String {
                        let name = format!("_{suffix}_{var}_{}", {
                            let t = gen.fresh();
                            t.trim_start_matches("_t").to_string()
                        });
                        let mut stmts = Vec::new();
                        let value = flatten(e, names, gen, &mut stmts);
                        out.extend(fstmts_to_snodes(stmts, temps));
                        temps.push(name.clone());
                        out.push(SNode::Declare { var: name.clone() });
                        out.push(SNode::Assign { var: name.clone(), value });
                        name
                    };
                    let start_t = emit_bound(start, "start", &mut out, temps);
                    let stop_t = emit_bound(stop, "stop", &mut out, temps);
                    let step_t = emit_bound(step, "step", &mut out, temps);
                    let lowered_body = lower_nodes(body, names, gen, pools, temps);
                    out.push(SNode::RangeLoop {
                        var: var.clone(),
                        start: start_t,
                        stop: stop_t,
                        step: step_t,
                        const_positive_step,
                        body: lowered_body,
                    });
                }
                GDomain::Values(values) => {
                    let pool = pools.len();
                    pools.push(values.clone());
                    let lowered_body = lower_nodes(body, names, gen, pools, temps);
                    out.push(SNode::ValuesLoop {
                        var: var.clone(),
                        pool,
                        body: lowered_body,
                    });
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Program;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::{ternary, var};
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    fn lowered_program() -> LoweredProgram {
        let s = Space::builder("lower")
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .list("m", [0i64, 1])
            .derived("d", ternary(var("m").eq(1), var("a") * 2, var("b")))
            .constraint("c", ConstraintClass::Hard, var("d").gt(10))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        lower(&Program::from_lowered(&lp).unwrap())
    }

    #[test]
    fn structure_is_complete() {
        let p = lowered_program();
        assert_eq!(p.vars, vec!["a", "b", "m", "d"]);
        assert_eq!(p.constraint_names, vec!["c"]);
        assert_eq!(p.pools, vec![vec![0, 1]]);
        assert!(!p.temps.is_empty());
        // Top level: three bound temps (declare+assign each) then the loop.
        assert!(matches!(p.body.last().unwrap(), SNode::RangeLoop { .. }));
    }

    #[test]
    fn const_positive_step_detected() {
        let p = lowered_program();
        let SNode::RangeLoop { const_positive_step, body, .. } = p.body.last().unwrap()
        else {
            panic!("expected range loop");
        };
        assert!(const_positive_step); // outer loop `a`: step 1
        // The `b` loop (step `a`, dynamic) is nested somewhere below.
        fn find_dynamic(nodes: &[SNode]) -> Option<bool> {
            for n in nodes {
                match n {
                    SNode::RangeLoop { var, const_positive_step, body, .. } => {
                        if var == "b" {
                            return Some(*const_positive_step);
                        }
                        if let Some(x) = find_dynamic(body) {
                            return Some(x);
                        }
                    }
                    SNode::ValuesLoop { body, .. } => {
                        if let Some(x) = find_dynamic(body) {
                            return Some(x);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        assert_eq!(find_dynamic(body), Some(false));
    }
}
