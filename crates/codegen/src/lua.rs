//! The Lua backend (Lua 5.3+, native integers) — the language of the
//! paper's earlier BEAST autotuner (Section XI-C, Fig. 18).

use beast_core::expr::Builtin;

use crate::backend::Backend;
use crate::flatten::{ArithOp, CmpOp, PExpr};
use crate::lower::{LoweredProgram, SNode};
use crate::writer::CodeWriter;

/// Lua source generator.
#[derive(Debug, Default, Clone, Copy)]
pub struct LuaBackend;

fn expr(e: &PExpr) -> String {
    match e {
        PExpr::Const(k) => format!("{k}"),
        PExpr::Var(v) => v.clone(),
        PExpr::Arith(op, a, b) => {
            let (a, b) = (expr(a), expr(b));
            match op {
                ArithOp::Add => format!("({a} + {b})"),
                ArithOp::Sub => format!("({a} - {b})"),
                ArithOp::Mul => format!("({a} * {b})"),
                // Lua's // and % are floor-based; C semantics via helpers.
                ArithOp::Div => format!("b_cdiv({a}, {b})"),
                ArithOp::FloorDiv => format!("({a} // {b})"),
                ArithOp::Rem => format!("b_cmod({a}, {b})"),
            }
        }
        PExpr::Cmp(op, a, b) => {
            let tok = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "~=",
            };
            format!("(({} {tok} {}) and 1 or 0)", expr(a), expr(b))
        }
        PExpr::Neg(a) => format!("(-{})", expr(a)),
        PExpr::Not(a) => format!("(({} == 0) and 1 or 0)", expr(a)),
        PExpr::Abs(a) => format!("math.abs({})", expr(a)),
        PExpr::Call(b, x, y) => {
            let (x, y) = (expr(x), expr(y));
            match b {
                Builtin::Min => format!("math.min({x}, {y})"),
                Builtin::Max => format!("math.max({x}, {y})"),
                Builtin::DivCeil => format!("(({x} + {y} - 1) // {y})"),
                Builtin::Gcd => format!("b_gcd({x}, {y})"),
                Builtin::RoundUp => format!("((({x} + {y} - 1) // {y}) * {y})"),
                Builtin::Abs => unreachable!("abs is unary"),
            }
        }
    }
}

/// Rendering context: the continue label of the innermost enclosing loop.
fn emit(
    w: &mut CodeWriter,
    nodes: &[SNode],
    program: &LoweredProgram,
    cont_label: Option<&str>,
) {
    for node in nodes {
        match node {
            SNode::Declare { .. } => {} // globals; nothing to declare
            SNode::Assign { var, value } => w.line(format!("{var} = {}", expr(value))),
            SNode::If { cond, then, otherwise } => {
                w.open(format!("if {} ~= 0 then", expr(cond)));
                emit(w, then, program, cont_label);
                if !otherwise.is_empty() {
                    w.hinge("else");
                    emit(w, otherwise, program, cont_label);
                }
                w.close("end");
            }
            SNode::RangeLoop { var, start, stop, step, const_positive_step, body } => {
                let label = format!("cont_{var}");
                if *const_positive_step {
                    // Lua's numeric for is inclusive: [start, stop) with a
                    // positive step is `start, stop - 1, step`.
                    w.open(format!("for {var} = {start}, {stop} - 1, {step} do"));
                    emit(w, body, program, Some(&label));
                    w.line(format!("::{label}::"));
                    w.close("end");
                } else {
                    // Dynamic step sign: explicit while with the continue
                    // label placed before the increment.
                    w.line(format!("{var} = {start}"));
                    w.open(format!(
                        "while (({step} > 0 and {var} < {stop}) or ({step} < 0 and {var} > {stop})) do"
                    ));
                    emit(w, body, program, Some(&label));
                    w.line(format!("::{label}::"));
                    w.line(format!("{var} = {var} + {step}"));
                    w.close("end");
                }
            }
            SNode::ValuesLoop { var, pool, body } => {
                let label = format!("cont_{var}");
                w.open(format!("for _pi_{var} = 1, #POOL_{pool} do"));
                w.line(format!("{var} = POOL_{pool}[_pi_{var}]"));
                emit(w, body, program, Some(&label));
                w.line(format!("::{label}::"));
                w.close("end");
            }
            SNode::Prune { idx } => {
                w.line(format!("pruned[{}] = pruned[{}] + 1", idx + 1, idx + 1));
                match cont_label {
                    Some(label) => w.line(format!("goto {label}")),
                    None => w.line("do return end"),
                }
            }
            SNode::Visit => {
                w.line("survivors = survivors + 1");
                let mut xor = String::from("checksum");
                for v in &program.vars {
                    xor = format!("({xor} ~ {v})");
                }
                w.line(format!("checksum = {xor}"));
            }
        }
    }
}

impl Backend for LuaBackend {
    fn language(&self) -> &'static str {
        "Lua"
    }

    fn extension(&self) -> &'static str {
        "lua"
    }

    fn generate(&self, p: &LoweredProgram) -> String {
        let mut w = CodeWriter::new();
        w.line(format!("-- generated by beast-codegen: space `{}`", p.name));
        w.blank();
        w.open("function b_cdiv(a, b)");
        w.line("local q = math.abs(a) // math.abs(b)");
        w.line("if (a < 0) == (b < 0) then return q else return -q end");
        w.close("end");
        w.blank();
        w.open("function b_cmod(a, b)");
        w.line("return a - b_cdiv(a, b) * b");
        w.close("end");
        w.blank();
        w.open("function b_gcd(a, b)");
        w.line("a = math.abs(a); b = math.abs(b)");
        w.open("while b ~= 0 do");
        w.line("a, b = b, a % b");
        w.close("end");
        w.line("return a");
        w.close("end");
        w.blank();
        for (i, pool) in p.pools.iter().enumerate() {
            let vals: Vec<String> = pool.iter().map(|v| v.to_string()).collect();
            w.line(format!("POOL_{i} = {{{}}}", vals.join(", ")));
        }
        w.line("survivors = 0");
        w.line("checksum = 0");
        w.line("pruned = {}");
        w.open(format!("for i = 1, {} do", p.constraint_names.len().max(1)));
        w.line("pruned[i] = 0");
        w.close("end");
        w.blank();
        w.open("function run()");
        for v in &p.vars {
            w.line(format!("{v} = 0"));
        }
        emit(&mut w, &p.body, p, None);
        w.close("end");
        w.blank();
        w.line("run()");
        w.line("print(\"survivors \" .. survivors)");
        for (i, name) in p.constraint_names.iter().enumerate() {
            w.line(format!("print(\"pruned {name} \" .. pruned[{}])", i + 1));
        }
        w.line("print(\"checksum \" .. checksum)");
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::tree::Program;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    #[test]
    fn generates_lua_shape() {
        let s = Space::builder("luagen")
            .range("a", 1, 5)
            .range_step("b", var("a"), 17, var("a"))
            .constraint("big", ConstraintClass::Hard, (var("a") * var("b")).gt(20))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let prog = lower(&Program::from_lowered(&lp).unwrap());
        let src = LuaBackend.generate(&prog);
        assert!(src.contains("function run()"));
        assert!(src.contains("goto cont_b"));
        assert!(src.contains("::cont_b::"));
        assert!(src.contains("print(\"survivors \""));
        // `do` and `end` balance (function/for/while/if all close with end).
        let opens = src.matches(" do\n").count()
            + src.matches("function ").count()
            + src.matches("then\n").count()
            - 1; // "function " appears once in a comment? no: count carefully below
        let _ = opens;
        assert!(src.matches("\nend").count() + src.matches(" end").count() > 0);
    }
}
