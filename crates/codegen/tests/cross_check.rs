//! Cross-language equivalence: every generated program must report exactly
//! the same survivors, per-constraint prune counts, and variable checksum as
//! the in-process compiled engine. Backends whose toolchain is missing on
//! the host are skipped (reported in the test output), never failed.

use std::sync::Arc;

use beast_codegen::{all_backends, all_toolchains, generate, Program, ToolchainResult};
use beast_core::constraint::ConstraintClass;
use beast_core::expr::{lit, min2, ternary, var};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::space::Space;
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::point::PointRef;
use beast_engine::visit::Visitor;

/// Visitor that mirrors the generated programs' checksum.
#[derive(Default)]
struct ChecksumVisitor {
    survivors: u64,
    checksum: i64,
}

impl Visitor for ChecksumVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.survivors += 1;
        for i in 0..point.names().len() {
            self.checksum ^= point.value(i).as_int().unwrap();
        }
    }

    fn merge(&mut self, other: Self) {
        self.survivors += other.survivors;
        self.checksum ^= other.checksum;
    }
}

fn cross_check(space: Arc<Space>) {
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    // Ground truth from the in-process engine. The generated programs are
    // pure per-point evaluators, so compare against the engine with interval
    // block pruning off — with it on, skipped subtrees legitimately shrink
    // the per-constraint prune counts (survivors/checksum are unaffected and
    // are additionally cross-checked against the block-pruning engine below).
    let compiled = Compiled::with_options(lp.clone(), EngineOptions::no_intervals());
    let truth = compiled.run(ChecksumVisitor::default()).unwrap();
    let pruning = Compiled::new(lp.clone()).run(ChecksumVisitor::default()).unwrap();
    assert_eq!(pruning.visitor.survivors, truth.visitor.survivors);
    assert_eq!(pruning.visitor.checksum, truth.visitor.checksum);

    let program = Program::from_lowered(&lp).unwrap();
    let lowered = beast_codegen::lower(&program);

    let mut ran_any = false;
    for (backend, toolchain) in all_backends().iter().zip(all_toolchains()) {
        let src = generate(&lp, backend.as_ref()).unwrap();
        assert!(!src.is_empty());
        let result = beast_codegen::generate_and_run(backend.as_ref(), &toolchain, &lowered);
        match result {
            ToolchainResult::Unavailable(tool) => {
                eprintln!("[skip] {}: {tool} not installed", backend.language());
            }
            ToolchainResult::Failed { stage, detail } => {
                panic!(
                    "{} backend failed at {stage} for space `{}`:\n{detail}\n--- source ---\n{src}",
                    backend.language(),
                    space.name()
                );
            }
            ToolchainResult::Ran { counts, .. } => {
                ran_any = true;
                assert_eq!(
                    counts.survivors,
                    truth.visitor.survivors,
                    "{}: survivor mismatch for `{}`",
                    backend.language(),
                    space.name()
                );
                assert_eq!(
                    counts.checksum,
                    truth.visitor.checksum,
                    "{}: checksum mismatch for `{}`",
                    backend.language(),
                    space.name()
                );
                for (i, (name, pruned)) in counts.pruned.iter().enumerate() {
                    assert_eq!(&**name, &*space.constraints()[i].name);
                    assert_eq!(
                        *pruned,
                        truth.stats.pruned[i],
                        "{}: prune-count mismatch for `{}`/{name}",
                        backend.language(),
                        space.name()
                    );
                }
            }
        }
    }
    assert!(ran_any, "no toolchain available to cross-check at all");
}

#[test]
fn simple_dependent_space() {
    let space = Space::builder("simple_dep")
        .constant("cap", 40)
        .range("a", 1, 9)
        .range_step("b", var("a"), 33, var("a"))
        .derived("ab", var("a") * var("b"))
        .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
        .build()
        .unwrap();
    cross_check(space);
}

#[test]
fn guarded_short_circuit_and_ternary() {
    // Exercises the flattener: the `%` is only legal when x != 0, and the
    // ternary branches must stay lazy.
    let space = Space::builder("guards")
        .range("x", 0, 20)
        .range("y", 1, 8)
        .derived(
            "pick",
            ternary(var("x").gt(10), var("x") - var("y"), var("x") + var("y")),
        )
        .constraint(
            "not_multiple",
            ConstraintClass::Generic,
            var("x").ne(0).and((lit(60) % var("x")).eq(0)).not(),
        )
        .constraint("pick_odd", ConstraintClass::Soft, (var("pick") % 2).ne(0))
        .build()
        .unwrap();
    cross_check(space);
}

#[test]
fn negative_steps_and_value_pools() {
    let space = Space::builder("negpool")
        .list("mode", [0i64, 1, 3])
        .range_step("down", 12, 0, -3)
        .derived("m", min2(var("mode") * var("down"), 9))
        .constraint("small", ConstraintClass::Soft, var("m").lt(3))
        .build()
        .unwrap();
    cross_check(space);
}

#[test]
fn preamble_constraint_empties_space() {
    let space = Space::builder("preamble")
        .constant("enabled", 0)
        .range("x", 0, 1000)
        .constraint("off", ConstraintClass::Generic, var("enabled").eq(0))
        .build()
        .unwrap();
    cross_check(space);
}

#[test]
fn gemm_reduced_space_cross_check() {
    // The real model problem on a reduced device — the strongest test: 15
    // loops, 14 derived variables, 12 constraints, folded string settings.
    let params = beast_gemm::GemmSpaceParams::reduced(12);
    let space = beast_gemm::build_gemm_space(&params).unwrap();
    cross_check(space);
}
