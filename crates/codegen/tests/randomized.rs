//! Randomized cross-language validation: pseudo-random spaces (seeded, so
//! failures reproduce) are generated, translated by every backend, executed
//! by every installed toolchain, and compared against the in-process engine
//! — survivors, per-constraint counts and the XOR checksum must all match.

use std::sync::Arc;

use beast_codegen::{all_backends, all_toolchains, ToolchainResult};
use beast_core::constraint::ConstraintClass;
use beast_core::expr::{lit, max2, min2, ternary, var, E};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::space::{Space, SpaceBuilder};
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::point::PointRef;
use beast_engine::visit::Visitor;

/// Tiny deterministic PRNG (xorshift64*), independent of `rand` so the test
/// is self-contained and stable across dependency upgrades.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random pure expression over the currently visible variables.
fn random_expr(rng: &mut XorShift, vars: &[String], depth: usize) -> E {
    if depth == 0 || rng.below(3) == 0 {
        return if !vars.is_empty() && rng.below(2) == 0 {
            var(&vars[rng.below(vars.len() as u64) as usize])
        } else {
            lit(rng.below(9) as i64 - 2)
        };
    }
    let a = random_expr(rng, vars, depth - 1);
    let b = random_expr(rng, vars, depth - 1);
    match rng.below(8) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => min2(a, b),
        4 => max2(a, b),
        5 => ternary(a.gt(0), b, lit(1)),
        // Guarded remainder: divisor forced >= 1.
        6 => a % max2(b, 1),
        _ => a.lt(b),
    }
}

fn random_space(seed: u64) -> Arc<Space> {
    let mut rng = XorShift(seed | 1);
    let n_iters = 2 + rng.below(3) as usize; // 2..4 loops
    let mut builder: SpaceBuilder = Space::builder("randomized");
    let mut vars: Vec<String> = Vec::new();
    for i in 0..n_iters {
        let name = format!("v{i}");
        match rng.below(3) {
            0 if !vars.is_empty() => {
                // Dependent range: from a previous var's value.
                let dep = &vars[rng.below(vars.len() as u64) as usize];
                builder = builder.range_step(
                    &name,
                    1,
                    var(dep) + (2 + rng.below(8) as i64),
                    1 + rng.below(3) as i64,
                );
            }
            1 => {
                let len = 2 + rng.below(4);
                let values: Vec<i64> = (0..len).map(|_| rng.below(12) as i64).collect();
                builder = builder.list(&name, values);
            }
            _ => {
                builder = builder.range(&name, 1, 3 + rng.below(8) as i64);
            }
        }
        vars.push(name);
    }
    let n_derived = rng.below(3) as usize;
    for i in 0..n_derived {
        let name = format!("d{i}");
        let e = random_expr(&mut rng, &vars, 2);
        builder = builder.derived(&name, e);
        vars.push(name);
    }
    for i in 0..1 + rng.below(3) as usize {
        let e = random_expr(&mut rng, &vars, 2);
        let threshold = rng.below(20) as i64 - 4;
        builder = builder.constraint(
            &format!("c{i}"),
            ConstraintClass::Generic,
            e.gt(threshold),
        );
    }
    builder.build().expect("generated space is valid")
}

#[derive(Default)]
struct ChecksumVisitor {
    survivors: u64,
    checksum: i64,
}

impl Visitor for ChecksumVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.survivors += 1;
        for i in 0..point.names().len() {
            self.checksum ^= point.value(i).as_int().unwrap();
        }
    }

    fn merge(&mut self, other: Self) {
        self.survivors += other.survivors;
        self.checksum ^= other.checksum;
    }
}

#[test]
fn randomized_spaces_cross_check_all_toolchains() {
    let backends = all_backends();
    for seed in 1..=8u64 {
        let space = random_space(seed * 7919);
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        // Generated programs evaluate every point, so the per-constraint
        // prune counts must come from the engine with block pruning off.
        let truth = Compiled::with_options(lp.clone(), EngineOptions::no_intervals())
            .run(ChecksumVisitor::default())
            .unwrap();
        let program =
            beast_codegen::lower(&beast_codegen::Program::from_lowered(&lp).unwrap());

        for (backend, toolchain) in backends.iter().zip(all_toolchains()) {
            match beast_codegen::generate_and_run(backend.as_ref(), &toolchain, &program) {
                ToolchainResult::Unavailable(_) => {}
                ToolchainResult::Failed { stage, detail } => panic!(
                    "seed {seed}: {} failed at {stage}:\n{detail}\n--- source ---\n{}",
                    backend.language(),
                    backend.generate(&program)
                ),
                ToolchainResult::Ran { counts, .. } => {
                    assert_eq!(
                        (counts.survivors, counts.checksum),
                        (truth.visitor.survivors, truth.visitor.checksum),
                        "seed {seed}: {} disagrees with the engine",
                        backend.language()
                    );
                    for (i, (_, pruned)) in counts.pruned.iter().enumerate() {
                        assert_eq!(*pruned, truth.stats.pruned[i], "seed {seed}");
                    }
                }
            }
        }
    }
}
