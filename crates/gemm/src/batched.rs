//! A second model problem: the batched Cholesky GPU kernel of the paper's
//! reference \[5\] ("Implementation and tuning of batched Cholesky
//! factorization and solve for NVIDIA GPUs") — the kernel family behind
//! Table I's "batched factorizations" rows.
//!
//! The kernel factors `batch` independent n×n SPD matrices. Its BEAST space
//! follows the structure of the paper's batched kernels:
//!
//! * `dim_x` — threads cooperating on one matrix (a column of threads);
//! * `mpb` — matrices factored per thread block;
//! * `nb` — panel width of the in-register/in-shared factorization;
//! * `use_shmem` — stage the matrix in shared memory (small n) or work from
//!   registers/global (larger n);
//! * `pad` — shared-memory padding column to dodge bank conflicts.
//!
//! Derived variables mirror Fig. 12's style (threads, registers, shared
//! memory, occupancy bounds); constraints come in the same three classes.
//! The analytic throughput model favors high occupancy and full warps,
//! penalizes padding waste and register spill — enough structure for the
//! autotuning loop (enumerate → prune → score → pick) to be meaningful.

use std::sync::Arc;

use beast_core::constraint::ConstraintClass;
use beast_core::error::SpaceError;
use beast_core::expr::{min2, ternary, var};
use beast_core::space::Space;
use beast_cuda::{occupancy, BlockDemand, CcLimits, DeviceProps};
use beast_engine::point::Point;

/// Parameters of a batched-Cholesky tuning run.
#[derive(Debug, Clone)]
pub struct BatchedCholeskyParams {
    /// Target device.
    pub device: DeviceProps,
    /// Matrix order (small: ≤ 64; the paper's "very small matrices").
    pub n: i64,
    /// Number of matrices in the batch.
    pub batch: i64,
    /// Lowest desired occupancy in threads per multiprocessor.
    pub min_threads_per_multiprocessor: i64,
}

impl BatchedCholeskyParams {
    /// Small-matrix default on the paper's device.
    pub fn small(n: i64, batch: i64) -> BatchedCholeskyParams {
        BatchedCholeskyParams {
            device: DeviceProps::tesla_k40c(),
            n,
            batch,
            min_threads_per_multiprocessor: 256,
        }
    }

    /// Compute-capability limits for the device.
    pub fn cc(&self) -> CcLimits {
        CcLimits::for_cc(self.device.cuda_major, self.device.cuda_minor)
            .expect("built-in devices have valid compute capabilities")
    }
}

/// One point of the batched-Cholesky space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedCholeskyConfig {
    /// Threads per matrix.
    pub dim_x: i64,
    /// Matrices per block.
    pub mpb: i64,
    /// Panel width.
    pub nb: i64,
    /// Stage in shared memory.
    pub use_shmem: bool,
    /// Bank-conflict padding.
    pub pad: i64,
}

/// Build the batched-Cholesky search space.
pub fn build_batched_cholesky_space(
    params: &BatchedCholeskyParams,
) -> Result<Arc<Space>, SpaceError> {
    let d = &params.device;
    let cc = params.cc();

    Space::builder("batched_cholesky_gpu")
        .constant("n", params.n)
        .constant("batch", params.batch)
        .constant("float_size", 8) // double precision
        .constant("warp_size", d.warp_size)
        .constant("max_threads_per_block", d.max_threads_per_block)
        .constant("max_shared_mem_per_block", d.max_shared_mem_per_block)
        .constant("max_regs_per_block", d.max_regs_per_block)
        .constant("max_registers_per_thread", cc.max_registers_per_thread)
        .constant("max_registers_per_multi_processor", d.max_registers_per_multi_processor)
        .constant("max_shmem_per_multi_processor", d.max_shmem_per_multi_processor)
        .constant("max_blocks_per_multi_processor", cc.max_blocks_per_multi_processor)
        .constant("min_threads_per_multi_processor", params.min_threads_per_multiprocessor)
        // ---- iterators ----
        .range("dim_x", 1, var("n") + 1)
        .range("mpb", 1, 33)
        .range("nb", 1, var("n") + 1)
        .range("use_shmem", 0, 2)
        .range("pad", 0, 2)
        // ---- derived variables ----
        .derived("threads_per_block", var("dim_x") * var("mpb"))
        // Each thread holds a column strip of its panel in registers.
        .derived(
            "regs_per_thread",
            (var("n") / var("dim_x") + 1) * var("nb") * 2 + 16,
        )
        .derived("regs_per_block", var("regs_per_thread") * var("threads_per_block"))
        // Shared staging: one padded matrix per resident matrix.
        .derived(
            "shmem_per_block",
            ternary(
                var("use_shmem").ne(0),
                var("mpb") * var("n") * (var("n") + var("pad")) * var("float_size"),
                var("mpb") * var("nb") * (var("n") + var("pad")) * var("float_size"),
            ),
        )
        .derived(
            "max_blocks_by_regs",
            min2(
                var("max_registers_per_multi_processor") / var("regs_per_block"),
                var("max_blocks_per_multi_processor"),
            ),
        )
        .derived(
            "max_blocks_by_shmem",
            min2(
                var("max_shmem_per_multi_processor") / var("shmem_per_block"),
                var("max_blocks_per_multi_processor"),
            ),
        )
        .derived(
            "max_threads_resident",
            min2(var("max_blocks_by_regs"), var("max_blocks_by_shmem"))
                * var("threads_per_block"),
        )
        // ---- hard constraints (Fig. 13 style) ----
        .constraint(
            "over_max_threads",
            ConstraintClass::Hard,
            var("threads_per_block").gt(var("max_threads_per_block")),
        )
        .constraint(
            "over_max_regs_per_thread",
            ConstraintClass::Hard,
            var("regs_per_thread").gt(var("max_registers_per_thread")),
        )
        .constraint(
            "over_max_regs_per_block",
            ConstraintClass::Hard,
            var("regs_per_block").gt(var("max_regs_per_block")),
        )
        .constraint(
            "over_max_shmem",
            ConstraintClass::Hard,
            var("shmem_per_block").gt(var("max_shared_mem_per_block")),
        )
        // ---- soft constraints (Fig. 14 style) ----
        .constraint(
            "low_occupancy",
            ConstraintClass::Soft,
            var("max_threads_resident").lt(var("min_threads_per_multi_processor")),
        )
        .constraint(
            "partial_warps",
            ConstraintClass::Soft,
            (var("threads_per_block") % var("warp_size")).ne(0),
        )
        // ---- correctness constraints (Fig. 15 style) ----
        .constraint(
            "ragged_columns",
            ConstraintClass::Correctness,
            (var("n") % var("dim_x")).ne(0),
        )
        .constraint(
            "ragged_panels",
            ConstraintClass::Correctness,
            (var("n") % var("nb")).ne(0),
        )
        .constraint(
            "batch_remainder",
            ConstraintClass::Correctness,
            (var("batch") % var("mpb")).ne(0),
        )
        .build()
}

/// Extract a config from a surviving point.
pub fn point_to_batched_config(point: &Point) -> BatchedCholeskyConfig {
    BatchedCholeskyConfig {
        dim_x: point.get_int("dim_x"),
        mpb: point.get_int("mpb"),
        nb: point.get_int("nb"),
        use_shmem: point.get_int("use_shmem") != 0,
        pad: point.get_int("pad"),
    }
}

/// Analytic throughput model for a configuration, in matrices per
/// microsecond (arbitrary but consistent units — the tuning objective).
pub fn estimate_batched(
    params: &BatchedCholeskyParams,
    config: &BatchedCholeskyConfig,
) -> f64 {
    let d = &params.device;
    let cc = params.cc();
    let n = params.n as f64;

    let regs_per_thread = (params.n / config.dim_x + 1) * config.nb * 2 + 16;
    let shmem = if config.use_shmem {
        config.mpb * params.n * (params.n + config.pad) * 8
    } else {
        config.mpb * config.nb * (params.n + config.pad) * 8
    };
    let occ = occupancy(
        d,
        &cc,
        &BlockDemand {
            threads_per_block: config.dim_x * config.mpb,
            regs_per_thread,
            shmem_per_block: shmem,
        },
    );
    if occ.blocks_per_mp == 0 {
        return 0.0;
    }
    let occ_eff = occ.fraction / (occ.fraction + 0.1) * 1.1;
    // Thread-per-matrix parallelism saturates at the matrix order.
    let par_eff = (config.dim_x as f64 / n).min(1.0).sqrt();
    // Wider panels amortize synchronization but raise register pressure
    // (already captured by occupancy).
    let nb_eff = (config.nb as f64 / (config.nb as f64 + 2.0)).min(1.0);
    // Shared staging helps when the whole matrix fits comfortably.
    let shmem_eff = if config.use_shmem { 1.15 } else { 1.0 };
    // Padding costs capacity (in occupancy) but removes bank conflicts.
    let pad_eff = if config.pad > 0 { 1.08 } else { 1.0 };
    let matrices_in_flight =
        (occ.blocks_per_mp * config.mpb * d.multi_processor_count) as f64;

    occ_eff * par_eff * nb_eff * shmem_eff * pad_eff * matrices_in_flight / n
}

/// Tune: sweep the space with the compiled engine, keep the best `k`.
pub fn tune_batched_cholesky(
    params: &BatchedCholeskyParams,
    k: usize,
) -> Result<Vec<(f64, BatchedCholeskyConfig)>, crate::tune::TuneError> {
    let space = build_batched_cholesky_space(params)?;
    let (best, _stats) = beast_engine::sweep::best_k(&space, k, 2, {
        let params = params.clone();
        move |p| {
            let config = BatchedCholeskyConfig {
                dim_x: p.get("dim_x").unwrap().as_int().unwrap(),
                mpb: p.get("mpb").unwrap().as_int().unwrap(),
                nb: p.get("nb").unwrap().as_int().unwrap(),
                use_shmem: p.get("use_shmem").unwrap().as_int().unwrap() != 0,
                pad: p.get("pad").unwrap().as_int().unwrap(),
            };
            estimate_batched(&params, &config)
        }
    })
    .map_err(crate::tune::TuneError::from)?;
    Ok(best
        .into_iter()
        .map(|(score, point)| (score, point_to_batched_config(&point)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_builds_and_prunes() {
        let params = BatchedCholeskyParams::small(32, 1024);
        let space = build_batched_cholesky_space(&params).unwrap();
        assert_eq!(space.iters().len(), 5);
        assert_eq!(space.constraints().len(), 9);
        let (survivors, stats) = beast_engine::sweep::count(&space).unwrap();
        assert!(survivors > 0);
        assert!(stats.pruned_fraction() > 0.5, "pruning should bite");
    }

    #[test]
    fn survivors_satisfy_divisibility() {
        let params = BatchedCholeskyParams::small(24, 960);
        let space = build_batched_cholesky_space(&params).unwrap();
        let (points, _) = beast_engine::sweep::collect(&space, 10_000).unwrap();
        assert!(!points.is_empty());
        for p in &points {
            assert_eq!(24 % p.get_int("dim_x"), 0);
            assert_eq!(24 % p.get_int("nb"), 0);
            assert_eq!(960 % p.get_int("mpb"), 0);
            assert_eq!((p.get_int("dim_x") * p.get_int("mpb")) % 32, 0);
        }
    }

    #[test]
    fn tuning_finds_plausible_winners() {
        let params = BatchedCholeskyParams::small(32, 1024);
        let best = tune_batched_cholesky(&params, 5).unwrap();
        assert_eq!(best.len(), 5);
        // Scores descending and positive.
        for w in best.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
        assert!(best[0].0 > 0.0);
        // The winner uses full warps via dim_x * mpb.
        let c = best[0].1;
        assert_eq!((c.dim_x * c.mpb) % 32, 0);
    }

    #[test]
    fn model_prefers_full_occupancy_shapes() {
        let params = BatchedCholeskyParams::small(32, 1024);
        // mpb must stay small enough for the staged matrices to fit in the
        // 48 KiB shared-memory budget (2 × 32 × 33 × 8 B ≈ 16.5 KiB).
        let good = BatchedCholeskyConfig {
            dim_x: 32,
            mpb: 2,
            nb: 8,
            use_shmem: true,
            pad: 1,
        };
        let bad = BatchedCholeskyConfig {
            dim_x: 1,
            mpb: 1,
            nb: 1,
            use_shmem: false,
            pad: 0,
        };
        assert!(
            estimate_batched(&params, &good) > estimate_batched(&params, &bad),
            "the model must separate obviously good from bad shapes"
        );
    }
}
