//! End-to-end GEMM autotuning: enumerate → prune → score → pick.
//!
//! This is the full BEAST loop of Section I — "the variants that pass the
//! pruning process are compiled, run and benchmarked, and the best
//! performers are identified" — with the analytic performance model standing
//! in for compile-and-run (the substitution documented in DESIGN.md), and
//! the functional simulator available to *verify* that winning
//! configurations compute correct products.

use beast_core::error::{EvalError, SpaceError};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::parallel::run_parallel;
use beast_engine::point::Point;
use beast_engine::stats::PruneStats;
use beast_engine::sweep::SweepError;
use beast_engine::visit::BestK;
use beast_gpu_sim::{estimate, model_peak, GemmConfig, Matrix, PerfEstimate};

use crate::space::{build_gemm_space, point_to_config, GemmSpaceParams};

/// Errors from the tuning pipeline.
#[derive(Debug)]
pub enum TuneError {
    /// The space failed to build or lower.
    Space(SpaceError),
    /// Evaluation failed at runtime.
    Eval(EvalError),
    /// The sweep driver failed (worker panic, checkpoint I/O).
    Sweep(SweepError),
}

impl From<SpaceError> for TuneError {
    fn from(e: SpaceError) -> Self {
        TuneError::Space(e)
    }
}

impl From<EvalError> for TuneError {
    fn from(e: EvalError) -> Self {
        TuneError::Eval(e)
    }
}

impl From<SweepError> for TuneError {
    fn from(e: SweepError) -> Self {
        match e {
            SweepError::Space(s) => TuneError::Space(s),
            SweepError::Eval(v) => TuneError::Eval(v),
            other => TuneError::Sweep(other),
        }
    }
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Space(e) => write!(f, "space error: {e}"),
            TuneError::Eval(e) => write!(f, "evaluation error: {e}"),
            TuneError::Sweep(e) => write!(f, "sweep error: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// One tuned candidate.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// The configuration.
    pub config: GemmConfig,
    /// Its modeled performance.
    pub perf: PerfEstimate,
    /// The surviving point (all iterator + derived values).
    pub point: Point,
}

/// Result of a tuning sweep.
#[derive(Debug)]
pub struct TuneOutcome {
    /// The top-k configurations, best first.
    pub best: Vec<TunedKernel>,
    /// Pruning statistics for the sweep.
    pub stats: PruneStats,
    /// Survivor count.
    pub survivors: u64,
    /// The device's model peak for this precision, GFLOP/s.
    pub peak_gflops: f64,
}

impl TuneOutcome {
    /// Best configuration's fraction of model peak (the paper's Table I
    /// "80% of peak" metric); zero if nothing survived.
    pub fn best_fraction_of_peak(&self) -> f64 {
        self.best.first().map(|k| k.perf.fraction_of_peak).unwrap_or(0.0)
    }
}

/// Run the full autotuning sweep for the given parameters, keeping the
/// best `k` configurations, using `threads` worker threads.
pub fn tune_gemm(
    params: &GemmSpaceParams,
    k: usize,
    threads: usize,
) -> Result<TuneOutcome, TuneError> {
    let space = build_gemm_space(params)?;
    let plan = Plan::new(&space, PlanOptions::default())?;
    let lowered = LoweredPlan::new(&plan)?;

    let device = params.device.clone();
    let cc = params.cc();
    let precision = params.precision;
    let names: std::sync::Arc<[std::sync::Arc<str>]> =
        std::sync::Arc::from(lowered.slot_names.clone().into_boxed_slice());

    let score_device = device.clone();
    let make = move || {
        let device = score_device.clone();
        BestK::new(names.clone(), k, move |point| {
            let config = crate::space::pointref_to_config(point);
            estimate(&device, &cc, &config, precision).gflops
        })
    };

    let out = run_parallel(&lowered, threads, make)?;
    let survivors = out.stats.survivors;
    let best = out
        .visitor
        .best
        .into_iter()
        .map(|(_, point)| {
            let config = point_to_config(&point);
            let perf = estimate(&device, &cc, &config, precision);
            TunedKernel { config, perf, point }
        })
        .collect();

    Ok(TuneOutcome {
        best,
        stats: out.stats,
        survivors,
        peak_gflops: model_peak(&device, precision),
    })
}

/// Verify a tuned configuration numerically: simulate the kernel on a
/// random tile-compatible workload and compare against the reference GEMM.
/// Returns the max-norm error. Double-precision convenience wrapper of
/// [`verify_config_for`].
pub fn verify_config(config: &GemmConfig, transpose: beast_gpu_sim::Transpose) -> f64 {
    verify_config_for::<f64>(config, transpose)
}

/// Verify a configuration at any of the four LAPACK precisions (the scalar
/// type parameter selects S/D/C/Z, matching the paper's per-precision
/// tuning runs).
pub fn verify_config_for<T: beast_gpu_sim::Scalar>(
    config: &GemmConfig,
    transpose: beast_gpu_sim::Transpose,
) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEA57);
    let m = (config.blk_m as usize) * 2;
    let n = (config.blk_n as usize) * 2;
    let k = (config.blk_k as usize) * 2;
    let a: Matrix<T> = if transpose.a {
        Matrix::random(k, m, &mut rng)
    } else {
        Matrix::random(m, k, &mut rng)
    };
    let b: Matrix<T> = if transpose.b {
        Matrix::random(n, k, &mut rng)
    } else {
        Matrix::random(k, n, &mut rng)
    };
    let expect = beast_gpu_sim::reference_gemm_trans(&a, &b, transpose.a, transpose.b);
    let got = beast_gpu_sim::sim_gemm(config, &a, &b, transpose.a, transpose.b);
    got.c.max_dist(&expect)
}

/// Count survivors of the sweep without scoring (used by the headline
/// experiment and tests).
pub fn count_survivors(
    params: &GemmSpaceParams,
    threads: usize,
) -> Result<(u64, PruneStats), TuneError> {
    let space = build_gemm_space(params)?;
    let plan = Plan::new(&space, PlanOptions::default())?;
    let lowered = LoweredPlan::new(&plan)?;
    let out = run_parallel(
        &lowered,
        threads,
        beast_engine::visit::CountVisitor::default,
    )?;
    Ok((out.visitor.count, out.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_gpu_sim::Transpose;

    #[test]
    fn reduced_sweep_finds_good_correct_kernels() {
        let params = GemmSpaceParams::reduced(48);
        let outcome = tune_gemm(&params, 5, 4).unwrap();
        assert!(outcome.survivors > 0, "no survivors");
        assert!(!outcome.best.is_empty());
        // Scores are sorted descending.
        for w in outcome.best.windows(2) {
            assert!(w[0].perf.gflops >= w[1].perf.gflops);
        }
        // Every winner must compute a numerically correct product.
        for kernel in &outcome.best {
            let err = verify_config(&kernel.config, Transpose::default());
            assert!(
                err < 1e-10,
                "winning config {:?} computes wrong results (err {err})",
                kernel.config
            );
        }
    }

    #[test]
    fn survivors_satisfy_all_constraints_independently() {
        // Cross-check the space's constraint expressions against the
        // independent Rust implementation in beast-gpu-sim::config.
        let params = GemmSpaceParams::reduced(16);
        let outcome = tune_gemm(&params, 50, 2).unwrap();
        let device = &params.device;
        let cc = params.cc();
        for kernel in &outcome.best {
            let d = kernel.config.derived(
                device,
                cc.max_blocks_per_multi_processor,
                params.precision,
            );
            // Hard constraints.
            assert!(d.threads_per_block <= device.max_threads_per_block);
            assert!(d.regs_per_thread <= cc.max_registers_per_thread);
            assert!(d.regs_per_block <= device.max_regs_per_block);
            assert!(d.shmem_per_block <= device.max_shared_mem_per_block);
            // Soft constraints.
            assert!(d.max_threads_by_regs >= params.min_threads_per_multiprocessor);
            assert!(d.max_threads_by_shmem >= params.min_threads_per_multiprocessor);
            assert!(d.fmas_per_block >= params.min_fmas_per_load * d.loads_per_block);
            assert_eq!(d.threads_per_block % device.warp_size, 0);
            // Correctness constraints.
            let c = &kernel.config;
            assert_eq!(c.dim_m_a * c.dim_n_a, d.threads_per_block);
            assert_eq!(c.dim_m_b * c.dim_n_b, d.threads_per_block);
            assert_eq!(c.blk_m % (c.dim_m_a * c.dim_vec), 0);
            assert_eq!(c.blk_k % c.dim_n_a, 0);
            assert_eq!(c.blk_k % (c.dim_m_b * c.dim_vec), 0);
            assert_eq!(c.blk_n % c.dim_n_b, 0);
        }
    }

    #[test]
    fn pruning_removes_most_of_the_space() {
        // The paper cites pruning "sometimes by as much as 99%".
        let (survivors, stats) = count_survivors(&GemmSpaceParams::reduced(16), 2).unwrap();
        assert!(survivors > 0);
        assert!(
            stats.pruned_fraction() > 0.9,
            "expected >90% pruning, got {:.2}%",
            100.0 * stats.pruned_fraction()
        );
    }

    #[test]
    fn all_precisions_tune_and_verify() {
        use beast_gpu_sim::{Complex, Precision};
        for precision in Precision::all() {
            let params = GemmSpaceParams {
                precision,
                ..GemmSpaceParams::reduced(16)
            };
            let outcome = tune_gemm(&params, 2, 2).unwrap();
            assert!(outcome.survivors > 0, "{precision:?}");
            for kernel in &outcome.best {
                let c = &kernel.config;
                let t = beast_gpu_sim::Transpose::default();
                let err = match precision {
                    Precision::Single => verify_config_for::<f32>(c, t),
                    Precision::Double => verify_config_for::<f64>(c, t),
                    Precision::SingleComplex => verify_config_for::<Complex<f32>>(c, t),
                    Precision::DoubleComplex => verify_config_for::<Complex<f64>>(c, t),
                };
                let tol = match precision {
                    Precision::Single | Precision::SingleComplex => 1e-2,
                    _ => 1e-10,
                };
                assert!(
                    err < tol,
                    "{precision:?}: config {c:?} wrong (err {err})"
                );
            }
        }
    }

    #[test]
    fn transposed_cases_tune_too() {
        for transpose in Transpose::all() {
            let params = GemmSpaceParams {
                transpose,
                ..GemmSpaceParams::reduced(16)
            };
            let outcome = tune_gemm(&params, 3, 2).unwrap();
            assert!(outcome.survivors > 0, "case {}", transpose.suffix());
            for kernel in &outcome.best {
                let err = verify_config(&kernel.config, transpose);
                assert!(
                    err < 1e-10,
                    "case {}: config {:?} wrong (err {err})",
                    transpose.suffix(),
                    kernel.config
                );
            }
        }
    }
}
