//! The GEMM search space — a line-by-line transcription of the paper's
//! Section IX: global settings (Fig. 10), the 15 iterators (Fig. 11), the
//! derived variables (Fig. 12), and the 12 pruning constraints
//! (Figs. 13–15).
//!
//! Settings (`precision`, `arithmetic`, `trans_a`, `trans_b`) and device
//! parameters enter the space as *constants*; the per-precision branches of
//! Figs. 11–12 are expressed as ternary expressions over those constants, so
//! the lowering pass folds them into straight-line integer code — exactly
//! what the paper's translator does when it specializes the generated C for
//! one autotuning run.

use std::sync::Arc;

use beast_core::constraint::ConstraintClass;
use beast_core::error::SpaceError;
use beast_core::expr::{lit, min2, ternary, var, E};
use beast_core::iterator::build as ib;
use beast_core::space::Space;
use beast_cuda::{CcLimits, DeviceProps};
use beast_gpu_sim::{GemmConfig, Precision, Transpose};

/// Parameters defining one autotuning run (one precision × transpose case on
/// one device — the paper tunes each case separately, Section IX-C).
#[derive(Debug, Clone)]
pub struct GemmSpaceParams {
    /// The target device.
    pub device: DeviceProps,
    /// Arithmetic precision (Fig. 10's `precision` + `arithmetic`).
    pub precision: Precision,
    /// Transposition case (Fig. 10's `trans_a` / `trans_b`).
    pub transpose: Transpose,
    /// Soft-constraint threshold: lowest desired occupancy in threads.
    pub min_threads_per_multiprocessor: i64,
    /// Soft-constraint threshold: lowest desired FMA:load ratio.
    pub min_fmas_per_load: i64,
}

impl GemmSpaceParams {
    /// The paper's default run: double real, no transposes, on a Tesla K40c,
    /// with the Fig. 14 thresholds.
    pub fn paper_default() -> GemmSpaceParams {
        GemmSpaceParams {
            device: DeviceProps::tesla_k40c(),
            precision: Precision::Double,
            transpose: Transpose::default(),
            min_threads_per_multiprocessor: 256,
            min_fmas_per_load: 2,
        }
    }

    /// Same settings on a reduced device (`max_dim` thread-grid limit) so
    /// that full sweeps complete in test- and benchmark-friendly time.
    pub fn reduced(max_dim: i64) -> GemmSpaceParams {
        GemmSpaceParams {
            device: DeviceProps::reduced(max_dim),
            ..GemmSpaceParams::paper_default()
        }
    }

    /// Compute-capability limits for the device.
    pub fn cc(&self) -> CcLimits {
        CcLimits::for_cc(self.device.cuda_major, self.device.cuda_minor)
            .expect("built-in devices have valid compute capabilities")
    }
}

/// Build the GEMM search space.
pub fn build_gemm_space(params: &GemmSpaceParams) -> Result<Arc<Space>, SpaceError> {
    let d = &params.device;
    let cc = params.cc();
    let trans_a = i64::from(params.transpose.a);
    let trans_b = i64::from(params.transpose.b);

    let name = format!(
        "{}gemm_{}_{}",
        params.precision.blas_letter(),
        params.transpose.suffix(),
        d.name.replace(' ', "_").to_lowercase()
    );

    let is_double = || var("precision").eq("double");
    let is_complex = || var("arithmetic").eq("complex");

    // dim_vec domain (Fig. 11): double/real {1,2}; double/complex {1};
    // single/real {1,4}; single/complex {1,2} — encoded as range bounds that
    // fold to constants at lowering time.
    let dim_vec_stop = ternary(
        is_double(),
        ternary(is_complex(), lit(2), lit(3)),
        ternary(is_complex(), lit(3), lit(5)),
    );
    let dim_vec_step = ternary(
        is_double(),
        lit(1),
        ternary(is_complex(), lit(1), lit(3)),
    );

    // Helper: multiply by 2 when `cond`.
    fn double_if(cond: E, base: E) -> E {
        ternary(cond, base.clone() * 2, base)
    }

    let builder = Space::builder(&name)
        // ---- Fig. 10: global settings ----
        .constant("precision", params.precision.precision_str())
        .constant("arithmetic", params.precision.arithmetic_str())
        .constant("trans_a", trans_a)
        .constant("trans_b", trans_b)
        // ---- Fig. 8: device query ----
        .constant("max_threads_per_block", d.max_threads_per_block)
        .constant("max_threads_dim_x", d.max_threads_dim_x)
        .constant("max_threads_dim_y", d.max_threads_dim_y)
        .constant("max_shared_mem_per_block", d.max_shared_mem_per_block)
        .constant("warp_size", d.warp_size)
        .constant("max_regs_per_block", d.max_regs_per_block)
        .constant("max_threads_per_multi_processor", d.max_threads_per_multi_processor)
        .constant("max_registers_per_multi_processor", d.max_registers_per_multi_processor)
        .constant("max_shmem_per_multi_processor", d.max_shmem_per_multi_processor)
        .constant("float_size", d.float_size)
        // ---- Fig. 9: compute-capability lookup ----
        .constant("max_blocks_per_multi_processor", cc.max_blocks_per_multi_processor)
        .constant("max_warps_per_multi_processor", cc.max_warps_per_multi_processor)
        .constant("max_registers_per_thread", cc.max_registers_per_thread)
        // ---- Fig. 14 thresholds ----
        .constant("min_threads_per_multi_processor", params.min_threads_per_multiprocessor)
        .constant("min_fmas_per_load", params.min_fmas_per_load)
        // ---- Fig. 11: the 15 iterators ----
        .range("dim_m", 1, var("max_threads_dim_x") + 1)
        .range("dim_n", 1, var("max_threads_dim_y") + 1)
        .range_step("blk_m", var("dim_m"), var("max_threads_dim_x") + 1, var("dim_m"))
        .range_step("blk_n", var("dim_n"), var("max_threads_dim_y") + 1, var("dim_n"))
        .range(
            "blk_k",
            1,
            min2(var("max_threads_dim_x"), var("max_threads_dim_y")) + 1,
        )
        .iter(
            "dim_vec",
            ib::range_step(lit(1), dim_vec_stop, dim_vec_step),
        )
        .iter(
            "vec_mul",
            ib::range(lit(0), ternary(var("dim_vec").eq(1), lit(1), lit(2))),
        )
        .range(
            "dim_m_a",
            1,
            ternary(
                var("trans_a").eq(0),
                var("blk_m") / var("dim_vec"),
                var("blk_k") / var("dim_vec"),
            ) + 1,
        )
        .range(
            "dim_n_a",
            1,
            ternary(var("trans_a").eq(0), var("blk_k"), var("blk_m")) + 1,
        )
        .range(
            "dim_m_b",
            1,
            ternary(
                var("trans_b").eq(0),
                var("blk_k") / var("dim_vec"),
                var("blk_n") / var("dim_vec"),
            ) + 1,
        )
        .range(
            "dim_n_b",
            1,
            ternary(var("trans_b").eq(0), var("blk_n"), var("blk_k")) + 1,
        )
        .range("tex_a", 0, 2)
        .range("tex_b", 0, 2)
        .range("shmem_l1", 0, 2)
        .range("shmem_banks", 0, 2)
        // ---- Fig. 12: derived variables ----
        .derived("threads_per_block", var("dim_m") * var("dim_n"))
        .derived("thr_m", var("blk_m") / var("dim_m"))
        .derived("thr_n", var("blk_n") / var("dim_n"))
        .derived(
            "regs_per_thread",
            double_if(
                is_complex(),
                double_if(is_double(), var("thr_m") * var("thr_n")),
            ),
        )
        .derived("regs_per_block", var("regs_per_thread") * var("threads_per_block"))
        .derived(
            "shmem_per_block",
            double_if(
                is_complex(),
                double_if(
                    is_double(),
                    var("blk_k") * (var("blk_m") + var("blk_n")) * var("float_size"),
                ),
            ),
        )
        .derived(
            "max_blocks_by_regs",
            min2(
                var("max_registers_per_multi_processor") / var("regs_per_block"),
                var("max_blocks_per_multi_processor"),
            ),
        )
        .derived(
            "max_threads_by_regs",
            var("max_blocks_by_regs") * var("threads_per_block"),
        )
        .derived(
            "max_blocks_by_shmem",
            min2(
                var("max_shmem_per_multi_processor") / var("shmem_per_block"),
                var("max_blocks_per_multi_processor"),
            ),
        )
        .derived(
            "max_threads_by_shmem",
            var("max_blocks_by_shmem") * var("threads_per_block"),
        )
        .derived(
            "loads_per_thread",
            (var("thr_m") + var("thr_n")) * var("blk_k") / var("dim_vec"),
        )
        .derived(
            "loads_per_block",
            double_if(
                is_complex(),
                var("loads_per_thread") * var("threads_per_block"),
            ),
        )
        .derived("fmas_per_thread", var("thr_m") * var("thr_n") * var("blk_k"))
        .derived(
            "fmas_per_block",
            ternary(
                is_complex(),
                var("fmas_per_thread") * var("threads_per_block") * 4,
                var("fmas_per_thread") * var("threads_per_block"),
            ),
        )
        // ---- Fig. 13: hard constraints ----
        .constraint(
            "over_max_threads",
            ConstraintClass::Hard,
            var("threads_per_block").gt(var("max_threads_per_block")),
        )
        .constraint(
            "over_max_regs_per_thread",
            ConstraintClass::Hard,
            var("regs_per_thread").gt(var("max_registers_per_thread")),
        )
        .constraint(
            "over_max_regs_per_block",
            ConstraintClass::Hard,
            var("regs_per_block").gt(var("max_regs_per_block")),
        )
        .constraint(
            "over_max_shmem",
            ConstraintClass::Hard,
            var("shmem_per_block").gt(var("max_shared_mem_per_block")),
        )
        // ---- Fig. 14: soft constraints ----
        .constraint(
            "low_occupancy_regs",
            ConstraintClass::Soft,
            var("max_threads_by_regs").lt(var("min_threads_per_multi_processor")),
        )
        .constraint(
            "low_occupancy_shmem",
            ConstraintClass::Soft,
            var("max_threads_by_shmem").lt(var("min_threads_per_multi_processor")),
        )
        // fmas_per_block / loads_per_block < min_fmas_per_load, written
        // multiplicatively: equivalent for positive counts and safe when a
        // degenerate configuration drives loads_per_block to zero.
        .constraint(
            "low_fmas",
            ConstraintClass::Soft,
            var("fmas_per_block").lt(var("min_fmas_per_load") * var("loads_per_block")),
        )
        .constraint(
            "partial_warps",
            ConstraintClass::Soft,
            (var("threads_per_block") % var("warp_size")).ne(0),
        )
        // ---- Fig. 15: correctness constraints ----
        .constraint(
            "cant_reshape_a1",
            ConstraintClass::Correctness,
            (var("dim_m_a") * var("dim_n_a")).ne(var("threads_per_block")),
        )
        .constraint(
            "cant_reshape_b1",
            ConstraintClass::Correctness,
            (var("dim_m_b") * var("dim_n_b")).ne(var("threads_per_block")),
        )
        .constraint(
            "cant_reshape_a2",
            ConstraintClass::Correctness,
            var("trans_a")
                .eq(0)
                .and(
                    (var("blk_m") % (var("dim_m_a") * var("dim_vec")))
                        .ne(0)
                        .or((var("blk_k") % var("dim_n_a")).ne(0)),
                )
                .or(var("trans_a").ne(0).and(
                    (var("blk_k") % (var("dim_m_a") * var("dim_vec")))
                        .ne(0)
                        .or((var("blk_m") % var("dim_n_a")).ne(0)),
                )),
        )
        .constraint(
            "cant_reshape_b2",
            ConstraintClass::Correctness,
            var("trans_b")
                .eq(0)
                .and(
                    (var("blk_k") % (var("dim_m_b") * var("dim_vec")))
                        .ne(0)
                        .or((var("blk_n") % var("dim_n_b")).ne(0)),
                )
                .or(var("trans_b").ne(0).and(
                    (var("blk_n") % (var("dim_m_b") * var("dim_vec")))
                        .ne(0)
                        .or((var("blk_k") % var("dim_n_b")).ne(0)),
                )),
        );

    builder.build()
}

/// The 15 iterator names in definition order (Fig. 11).
pub const ITERATOR_NAMES: [&str; 15] = [
    "dim_m",
    "dim_n",
    "blk_m",
    "blk_n",
    "blk_k",
    "dim_vec",
    "vec_mul",
    "dim_m_a",
    "dim_n_a",
    "dim_m_b",
    "dim_n_b",
    "tex_a",
    "tex_b",
    "shmem_l1",
    "shmem_banks",
];

/// Extract a [`GemmConfig`] from a borrowed point view (used inside scoring
/// closures on the hot path).
pub fn pointref_to_config(point: &beast_engine::point::PointRef<'_>) -> GemmConfig {
    let gi = |name: &str| -> i64 {
        point
            .get(name)
            .unwrap_or_else(|| panic!("point missing `{name}`"))
            .as_int()
            .expect("gemm parameters are integers")
    };
    GemmConfig {
        dim_m: gi("dim_m"),
        dim_n: gi("dim_n"),
        blk_m: gi("blk_m"),
        blk_n: gi("blk_n"),
        blk_k: gi("blk_k"),
        dim_vec: gi("dim_vec"),
        vec_mul: gi("vec_mul") != 0,
        dim_m_a: gi("dim_m_a"),
        dim_n_a: gi("dim_n_a"),
        dim_m_b: gi("dim_m_b"),
        dim_n_b: gi("dim_n_b"),
        tex_a: gi("tex_a") != 0,
        tex_b: gi("tex_b") != 0,
        shmem_l1: gi("shmem_l1") != 0,
        shmem_banks: gi("shmem_banks") != 0,
    }
}

/// Extract a [`GemmConfig`] from a surviving point.
pub fn point_to_config(point: &beast_engine::point::Point) -> GemmConfig {
    GemmConfig {
        dim_m: point.get_int("dim_m"),
        dim_n: point.get_int("dim_n"),
        blk_m: point.get_int("blk_m"),
        blk_n: point.get_int("blk_n"),
        blk_k: point.get_int("blk_k"),
        dim_vec: point.get_int("dim_vec"),
        vec_mul: point.get_int("vec_mul") != 0,
        dim_m_a: point.get_int("dim_m_a"),
        dim_n_a: point.get_int("dim_n_a"),
        dim_m_b: point.get_int("dim_m_b"),
        dim_n_b: point.get_int("dim_n_b"),
        tex_a: point.get_int("tex_a") != 0,
        tex_b: point.get_int("tex_b") != 0,
        shmem_l1: point.get_int("shmem_l1") != 0,
        shmem_banks: point.get_int("shmem_banks") != 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::plan::{Plan, PlanOptions};

    #[test]
    fn full_space_builds_for_all_cases() {
        for precision in Precision::all() {
            for transpose in Transpose::all() {
                let params = GemmSpaceParams {
                    precision,
                    transpose,
                    ..GemmSpaceParams::paper_default()
                };
                let space = build_gemm_space(&params).unwrap();
                assert_eq!(space.iters().len(), 15);
                assert_eq!(space.deriveds().len(), 14);
                assert_eq!(space.constraints().len(), 12);
                assert!(!space.has_opaque_nodes());
            }
        }
    }

    #[test]
    fn iterator_names_match_fig11() {
        let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
        let names: Vec<&str> = space.iters().iter().map(|d| &*d.name).collect();
        assert_eq!(names, ITERATOR_NAMES);
    }

    #[test]
    fn constraint_classes_match_paper() {
        let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
        let hard: Vec<&str> = space
            .constraints()
            .iter()
            .filter(|c| c.class == ConstraintClass::Hard)
            .map(|c| &*c.name)
            .collect();
        assert_eq!(
            hard,
            vec![
                "over_max_threads",
                "over_max_regs_per_thread",
                "over_max_regs_per_block",
                "over_max_shmem"
            ]
        );
        let soft = space
            .constraints()
            .iter()
            .filter(|c| c.class == ConstraintClass::Soft)
            .count();
        let correctness = space
            .constraints()
            .iter()
            .filter(|c| c.class == ConstraintClass::Correctness)
            .count();
        assert_eq!((soft, correctness), (4, 4));
    }

    /// The peephole pass must pay for itself on the paper's own workload:
    /// across the lowered GEMM plan's derived/constraint expressions and
    /// range bounds, optimized programs are never longer than the raw
    /// flattening and are strictly shorter in aggregate (constant folds in
    /// the `(dim + tile - 1) / tile`-style derived chains and redundant
    /// bool normalization in the `&&`-chained constraints).
    #[test]
    fn peephole_shrinks_lowered_gemm_programs() {
        use beast_core::ir::{IntExpr, LBody, LIter, LStep, LoweredPlan};
        use beast_engine::postfix::Postfix;

        let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();

        let mut exprs: Vec<&IntExpr> = Vec::new();
        for step in &lp.steps {
            match step {
                LStep::Bind { domain: LIter::Range { start, stop, step }, .. } => {
                    exprs.extend([start, stop, step]);
                }
                LStep::Define { body: LBody::Expr(e), .. }
                | LStep::Check { body: LBody::Expr(e), .. } => exprs.push(e),
                _ => {}
            }
        }
        assert!(!exprs.is_empty(), "lowered GEMM plan has no integer expressions");

        let mut raw_total = 0usize;
        let mut opt_total = 0usize;
        for e in exprs {
            let raw = Postfix::compile_unoptimized(e).len();
            let opt = Postfix::compile(e).len();
            assert!(opt <= raw, "peephole grew a program ({opt} > {raw}) for {e:?}");
            raw_total += raw;
            opt_total += opt;
        }
        assert!(
            opt_total < raw_total,
            "peephole removed no ops across the GEMM plan ({opt_total} vs {raw_total})"
        );
    }

    #[test]
    fn dag_levels_are_sensible() {
        let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
        let dag = space.dag();
        // dim_m / dim_n are independent (level 0).
        assert_eq!(dag.level(0), 0);
        assert_eq!(dag.level(1), 0);
        // blk_m depends on dim_m.
        let blk_m = space.iters().iter().position(|d| &*d.name == "blk_m").unwrap();
        assert_eq!(dag.level(space.iter_node(blk_m)), 1);
        // dim_m_a depends on blk_m and dim_vec.
        let dim_m_a =
            space.iters().iter().position(|d| &*d.name == "dim_m_a").unwrap();
        assert!(dag.level(space.iter_node(dim_m_a)) >= 2);
    }

    #[test]
    fn plan_and_lowering_succeed() {
        let space = build_gemm_space(&GemmSpaceParams::reduced(16)).unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lowered = beast_core::ir::LoweredPlan::new(&plan).unwrap();
        // String settings must be entirely folded away.
        assert!(!lowered.has_opaque_steps());
        // 15 iterators + 14 deriveds = 29 slots.
        assert_eq!(lowered.n_slots, 29);
    }

    #[test]
    fn dot_output_mentions_all_iterators() {
        let space = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
        let dot = space.dag().to_dot("gemm");
        for name in ITERATOR_NAMES {
            assert!(dot.contains(name), "missing {name}");
        }
        assert!(dot.contains("octagon")); // constraints styled like Fig. 16
    }
}
