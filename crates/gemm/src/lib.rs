//! # beast-gemm
//!
//! The paper's model autotuning problem (Section IX): the GEMM kernel for
//! NVIDIA GPUs, "the largest and most complex search space, and the largest
//! and most complex set of pruning constraints" the BEAST project
//! encountered — 15 iterators (Fig. 11), 14 derived variables (Fig. 12), and
//! 12 pruning constraints in three classes (Figs. 13–15), parameterized by
//! device properties (Fig. 8), compute-capability tables (Fig. 9) and the
//! precision/transpose settings (Fig. 10).
//!
//! [`space::build_gemm_space`] transcribes the paper's listings into a
//! `beast-core` space; [`tune::tune_gemm`] runs the full loop: enumerate
//! with the compiled multithreaded engine, prune, score each survivor with
//! the analytic performance model, and return the best kernels — each of
//! which is then *numerically verified* by the functional simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batched;
pub mod resolve;
pub mod space;
pub mod tune;

pub use batched::{
    build_batched_cholesky_space, estimate_batched, point_to_batched_config,
    tune_batched_cholesky, BatchedCholeskyConfig, BatchedCholeskyParams,
};
pub use resolve::{gemm_resolver, resolve_gemm_space};
pub use space::{
    build_gemm_space, point_to_config, pointref_to_config, GemmSpaceParams, ITERATOR_NAMES,
};
pub use tune::{count_survivors, tune_gemm, verify_config, verify_config_for, TuneOutcome, TunedKernel};
