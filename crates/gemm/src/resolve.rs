//! GEMM [`SpaceResolver`] for the sweep service: turns the `"space"` JSON
//! object of a `POST /sweeps` request into a lowered GEMM plan.
//!
//! Request shape (all keys except the device designator optional; see
//! `docs/PROTOCOL.md` for the full reference):
//!
//! ```json
//! {
//!   "kind": "gemm",
//!   "reduced": 16,
//!   "precision": "double",
//!   "transpose": "nn",
//!   "min_threads_per_multiprocessor": 256,
//!   "min_fmas_per_load": 2
//! }
//! ```
//!
//! Devices are designated either by `"reduced": N` (the synthetic reduced
//! Kepler with an `N`-wide thread grid, sized for demos and tests) or by
//! `"device": "k40"` (case-insensitive substring match against
//! [`DeviceProps::known_devices`]).

use std::sync::Arc;

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_cuda::DeviceProps;
use beast_engine::checkpoint::JsonValue;
use beast_engine::service::{ResolvedSpace, SpaceResolver};
use beast_gpu_sim::{Precision, Transpose};

use crate::space::{build_gemm_space, GemmSpaceParams};

/// The GEMM resolver as a [`SpaceResolver`] ready to hand to
/// [`beast_engine::service::SweepService::start`].
pub fn gemm_resolver() -> SpaceResolver {
    Arc::new(resolve_gemm_space)
}

/// Resolve one `"space"` JSON object into a lowered GEMM plan.
///
/// Errors are short human-readable diagnostics; the service forwards them
/// verbatim as HTTP 400 bodies.
pub fn resolve_gemm_space(doc: &JsonValue) -> Result<ResolvedSpace, String> {
    if let Some(kind) = doc.get("kind").and_then(JsonValue::as_str) {
        if kind != "gemm" {
            return Err(format!("unknown space kind `{kind}` (this server builds `gemm`)"));
        }
    }

    let (device, device_desc) = match (
        doc.get("reduced").and_then(JsonValue::as_i64),
        doc.get("device").and_then(JsonValue::as_str),
    ) {
        (Some(_), Some(_)) => {
            return Err("give either `reduced` or `device`, not both".to_string());
        }
        (Some(dim), None) => {
            if dim < 1 {
                return Err(format!("`reduced` must be positive, got {dim}"));
            }
            (DeviceProps::reduced(dim), format!("reduced({dim})"))
        }
        (None, Some(name)) => match DeviceProps::by_name(name) {
            Some(d) => {
                let desc = d.name.to_string();
                (d, desc)
            }
            None => {
                let known: Vec<&str> =
                    DeviceProps::known_devices().iter().map(|d| d.name).collect();
                return Err(format!(
                    "unknown device `{name}` (known: {})",
                    known.join(", ")
                ));
            }
        },
        (None, None) => {
            return Err("space needs a device: `\"reduced\": N` or `\"device\": \"name\"`"
                .to_string());
        }
    };

    let precision = match doc.get("precision") {
        None => Precision::Double,
        Some(v) => {
            let s = v.as_str().ok_or("`precision` must be a string")?;
            parse_precision(s)?
        }
    };
    let transpose = match doc.get("transpose") {
        None => Transpose::default(),
        Some(v) => {
            let s = v.as_str().ok_or("`transpose` must be a string")?;
            parse_transpose(s)?
        }
    };

    let defaults = GemmSpaceParams::paper_default();
    let min_threads = opt_i64(doc, "min_threads_per_multiprocessor")?
        .unwrap_or(defaults.min_threads_per_multiprocessor);
    let min_fmas = opt_i64(doc, "min_fmas_per_load")?.unwrap_or(defaults.min_fmas_per_load);

    let params = GemmSpaceParams {
        device,
        precision,
        transpose,
        min_threads_per_multiprocessor: min_threads,
        min_fmas_per_load: min_fmas,
    };
    let space = build_gemm_space(&params).map_err(|e| format!("cannot build space: {e}"))?;
    let plan = Plan::new(&space, PlanOptions::default())
        .map_err(|e| format!("cannot plan space: {e}"))?;
    let lowered = LoweredPlan::new(&plan).map_err(|e| format!("cannot lower plan: {e}"))?;

    let case = format!(
        "{}gemm_{}",
        params.precision.blas_letter(),
        params.transpose.suffix()
    );
    Ok(ResolvedSpace {
        label: format!("{case} on {}", params.device.name),
        scope: format!("gemm|dev={device_desc}|case={case}|mt={min_threads}|mf={min_fmas}"),
        plan: lowered,
    })
}

fn opt_i64(doc: &JsonValue, key: &str) -> Result<Option<i64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be an integer")),
    }
}

fn parse_precision(s: &str) -> Result<Precision, String> {
    match s.to_ascii_lowercase().as_str() {
        "s" | "single" => Ok(Precision::Single),
        "d" | "double" => Ok(Precision::Double),
        "c" | "single-complex" => Ok(Precision::SingleComplex),
        "z" | "double-complex" => Ok(Precision::DoubleComplex),
        _ => Err(format!(
            "unknown precision `{s}` (want single, double, single-complex, double-complex)"
        )),
    }
}

fn parse_transpose(s: &str) -> Result<Transpose, String> {
    match s.to_ascii_lowercase().as_str() {
        "nn" => Ok(Transpose { a: false, b: false }),
        "nt" => Ok(Transpose { a: false, b: true }),
        "tn" => Ok(Transpose { a: true, b: false }),
        "tt" => Ok(Transpose { a: true, b: true }),
        _ => Err(format!("unknown transpose `{s}` (want nn, nt, tn, tt)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<ResolvedSpace, String> {
        resolve_gemm_space(&JsonValue::parse(body).unwrap())
    }

    #[test]
    fn reduced_request_resolves() {
        let r = parse("{\"kind\":\"gemm\",\"reduced\":16}").unwrap();
        assert_eq!(r.label, "dgemm_nn on Reduced synthetic Kepler");
        assert!(r.scope.contains("dev=reduced(16)"), "{}", r.scope);
        assert!(!r.plan.has_opaque_steps());
    }

    #[test]
    fn named_device_and_settings_resolve() {
        let r = parse(
            "{\"device\":\"k40\",\"precision\":\"single\",\"transpose\":\"NT\",\
             \"min_fmas_per_load\":3}",
        )
        .unwrap();
        assert_eq!(r.label, "sgemm_nt on Tesla K40c");
        assert!(r.scope.contains("case=sgemm_nt"), "{}", r.scope);
        assert!(r.scope.contains("mf=3"), "{}", r.scope);
    }

    #[test]
    fn different_reduced_dims_get_different_plans() {
        let a = parse("{\"reduced\":16}").unwrap();
        let b = parse("{\"reduced\":32}").unwrap();
        assert_ne!(
            a.plan.structural_hash(),
            b.plan.structural_hash(),
            "device limits fold into plan constants, so the structural hash must differ"
        );
    }

    #[test]
    fn bad_requests_are_diagnosed() {
        assert!(parse("{}").unwrap_err().contains("needs a device"));
        assert!(parse("{\"kind\":\"stencil\",\"reduced\":8}").unwrap_err().contains("stencil"));
        assert!(parse("{\"reduced\":8,\"device\":\"k40\"}").unwrap_err().contains("not both"));
        assert!(parse("{\"device\":\"nosuch\"}").unwrap_err().contains("known:"));
        assert!(parse("{\"reduced\":8,\"precision\":\"half\"}").unwrap_err().contains("half"));
        assert!(parse("{\"reduced\":8,\"transpose\":\"xy\"}").unwrap_err().contains("xy"));
    }
}
