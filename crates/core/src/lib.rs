//! # beast-core
//!
//! Declarative search-space generation and pruning for autotuners — a Rust
//! reproduction of the BEAST language from *"Search Space Generation and
//! Pruning System for Autotuners"* (Luszczek et al., IPDPSW 2016).
//!
//! A search space is described declaratively as
//!
//! * **iterators** — the tunable dimensions; expression ranges, value lists,
//!   deferred functions of other iterators, or stateful generator closures
//!   (Section V of the paper);
//! * **derived variables** — named intermediate quantities (Fig. 12);
//! * **constraints** — hard / soft / correctness predicates that prune the
//!   space, where `true` means *reject* (Section VI, Figs. 13–15).
//!
//! Dependencies between definitions are extracted automatically (for
//! expression forms) or declared (for deferred forms), producing a DAG whose
//! level sets order the generated loop nest (Section X). Constraints and
//! derived variables are hoisted to the shallowest loop at which their inputs
//! are bound, so one failed check prunes an entire subtree.
//!
//! ## Quick example
//!
//! ```
//! use beast_core::prelude::*;
//!
//! let space = Space::builder("example")
//!     .constant("max_threads", 1024)
//!     .range("dim_m", 1, 33)
//!     .range("dim_n", 1, 33)
//!     .derived("threads", var("dim_m") * var("dim_n"))
//!     .constraint(
//!         "over_max_threads",
//!         ConstraintClass::Hard,
//!         var("threads").gt(var("max_threads")),
//!     )
//!     .build()
//!     .unwrap();
//!
//! let plan = Plan::new(&space, PlanOptions::default()).unwrap();
//! assert_eq!(plan.loop_iters().len(), 2);
//! ```
//!
//! Evaluation engines live in the `beast-engine` crate; source-code
//! generation (the paper's "translation to standard C") in `beast-codegen`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod constraint;
pub mod dag;
pub mod derived;
pub mod error;
pub mod expr;
pub mod hash;
pub mod interval;
pub mod ir;
pub mod iterator;
mod macros;
pub mod plan;
pub mod schedule;
pub mod space;
pub mod value;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::analyze::{Congruence, Diagnostic, LintGate, LintReport, LintSummary, Severity};
    pub use crate::constraint::{ConstraintClass, ConstraintKind};
    pub use crate::dag::{Dag, NodeKind};
    pub use crate::derived::DerivedKind;
    pub use crate::error::{EvalError, SpaceError};
    pub use crate::expr::{lit, max2, min2, ternary, var, Bindings, Expr, VarRef, E};
    pub use crate::hash::Fnv1a;
    pub use crate::interval::{interval_of, Interval, IntervalOutcome, IvProg};
    pub use crate::ir::{IntExpr, LoweredPlan};
    pub use crate::iterator::{build as iter_build, IterKind, Realized};
    pub use crate::plan::{LoopOrder, Plan, PlanOptions, Step};
    pub use crate::schedule::ScheduleMode;
    pub use crate::space::{Space, SpaceBuilder};
    pub use crate::value::Value;
}
