//! Static interval (bounds) analysis over the lowered integer IR.
//!
//! The paper's hoisted constraints prune *point by point*: even when a
//! constraint's verdict is already decided for every value a loop can take,
//! the engine still enumerates the loop and re-evaluates the check at each
//! point. Interval analysis lifts the same expressions from points to
//! *domains*: given a conservative `[lo, hi]` range per slot, it computes a
//! range that is guaranteed to contain every value the expression can
//! evaluate to (constraint-propagation in the sense of Willemsen et al.,
//! "Efficient Construction of Large Search Spaces for Auto-Tuning"). The
//! compiled engine uses the verdicts for *block pruning*: a constraint whose
//! interval excludes 0 rejects the whole subtree; one whose interval is
//! exactly `[0, 0]` can never reject and its per-point check is elided.
//!
//! Soundness contract: for every slot assignment consistent with the
//! environment, if [`IntExpr::eval`] returns `Ok(v)` then `v` lies inside
//! the computed interval; and if the analysis reports the expression
//! *clean*, evaluation cannot return an error (division by zero) or panic
//! (debug-mode overflow in the `div_ceil`/`round_up` builtins). Wrapping
//! arithmetic is handled by widening to [`Interval::TOP`] whenever a bound
//! computation could leave the `i64` range; `/`, `%`, `min`, `max` and
//! opaque bodies are approximated conservatively, never exactly wrongly.

use crate::expr::Builtin;
use crate::ir::{IntBinOp, IntExpr};

/// An inclusive integer interval `[lo, hi]`.
///
/// The analysis never produces an empty interval: expressions always
/// evaluate to *some* value, so `lo <= hi` is an invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the expression can take.
    pub lo: i64,
    /// Largest value the expression can take.
    pub hi: i64,
}

/// Result of analyzing one expression: its value interval plus whether
/// evaluation is guaranteed not to fail for any point in the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalOutcome {
    /// Conservative bounds on the expression's value.
    pub iv: Interval,
    /// True when evaluation can neither return an error (division by zero)
    /// nor panic (builtin intermediate overflow) for any consistent point.
    pub clean: bool,
    /// True when some arithmetic step *provably* could leave the `i64`
    /// range for a point in the environment, so the runtime value wraps and
    /// the interval had to widen to [`Interval::TOP`]. Distinguishes
    /// "proven wide" from merely "unknown" (e.g. a TOP slot or a
    /// conservative division bound, which stay `widened: false`): the
    /// analyzer reports widened-but-clean expressions as overflow risks,
    /// and the congruence domain must drop residue facts exactly here —
    /// modular reasoning is only valid while no wrap occurs.
    pub widened: bool,
}

impl IntervalOutcome {
    pub(crate) fn new(iv: Interval, clean: bool) -> IntervalOutcome {
        IntervalOutcome { iv, clean, widened: false }
    }

    fn top(clean: bool) -> IntervalOutcome {
        IntervalOutcome { iv: Interval::TOP, clean, widened: false }
    }

    /// OR `w` into the widened flag (builder-style, used by the transfer
    /// functions to propagate operand wraps and record new widening sites).
    fn widen_if(self, w: bool) -> IntervalOutcome {
        IntervalOutcome { widened: self.widened || w, ..self }
    }
}

impl Interval {
    /// The whole `i64` range: the "don't know" element.
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The boolean range `[0, 1]`.
    pub const BOOL: Interval = Interval { lo: 0, hi: 1 };

    /// An interval holding exactly one value.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from unordered endpoints.
    pub fn new(a: i64, b: i64) -> Interval {
        Interval { lo: a.min(b), hi: a.max(b) }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Is this interval a single point?
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Smallest interval containing both operands.
    pub fn hull(&self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Largest absolute value in the interval (as `u64`, so `i64::MIN` is
    /// representable).
    fn max_abs(&self) -> u64 {
        self.lo.unsigned_abs().max(self.hi.unsigned_abs())
    }

    /// Clamp an `i128` pair down to an `i64` interval; `None` when the exact
    /// result range leaves `i64` (wrapping could then land anywhere).
    fn from_i128(lo: i128, hi: i128) -> Option<Interval> {
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            None
        } else {
            Some(Interval { lo: lo as i64, hi: hi as i64 })
        }
    }
}

/// Truth-value classification of an interval under `!= 0` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Truth {
    /// `0 ∉ [lo, hi]`: every value is truthy.
    AlwaysTrue,
    /// `[lo, hi] == [0, 0]`: every value is falsy.
    AlwaysFalse,
    /// Contains zero and at least one nonzero value.
    Unknown,
}

fn truth(iv: Interval) -> Truth {
    if !iv.contains(0) {
        Truth::AlwaysTrue
    } else if iv.lo == 0 && iv.hi == 0 {
        Truth::AlwaysFalse
    } else {
        Truth::Unknown
    }
}

/// Compute a sound interval for `e` given per-slot intervals `env`
/// (indexed by slot id, like the slot array passed to [`IntExpr::eval`]).
///
/// This is the recursive reference evaluator; the engine's hot path uses
/// the flattened [`IvProg`] form, which produces identical outcomes.
pub fn interval_of(e: &IntExpr, env: &[Interval]) -> IntervalOutcome {
    match e {
        IntExpr::Const(c) => IntervalOutcome::new(Interval::point(*c), true),
        IntExpr::Slot(s) => IntervalOutcome::new(env[*s as usize], true),
        IntExpr::Neg(a) => iv_neg(interval_of(a, env)),
        IntExpr::Not(a) => iv_not(interval_of(a, env)),
        IntExpr::Abs(a) => iv_abs(interval_of(a, env)),
        IntExpr::Ternary(c, t, f) => {
            iv_ternary(interval_of(c, env), interval_of(t, env), interval_of(f, env))
        }
        IntExpr::Bin(op, a, b) => iv_bin(*op, interval_of(a, env), interval_of(b, env)),
        IntExpr::Call2(bi, a, b) => iv_call2(*bi, interval_of(a, env), interval_of(b, env)),
    }
}

/// Interval negation.
pub fn iv_neg(a: IntervalOutcome) -> IntervalOutcome {
    let lo = -(a.iv.hi as i128);
    let hi = -(a.iv.lo as i128);
    match Interval::from_i128(lo, hi) {
        Some(iv) => IntervalOutcome::new(iv, a.clean).widen_if(a.widened),
        None => IntervalOutcome::top(a.clean).widen_if(true),
    }
}

/// Interval logical negation under `!= 0` truth semantics.
pub fn iv_not(a: IntervalOutcome) -> IntervalOutcome {
    let iv = match truth(a.iv) {
        Truth::AlwaysTrue => Interval::point(0),
        Truth::AlwaysFalse => Interval::point(1),
        Truth::Unknown => Interval::BOOL,
    };
    IntervalOutcome::new(iv, a.clean).widen_if(a.widened)
}

/// Interval absolute value.
pub fn iv_abs(a: IntervalOutcome) -> IntervalOutcome {
    // `wrapping_abs(i64::MIN)` stays negative: widen to TOP.
    if a.iv.lo == i64::MIN {
        return IntervalOutcome::top(a.clean).widen_if(true);
    }
    let iv = if a.iv.lo >= 0 {
        a.iv
    } else if a.iv.hi <= 0 {
        Interval { lo: -a.iv.hi, hi: -a.iv.lo }
    } else {
        Interval { lo: 0, hi: (-a.iv.lo).max(a.iv.hi) }
    };
    IntervalOutcome::new(iv, a.clean).widen_if(a.widened)
}

/// Interval ternary. All three operand outcomes are taken *strictly* (the
/// caller evaluates every branch), but the combine reproduces the lazy
/// evaluator's cleanliness exactly: a decided condition discards the dead
/// branch's cleanliness, as point evaluation never runs it.
pub fn iv_ternary(c: IntervalOutcome, t: IntervalOutcome, f: IntervalOutcome) -> IntervalOutcome {
    match truth(c.iv) {
        Truth::AlwaysTrue => {
            IntervalOutcome::new(t.iv, c.clean && t.clean).widen_if(c.widened || t.widened)
        }
        Truth::AlwaysFalse => {
            IntervalOutcome::new(f.iv, c.clean && f.clean).widen_if(c.widened || f.widened)
        }
        Truth::Unknown => IntervalOutcome::new(t.iv.hull(f.iv), c.clean && t.clean && f.clean)
            .widen_if(c.widened || t.widened || f.widened),
    }
}

/// Interval binary operator. Strict in both operands; for the
/// short-circuit operators the combine mirrors lazy point evaluation: when
/// the left operand decides the result, the right operand's cleanliness is
/// discarded (it would never run), so outcomes match [`interval_of`] and
/// the recursive walk bit for bit.
pub fn iv_bin(op: IntBinOp, a: IntervalOutcome, b: IntervalOutcome) -> IntervalOutcome {
    if matches!(op, IntBinOp::And | IntBinOp::Or) {
        let ta = truth(a.iv);
        return match (op, ta) {
            (IntBinOp::And, Truth::AlwaysFalse) => {
                IntervalOutcome::new(Interval::point(0), a.clean).widen_if(a.widened)
            }
            (IntBinOp::Or, Truth::AlwaysTrue) => {
                IntervalOutcome::new(Interval::point(1), a.clean).widen_if(a.widened)
            }
            _ => {
                let tb = truth(b.iv);
                let iv = match (op, ta, tb) {
                    (IntBinOp::And, Truth::AlwaysTrue, Truth::AlwaysTrue) => Interval::point(1),
                    (IntBinOp::And, _, Truth::AlwaysFalse) => Interval::point(0),
                    (IntBinOp::Or, Truth::AlwaysFalse, Truth::AlwaysTrue) => Interval::point(1),
                    (IntBinOp::Or, Truth::AlwaysFalse, Truth::AlwaysFalse) => Interval::point(0),
                    _ => Interval::BOOL,
                };
                // When `a` is undecided, `b` may or may not be evaluated; its
                // failures can only be ruled out if `b` itself is clean.
                IntervalOutcome::new(iv, a.clean && b.clean).widen_if(a.widened || b.widened)
            }
        };
    }

    let clean = a.clean && b.clean;
    let wide = a.widened || b.widened;
    let (al, ah) = (a.iv.lo as i128, a.iv.hi as i128);
    let (bl, bh) = (b.iv.lo as i128, b.iv.hi as i128);
    match op {
        IntBinOp::Add => match Interval::from_i128(al + bl, ah + bh) {
            Some(iv) => IntervalOutcome::new(iv, clean).widen_if(wide),
            None => IntervalOutcome::top(clean).widen_if(true),
        },
        IntBinOp::Sub => match Interval::from_i128(al - bh, ah - bl) {
            Some(iv) => IntervalOutcome::new(iv, clean).widen_if(wide),
            None => IntervalOutcome::top(clean).widen_if(true),
        },
        IntBinOp::Mul => {
            let products = [al * bl, al * bh, ah * bl, ah * bh];
            let lo = products.iter().copied().min().expect("nonempty");
            let hi = products.iter().copied().max().expect("nonempty");
            match Interval::from_i128(lo, hi) {
                Some(iv) => IntervalOutcome::new(iv, clean).widen_if(wide),
                None => IntervalOutcome::top(clean).widen_if(true),
            }
        }
        IntBinOp::Div => {
            if b.iv.contains(0) {
                // Division by zero is reachable: no verdict, may fail.
                return IntervalOutcome::top(false).widen_if(wide);
            }
            if b.iv.is_point() {
                // Trunc division is monotone in the dividend for a fixed
                // divisor, so the endpoints bound it (checked in i128:
                // `i64::MIN / -1` wraps).
                let d = b.iv.lo as i128;
                let c0 = trunc_div(al, d);
                let c1 = trunc_div(ah, d);
                match Interval::from_i128(c0.min(c1), c0.max(c1)) {
                    Some(iv) => IntervalOutcome::new(iv, clean).widen_if(wide),
                    None => IntervalOutcome::top(clean).widen_if(true),
                }
            } else if a.iv.lo == i64::MIN && b.iv.contains(-1) {
                // `i64::MIN / -1` wraps back to `i64::MIN`, outside the
                // symmetric bound below: proven possibly-wide.
                IntervalOutcome::top(clean).widen_if(true)
            } else {
                // |a / b| <= |a| for |b| >= 1: conservative symmetric bound.
                let m = a.iv.max_abs().min(i64::MAX as u64) as i64;
                IntervalOutcome::new(Interval { lo: -m, hi: m }, clean).widen_if(wide)
            }
        }
        IntBinOp::FloorDiv => {
            if b.iv.contains(0) {
                return IntervalOutcome::top(false).widen_if(wide);
            }
            if a.iv.lo == i64::MIN && b.iv.contains(-1) {
                // floor(i64::MIN / -1) = 2^63 leaves the i64 range.
                return IntervalOutcome::top(clean).widen_if(true);
            }
            // |floor(a / b)| <= |a| + 1 for |b| >= 1.
            let m = (a.iv.max_abs().min(i64::MAX as u64 - 1) + 1) as i64;
            IntervalOutcome::new(Interval { lo: -m, hi: m }, clean).widen_if(wide)
        }
        IntBinOp::Rem => {
            if b.iv.contains(0) {
                return IntervalOutcome::top(false).widen_if(wide);
            }
            // C remainder: |a % b| <= min(|a|, |b| - 1), sign follows `a`.
            let m = a.iv.max_abs().min(b.iv.max_abs() - 1).min(i64::MAX as u64) as i64;
            let lo = if a.iv.lo >= 0 { 0 } else { -m };
            let hi = if a.iv.hi <= 0 { 0 } else { m };
            IntervalOutcome::new(Interval { lo, hi }, clean).widen_if(wide)
        }
        IntBinOp::Lt => IntervalOutcome::new(cmp_interval(ah < bl, al >= bh), clean).widen_if(wide),
        IntBinOp::Le => IntervalOutcome::new(cmp_interval(ah <= bl, al > bh), clean).widen_if(wide),
        IntBinOp::Gt => IntervalOutcome::new(cmp_interval(al > bh, ah <= bl), clean).widen_if(wide),
        IntBinOp::Ge => IntervalOutcome::new(cmp_interval(al >= bh, ah < bl), clean).widen_if(wide),
        IntBinOp::Eq => {
            let iv = if a.iv.is_point() && b.iv.is_point() && a.iv.lo == b.iv.lo {
                Interval::point(1)
            } else if a.iv.hi < b.iv.lo || b.iv.hi < a.iv.lo {
                Interval::point(0)
            } else {
                Interval::BOOL
            };
            IntervalOutcome::new(iv, clean).widen_if(wide)
        }
        IntBinOp::Ne => {
            let iv = if a.iv.is_point() && b.iv.is_point() && a.iv.lo == b.iv.lo {
                Interval::point(0)
            } else if a.iv.hi < b.iv.lo || b.iv.hi < a.iv.lo {
                Interval::point(1)
            } else {
                Interval::BOOL
            };
            IntervalOutcome::new(iv, clean).widen_if(wide)
        }
        IntBinOp::And | IntBinOp::Or => unreachable!("handled above"),
    }
}

/// `[1,1]` when provably true, `[0,0]` when provably false, else `[0,1]`.
fn cmp_interval(always: bool, never: bool) -> Interval {
    if always {
        Interval::point(1)
    } else if never {
        Interval::point(0)
    } else {
        Interval::BOOL
    }
}

/// Trunc-toward-zero division in `i128` (both operands come from `i64`, so
/// this never overflows).
fn trunc_div(a: i128, b: i128) -> i128 {
    a / b
}

/// Interval builtin call (strict; builtins have no short-circuit forms).
pub fn iv_call2(bi: Builtin, a: IntervalOutcome, b: IntervalOutcome) -> IntervalOutcome {
    let clean = a.clean && b.clean;
    let wide = a.widened || b.widened;
    match bi {
        // min/max map endpoints monotonically; this is exact, which is
        // "conservative" in the only direction that matters (never narrower
        // than the truth).
        Builtin::Min => IntervalOutcome::new(
            Interval { lo: a.iv.lo.min(b.iv.lo), hi: a.iv.hi.min(b.iv.hi) },
            clean,
        )
        .widen_if(wide),
        Builtin::Max => IntervalOutcome::new(
            Interval { lo: a.iv.lo.max(b.iv.lo), hi: a.iv.hi.max(b.iv.hi) },
            clean,
        )
        .widen_if(wide),
        Builtin::DivCeil | Builtin::RoundUp => {
            if b.iv.contains(0) {
                return IntervalOutcome::top(false).widen_if(wide);
            }
            // Evaluation computes `a + b - 1` with plain (panicking in
            // debug) arithmetic; prove it stays in range or give up.
            let pre_lo = a.iv.lo as i128 + b.iv.lo as i128 - 1;
            let pre_hi = a.iv.hi as i128 + b.iv.hi as i128 - 1;
            if Interval::from_i128(pre_lo.min(pre_hi), pre_lo.max(pre_hi)).is_none() {
                return IntervalOutcome::top(false).widen_if(true);
            }
            match bi {
                Builtin::DivCeil => {
                    // |ceil(a / b)| <= |a| + 1 for |b| >= 1.
                    let m = (a.iv.max_abs().min(i64::MAX as u64 - 1) + 1) as i64;
                    IntervalOutcome::new(Interval { lo: -m, hi: m }, clean).widen_if(wide)
                }
                _ => {
                    // round_up(a, b) = ceil(a / b) * b: |result| <= |a| + |b|.
                    let m = a.iv.max_abs() as u128 + b.iv.max_abs() as u128;
                    match Interval::from_i128(-(m as i128), m as i128) {
                        Some(iv) => IntervalOutcome::new(iv, clean).widen_if(wide),
                        None => IntervalOutcome::top(clean).widen_if(true),
                    }
                }
            }
        }
        Builtin::Gcd => {
            // gcd(i64::MIN, 0) is 2^63, which wraps negative on the cast
            // back to i64; rule the pathological operand out, then
            // 0 <= gcd(a, b) <= max(|a|, |b|).
            if a.iv.lo == i64::MIN || b.iv.lo == i64::MIN {
                return IntervalOutcome::top(clean).widen_if(true);
            }
            let m = a.iv.max_abs().max(b.iv.max_abs()) as i64;
            IntervalOutcome::new(Interval { lo: 0, hi: m }, clean).widen_if(wide)
        }
        Builtin::Abs => IntervalOutcome::top(clean).widen_if(wide),
    }
}

/// Sound hull of the values a `range(start, stop, step)` iterator can
/// yield, given intervals for its (already slot-resolved) bounds. Python
/// range semantics: ascending for positive step (`start <= x < stop`),
/// descending for negative (`stop < x <= start`), empty for zero. The hull
/// of both orientations is simply the hull of the two bound intervals.
pub fn range_value_hull(start: Interval, stop: Interval) -> Interval {
    start.hull(stop)
}

/// One instruction of a flattened interval program (see [`IvProg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvOp {
    /// Push a point interval.
    Const(i64),
    /// Push the slot's environment interval.
    Slot(u32),
    /// Pop one outcome, push its arithmetic negation.
    Neg,
    /// Pop one outcome, push its logical negation (`!= 0` semantics).
    Not,
    /// Pop one outcome, push its absolute value.
    Abs,
    /// Pop right then left, push the binary transfer result.
    Bin(IntBinOp),
    /// Pop right then left, push the builtin transfer result.
    Call2(Builtin),
    /// Pop else, then, condition; push the ternary transfer result.
    Ternary,
}

/// A flattened postfix compilation of an [`IntExpr`] for interval
/// evaluation: one linear instruction array walked with an explicit operand
/// stack, no tree recursion and no pointer chasing on the hot path.
///
/// Unlike the point-wise postfix programs, there are no jumps: interval
/// analysis must look at *both* branches of undecided conditionals anyway,
/// so every operator is strict and the short-circuit/branch semantics live
/// entirely in the combine functions ([`iv_bin`], [`iv_ternary`]), which
/// discard a dead operand's cleanliness exactly like the lazy point
/// evaluator. Outcomes are identical to [`interval_of`] by construction
/// (same transfer functions, same traversal order).
#[derive(Debug, Clone)]
pub struct IvProg {
    ops: Vec<IvOp>,
}

impl IvProg {
    /// Flatten `e` post-order into a linear program.
    pub fn compile(e: &IntExpr) -> IvProg {
        fn go(e: &IntExpr, ops: &mut Vec<IvOp>) {
            match e {
                IntExpr::Const(c) => ops.push(IvOp::Const(*c)),
                IntExpr::Slot(s) => ops.push(IvOp::Slot(*s)),
                IntExpr::Neg(a) => {
                    go(a, ops);
                    ops.push(IvOp::Neg);
                }
                IntExpr::Not(a) => {
                    go(a, ops);
                    ops.push(IvOp::Not);
                }
                IntExpr::Abs(a) => {
                    go(a, ops);
                    ops.push(IvOp::Abs);
                }
                IntExpr::Bin(op, a, b) => {
                    go(a, ops);
                    go(b, ops);
                    ops.push(IvOp::Bin(*op));
                }
                IntExpr::Call2(bi, a, b) => {
                    go(a, ops);
                    go(b, ops);
                    ops.push(IvOp::Call2(*bi));
                }
                IntExpr::Ternary(c, t, f) => {
                    go(c, ops);
                    go(t, ops);
                    go(f, ops);
                    ops.push(IvOp::Ternary);
                }
            }
        }
        let mut ops = Vec::new();
        go(e, &mut ops);
        IvProg { ops }
    }

    /// The flattened instruction sequence, for analyses that walk the same
    /// program with a richer abstract domain (see `analyze::congruence`).
    pub fn ops(&self) -> &[IvOp] {
        &self.ops
    }

    /// The slots the program reads.
    pub fn read_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.ops.iter().filter_map(|op| match op {
            IvOp::Slot(s) => Some(*s),
            _ => None,
        })
    }

    /// Evaluate against per-slot intervals. `stack` is caller-provided
    /// scratch (cleared here) so repeated evaluation never reallocates.
    pub fn eval(&self, env: &[Interval], stack: &mut Vec<IntervalOutcome>) -> IntervalOutcome {
        stack.clear();
        for op in &self.ops {
            let out = match op {
                IvOp::Const(c) => IntervalOutcome::new(Interval::point(*c), true),
                IvOp::Slot(s) => IntervalOutcome::new(env[*s as usize], true),
                IvOp::Neg => iv_neg(stack.pop().expect("iv stack")),
                IvOp::Not => iv_not(stack.pop().expect("iv stack")),
                IvOp::Abs => iv_abs(stack.pop().expect("iv stack")),
                IvOp::Bin(o) => {
                    let b = stack.pop().expect("iv stack");
                    let a = stack.pop().expect("iv stack");
                    iv_bin(*o, a, b)
                }
                IvOp::Call2(bi) => {
                    let b = stack.pop().expect("iv stack");
                    let a = stack.pop().expect("iv stack");
                    iv_call2(*bi, a, b)
                }
                IvOp::Ternary => {
                    let f = stack.pop().expect("iv stack");
                    let t = stack.pop().expect("iv stack");
                    let c = stack.pop().expect("iv stack");
                    iv_ternary(c, t, f)
                }
            };
            stack.push(out);
        }
        stack.pop().expect("nonempty program")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IntExpr as E;

    fn slot(i: u32) -> E {
        E::Slot(i)
    }

    fn bin(op: IntBinOp, a: E, b: E) -> E {
        E::Bin(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn add_mul_exact_on_small_ranges() {
        let env = [Interval { lo: 1, hi: 4 }, Interval { lo: -2, hi: 3 }];
        let e = bin(IntBinOp::Add, slot(0), slot(1));
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval { lo: -1, hi: 7 });
        assert!(out.clean);

        let e = bin(IntBinOp::Mul, slot(0), slot(1));
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval { lo: -8, hi: 12 });
        assert!(out.clean);
    }

    #[test]
    fn overflow_widens_to_top() {
        let env = [Interval { lo: i64::MAX - 1, hi: i64::MAX }];
        let e = bin(IntBinOp::Add, slot(0), E::Const(10));
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval::TOP);
        assert!(out.clean, "wrapping add is not an eval failure");
        assert!(out.widened, "a proven wrap must set the widened flag");
    }

    #[test]
    fn widened_distinguishes_wraps_from_unknowns() {
        // A TOP slot is unknown, not widened.
        let env = [Interval::TOP, Interval { lo: 0, hi: 5 }];
        let out = interval_of(&slot(0), &env);
        assert!(!out.widened);

        // Division by a maybe-zero divisor is unclean but not widened.
        let out = interval_of(&bin(IntBinOp::Div, E::Const(10), slot(1)), &env);
        assert!(!out.clean);
        assert!(!out.widened);

        // A wrap propagates through later exact arithmetic.
        let env = [Interval { lo: 1, hi: i64::MAX }];
        let e = bin(
            IntBinOp::Sub,
            bin(IntBinOp::Mul, slot(0), slot(0)),
            E::Const(1),
        );
        let out = interval_of(&e, &env);
        assert!(out.widened, "wrap in the product must survive the subtraction");

        // A decided short-circuit discards the dead side's widening, just
        // like its cleanliness.
        let env = [Interval::point(0), Interval { lo: 1, hi: i64::MAX }];
        let e = bin(
            IntBinOp::And,
            slot(0),
            bin(IntBinOp::Mul, slot(1), slot(1)),
        );
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval::point(0));
        assert!(!out.widened, "dead RHS never evaluates, so it never wraps");
    }

    #[test]
    fn division_by_possible_zero_is_unclean() {
        let env = [Interval { lo: 0, hi: 5 }];
        let e = bin(IntBinOp::Div, E::Const(10), slot(0));
        let out = interval_of(&e, &env);
        assert!(!out.clean);

        let env = [Interval { lo: 1, hi: 5 }];
        let out = interval_of(&e, &env);
        assert!(out.clean);
        assert!(out.iv.contains(2) && out.iv.contains(10));
    }

    #[test]
    fn comparisons_decide_on_disjoint_ranges() {
        let env = [Interval { lo: 1, hi: 4 }, Interval { lo: 10, hi: 20 }];
        let lt = interval_of(&bin(IntBinOp::Lt, slot(0), slot(1)), &env);
        assert_eq!(lt.iv, Interval::point(1));
        let gt = interval_of(&bin(IntBinOp::Gt, slot(0), slot(1)), &env);
        assert_eq!(gt.iv, Interval::point(0));
        let eq = interval_of(&bin(IntBinOp::Eq, slot(0), slot(1)), &env);
        assert_eq!(eq.iv, Interval::point(0));
    }

    #[test]
    fn short_circuit_and_skips_unclean_rhs() {
        // a == 0 short-circuits: the unclean RHS never runs.
        let env = [Interval::point(0), Interval { lo: 0, hi: 3 }];
        let e = bin(
            IntBinOp::And,
            slot(0),
            bin(IntBinOp::Div, E::Const(1), slot(1)),
        );
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval::point(0));
        assert!(out.clean);
    }

    #[test]
    fn rem_bounds_follow_divisor_magnitude() {
        let env = [Interval { lo: 0, hi: 1000 }, Interval { lo: 8, hi: 8 }];
        let e = bin(IntBinOp::Rem, slot(0), slot(1));
        let out = interval_of(&e, &env);
        assert!(out.clean);
        assert_eq!(out.iv, Interval { lo: 0, hi: 7 });
    }

    #[test]
    fn min_max_are_exact() {
        let env = [Interval { lo: 2, hi: 9 }, Interval { lo: 5, hi: 6 }];
        let e = E::Call2(Builtin::Min, Box::new(slot(0)), Box::new(slot(1)));
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval { lo: 2, hi: 6 });
        let e = E::Call2(Builtin::Max, Box::new(slot(0)), Box::new(slot(1)));
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval { lo: 5, hi: 9 });
    }

    #[test]
    fn flattened_program_matches_recursive_walk() {
        let env = [
            Interval { lo: 0, hi: 7 },
            Interval { lo: -3, hi: 3 },
            Interval::point(4),
        ];
        let exprs = [
            bin(IntBinOp::Add, slot(0), bin(IntBinOp::Mul, slot(1), slot(2))),
            bin(IntBinOp::Div, E::Const(100), slot(1)), // possible /0: unclean
            bin(
                IntBinOp::And,
                bin(IntBinOp::Lt, slot(0), E::Const(0)), // always false: short-circuit
                bin(IntBinOp::Div, E::Const(1), slot(1)),
            ),
            E::Ternary(
                Box::new(bin(IntBinOp::Ge, slot(2), E::Const(4))), // always true
                Box::new(slot(0)),
                Box::new(bin(IntBinOp::Rem, slot(0), slot(1))),
            ),
            E::Call2(
                Builtin::DivCeil,
                Box::new(E::Abs(Box::new(slot(1)))),
                Box::new(slot(2)),
            ),
        ];
        let mut stack = Vec::new();
        for e in &exprs {
            let walk = interval_of(e, &env);
            let flat = IvProg::compile(e).eval(&env, &mut stack);
            assert_eq!(walk, flat, "flat/walk divergence on {e:?}");
        }
    }

    #[test]
    fn ternary_hulls_unknown_branches() {
        let env = [Interval { lo: 0, hi: 1 }];
        let e = E::Ternary(
            Box::new(slot(0)),
            Box::new(E::Const(100)),
            Box::new(E::Const(-3)),
        );
        let out = interval_of(&e, &env);
        assert_eq!(out.iv, Interval { lo: -3, hi: 100 });
    }
}
