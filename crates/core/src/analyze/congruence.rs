//! The congruence (modular-arithmetic) abstract domain `x ≡ r (mod m)` and
//! its reduced product with the interval domain of [`crate::interval`].
//!
//! Intervals answer *magnitude* questions; they are blind to divisibility.
//! The GEMM space's correctness constraints are almost all divisibility
//! facts (`blk_m % (dim_m_a * dim_vec) == 0`, `(dim_m_a * dim_n_a) !=
//! threads_per_block`, …), and a stepped range like
//! `range(dim_m, 1025, dim_m)` carries an exact residue fact — every value
//! is `≡ 0 (mod dim_m)` — that the interval hull throws away. This domain
//! keeps it: an abstract value [`Congruence`] is either an exact point
//! (`m == 0`) or the arithmetic progression `{x : x ≡ r (mod m)}` with
//! `0 <= r < m`; `m == 1` is ⊤ (every integer).
//!
//! # Soundness under wrapping arithmetic
//!
//! The lowered IR evaluates with C semantics: `i64` wrapping add/sub/mul,
//! truncating division. Congruence transfer functions reason about the
//! *mathematical* value, which agrees with the wrapped value only while no
//! intermediate leaves the `i64` range. The interval analysis proves
//! exactly that: its [`IntervalOutcome::widened`] flag is set precisely
//! when a wrap is reachable. The reduced product therefore **drops the
//! congruence to ⊤ whenever the paired interval outcome is widened** — see
//! [`reduce`] — which makes every residue fact that survives a proof about
//! the runtime value. Point arithmetic (`m == 0`) instead mirrors the
//! evaluator's wrapping ops exactly, so points are always exact.

use crate::expr::Builtin;
use crate::interval::{
    iv_abs, iv_bin, iv_call2, iv_neg, iv_not, iv_ternary, Interval, IntervalOutcome, IvOp, IvProg,
};
use crate::ir::IntBinOp;

/// An element of the congruence domain: the set `{x : x ≡ r (mod m)}`.
///
/// Invariants: `m >= 0`; `m == 0` means the exact point `r` (any `i64`);
/// `m >= 1` means the full progression with `0 <= r < m`. `m == 1` is the
/// top element (all integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// The modulus (`0` for an exact point, `1` for ⊤).
    pub m: i64,
    /// The representative: the exact value when `m == 0`, else the residue
    /// in `[0, m)`.
    pub r: i64,
}

/// `gcd` over `i128` magnitudes (total: `gcd(0, 0) == 0`).
fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Build `(m, r mod m)` from `i128` parts, giving up (⊤) when the modulus
/// does not fit `i64`.
fn make(m: i128, r: i128) -> Congruence {
    debug_assert!(m >= 1);
    if m > i64::MAX as i128 {
        return Congruence::top();
    }
    Congruence { m: m as i64, r: r.rem_euclid(m) as i64 }
}

impl Congruence {
    /// The top element: every integer (`x ≡ 0 (mod 1)`).
    pub fn top() -> Congruence {
        Congruence { m: 1, r: 0 }
    }

    /// An exact point.
    pub fn point(v: i64) -> Congruence {
        Congruence { m: 0, r: v }
    }

    /// Is this the top element?
    pub fn is_top(&self) -> bool {
        self.m == 1
    }

    /// The exact value, when this is a point.
    pub fn as_point(&self) -> Option<i64> {
        (self.m == 0).then_some(self.r)
    }

    /// Does the progression contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        if self.m == 0 {
            v == self.r
        } else {
            (v as i128 - self.r as i128).rem_euclid(self.m as i128) == 0
        }
    }

    /// Every member is provably nonzero: a nonzero point, or a progression
    /// whose residue is nonzero (`0 < r < m` excludes all multiples of
    /// `m`, in particular 0).
    pub fn always_nonzero(&self) -> bool {
        self.r != 0
    }

    /// The content `gcd(m, |r|)`: every member is a multiple of it.
    fn content(&self) -> i128 {
        gcd_i128(self.m as i128, self.r as i128)
    }

    /// Least upper bound: the smallest progression containing both.
    pub fn join(self, other: Congruence) -> Congruence {
        let diff = self.r as i128 - other.r as i128;
        let g = gcd_i128(gcd_i128(self.m as i128, other.m as i128), diff);
        if g == 0 {
            // Both are the same point.
            self
        } else {
            make(g, self.r as i128)
        }
    }

    /// Can the two abstract values provably never be equal? True when the
    /// residues differ modulo `gcd` of the moduli (for points, modulo the
    /// other's modulus; for two points, plain disequality).
    pub fn never_equal(self, other: Congruence) -> bool {
        let g = gcd_i128(self.m as i128, other.m as i128);
        let diff = self.r as i128 - other.r as i128;
        if g == 0 {
            diff != 0
        } else {
            diff.rem_euclid(g) != 0
        }
    }
}

/// Abstract negation.
impl std::ops::Neg for Congruence {
    type Output = Congruence;

    fn neg(self) -> Congruence {
        if self.m == 0 {
            Congruence::point(self.r.wrapping_neg())
        } else {
            make(self.m as i128, -(self.r as i128))
        }
    }
}

/// Abstract addition.
impl std::ops::Add for Congruence {
    type Output = Congruence;

    fn add(self, other: Congruence) -> Congruence {
        let g = gcd_i128(self.m as i128, other.m as i128);
        if g == 0 {
            Congruence::point(self.r.wrapping_add(other.r))
        } else {
            make(g, self.r as i128 + other.r as i128)
        }
    }
}

/// Abstract subtraction.
impl std::ops::Sub for Congruence {
    type Output = Congruence;

    fn sub(self, other: Congruence) -> Congruence {
        let g = gcd_i128(self.m as i128, other.m as i128);
        if g == 0 {
            Congruence::point(self.r.wrapping_sub(other.r))
        } else {
            make(g, self.r as i128 - other.r as i128)
        }
    }
}

/// Abstract multiplication (Granger's transfer): `x·y ≡ r₁·r₂` modulo
/// `gcd(m₁m₂, m₁r₂, m₂r₁)`. A point times a progression keeps the
/// divisibility fact — `point(c) · ⊤ = (|c|, 0)` — which is the transfer
/// that lets stepped ranges prove `% == 0` constraints.
impl std::ops::Mul for Congruence {
    type Output = Congruence;

    fn mul(self, other: Congruence) -> Congruence {
        let (m1, r1) = (self.m as i128, self.r as i128);
        let (m2, r2) = (other.m as i128, other.r as i128);
        let g = gcd_i128(m1 * m2, gcd_i128(m1 * r2, m2 * r1));
        if g == 0 {
            Congruence::point(self.r.wrapping_mul(other.r))
        } else {
            make(g, r1 * r2)
        }
    }
}

/// Abstract truncating/floor division (exact transfer only): when the
/// divisor is a known point `d` that divides both the modulus and the
/// residue, every member divides exactly and `(m, r) / d = (m/|d|, r/d)`;
/// anything else is ⊤ (truncation breaks residues).
impl std::ops::Div for Congruence {
    type Output = Congruence;

    fn div(self, other: Congruence) -> Congruence {
        let Some(d) = other.as_point() else { return Congruence::top() };
        if d == 0 {
            // Runtime error; the interval side already reports unclean.
            return Congruence::top();
        }
        if self.m == 0 {
            return Congruence::point(self.r.wrapping_div(d));
        }
        let da = d.unsigned_abs();
        if da > i64::MAX as u64 {
            return Congruence::top();
        }
        let da = da as i64;
        if self.m % da == 0 && self.r % da == 0 {
            make((self.m / da) as i128, (self.r / d) as i128)
        } else {
            Congruence::top()
        }
    }
}

/// Abstract C remainder: from `x % d = x - (x/d)·d` and `content(d) | d`,
/// the result is congruent to `x` modulo `gcd(m₁, content(d))`.
impl std::ops::Rem for Congruence {
    type Output = Congruence;

    fn rem(self, other: Congruence) -> Congruence {
        if let (Some(x), Some(d)) = (self.as_point(), other.as_point()) {
            if d == 0 {
                return Congruence::top();
            }
            return Congruence::point(x.wrapping_rem(d));
        }
        let g = gcd_i128(self.m as i128, other.content());
        if g == 0 {
            // `self` is a point and the divisor has content 0, i.e. is the
            // point 0: runtime error.
            Congruence::top()
        } else {
            make(g, self.r as i128)
        }
    }
}

/// Congruence of a `range(start, .., step)` bind: with the step a multiple
/// of `content(step)` and the start `≡ r (mod m)`, every yielded value is
/// `≡ r (mod gcd(content(step), m))`. Exact for realized loops (point
/// start/step), still useful for abstract ones.
pub fn cg_of_bind(start: Congruence, step: Congruence) -> Congruence {
    let g = gcd_i128(step.content(), start.m as i128);
    if g == 0 {
        // Point start with a (degenerate) zero point step.
        start
    } else {
        make(g, start.r as i128)
    }
}

/// Congruence hull of an explicit value list (⊤ for an empty list — an
/// empty domain never binds).
pub fn cg_of_values(values: &[i64]) -> Congruence {
    let mut it = values.iter();
    let Some(&first) = it.next() else { return Congruence::top() };
    it.fold(Congruence::point(first), |acc, &v| acc.join(Congruence::point(v)))
}

/// The reduction of the interval×congruence product: an exact interval
/// point forces the congruence to that point, and a widened interval
/// (reachable `i64` wrap — modular reasoning invalid) forces ⊤. Never
/// touches the interval half, so interval verdicts are bit-identical with
/// the congruence domain on or off.
pub fn reduce(iv: &IntervalOutcome, cg: Congruence) -> Congruence {
    if iv.iv.is_point() {
        Congruence::point(iv.iv.lo)
    } else if iv.widened {
        Congruence::top()
    } else {
        cg
    }
}

/// Three-valued truth of a product value under `!= 0` semantics, combining
/// both halves: the interval decides by sign/zero exclusion, the
/// congruence by residue (`always_nonzero`) or exact zero.
fn truth(iv: &IntervalOutcome, cg: Congruence) -> Option<bool> {
    if !iv.iv.contains(0) || cg.always_nonzero() {
        Some(true)
    } else if iv.iv == Interval::point(0) || cg.as_point() == Some(0) {
        Some(false)
    } else {
        None
    }
}

/// One product-domain value: the interval outcome plus the congruence.
pub type Product = (IntervalOutcome, Congruence);

/// Evaluate a flattened interval program over the product domain.
///
/// The interval half runs the exact transfer functions of
/// [`crate::interval`] — outcomes are bit-identical to [`IvProg::eval`] —
/// while the congruence half runs in lockstep and is reduced against the
/// interval after every instruction. `stack` is caller-provided scratch.
pub fn eval_product(
    prog: &IvProg,
    iv_env: &[Interval],
    cg_env: &[Congruence],
    stack: &mut Vec<Product>,
) -> Product {
    stack.clear();
    for op in prog.ops() {
        let out: Product = match op {
            IvOp::Const(c) => (
                IntervalOutcome::new(Interval::point(*c), true),
                Congruence::point(*c),
            ),
            IvOp::Slot(s) => (
                IntervalOutcome::new(iv_env[*s as usize], true),
                cg_env[*s as usize],
            ),
            IvOp::Neg => {
                let (a_iv, a_cg) = stack.pop().expect("cg stack");
                (iv_neg(a_iv), -a_cg)
            }
            IvOp::Not => {
                let (a_iv, a_cg) = stack.pop().expect("cg stack");
                let out = iv_not(a_iv);
                let cg = match truth(&a_iv, a_cg) {
                    Some(t) => Congruence::point(i64::from(!t)),
                    None => Congruence::top(),
                };
                (out, cg)
            }
            IvOp::Abs => {
                let (a_iv, a_cg) = stack.pop().expect("cg stack");
                (iv_abs(a_iv), a_cg.join(-a_cg))
            }
            IvOp::Bin(o) => {
                let (b_iv, b_cg) = stack.pop().expect("cg stack");
                let (a_iv, a_cg) = stack.pop().expect("cg stack");
                let out = iv_bin(*o, a_iv, b_iv);
                let cg = match o {
                    IntBinOp::Add => a_cg + b_cg,
                    IntBinOp::Sub => a_cg - b_cg,
                    IntBinOp::Mul => a_cg * b_cg,
                    IntBinOp::Div | IntBinOp::FloorDiv => a_cg / b_cg,
                    IntBinOp::Rem => a_cg % b_cg,
                    IntBinOp::Eq => {
                        if a_cg.never_equal(b_cg) {
                            Congruence::point(0)
                        } else {
                            Congruence::top()
                        }
                    }
                    IntBinOp::Ne => {
                        if a_cg.never_equal(b_cg) {
                            Congruence::point(1)
                        } else {
                            Congruence::top()
                        }
                    }
                    IntBinOp::And => match (truth(&a_iv, a_cg), truth(&b_iv, b_cg)) {
                        (Some(false), _) | (_, Some(false)) => Congruence::point(0),
                        (Some(true), Some(true)) => Congruence::point(1),
                        _ => Congruence::top(),
                    },
                    IntBinOp::Or => match (truth(&a_iv, a_cg), truth(&b_iv, b_cg)) {
                        (Some(true), _) | (Some(false), Some(true)) => Congruence::point(1),
                        (Some(false), Some(false)) => Congruence::point(0),
                        _ => Congruence::top(),
                    },
                    IntBinOp::Lt | IntBinOp::Le | IntBinOp::Gt | IntBinOp::Ge => {
                        Congruence::top()
                    }
                };
                (out, cg)
            }
            IvOp::Call2(bi) => {
                let (b_iv, b_cg) = stack.pop().expect("cg stack");
                let (a_iv, a_cg) = stack.pop().expect("cg stack");
                let out = iv_call2(*bi, a_iv, b_iv);
                let cg = match bi {
                    // min/max pick one of the two values.
                    Builtin::Min | Builtin::Max => a_cg.join(b_cg),
                    // round_up(a, b) = floor((a+b-1)/b)·b: a multiple of b,
                    // hence of b's content.
                    Builtin::RoundUp => {
                        let c = b_cg.content();
                        if c >= 1 {
                            make(c, 0)
                        } else {
                            Congruence::top()
                        }
                    }
                    Builtin::DivCeil | Builtin::Gcd | Builtin::Abs => Congruence::top(),
                };
                (out, cg)
            }
            IvOp::Ternary => {
                let (f_iv, f_cg) = stack.pop().expect("cg stack");
                let (t_iv, t_cg) = stack.pop().expect("cg stack");
                let (c_iv, c_cg) = stack.pop().expect("cg stack");
                let out = iv_ternary(c_iv, t_iv, f_iv);
                let cg = match truth(&c_iv, c_cg) {
                    Some(true) => t_cg,
                    Some(false) => f_cg,
                    None => t_cg.join(f_cg),
                };
                (out, cg)
            }
        };
        stack.push((out.0, reduce(&out.0, out.1)));
    }
    stack.pop().expect("nonempty program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_and_progressions() {
        let p = Congruence::point(7);
        assert_eq!(p.as_point(), Some(7));
        assert!(p.contains(7) && !p.contains(8));
        assert!(p.always_nonzero());

        let t = Congruence::top();
        assert!(t.is_top() && t.contains(-5) && !t.always_nonzero());

        let c = Congruence { m: 4, r: 2 };
        assert!(c.contains(2) && c.contains(-2) && c.contains(6) && !c.contains(3));
        assert!(c.always_nonzero());
    }

    #[test]
    fn join_finds_common_progression() {
        let a = Congruence::point(3).join(Congruence::point(11));
        assert_eq!(a, Congruence { m: 8, r: 3 });
        let b = a.join(Congruence::point(5));
        assert_eq!(b, Congruence { m: 2, r: 1 });
        assert_eq!(Congruence::point(4).join(Congruence::point(4)).as_point(), Some(4));
    }

    #[test]
    fn mul_keeps_divisibility_against_top() {
        // c * unknown ≡ 0 (mod c): the stepped-range workhorse.
        let out = Congruence::point(24) * Congruence::top();
        assert_eq!(out, Congruence { m: 24, r: 0 });
        // (4k) * (6j + 3) = 24kj + 12k ≡ 0 (mod 12).
        let out = Congruence { m: 4, r: 0 } * Congruence { m: 6, r: 3 };
        assert_eq!(out, Congruence { m: 12, r: 0 });
    }

    #[test]
    fn exact_division_divides_the_progression() {
        let c = Congruence { m: 24, r: 0 };
        assert_eq!(c / Congruence::point(8), Congruence { m: 3, r: 0 });
        // Non-dividing divisor gives up.
        assert!((c / Congruence::point(5)).is_top());
        // Unknown divisor gives up.
        assert!((c / Congruence { m: 2, r: 0 }).is_top());
    }

    #[test]
    fn rem_keeps_common_content() {
        // (12k + 3) % (6j) ≡ 3 (mod 6): both sides share content 6.
        let out = Congruence { m: 12, r: 3 } % Congruence { m: 6, r: 0 };
        assert_eq!(out, Congruence { m: 6, r: 3 });
        assert!(out.always_nonzero());
    }

    #[test]
    fn never_equal_by_residue() {
        // x ≡ 0 (mod 24) can never equal the point 100 (100 % 24 != 0).
        assert!(Congruence { m: 24, r: 0 }.never_equal(Congruence::point(100)));
        assert!(!Congruence { m: 24, r: 0 }.never_equal(Congruence::point(96)));
        // x ≡ 1 (mod 4) vs y ≡ 3 (mod 4): gcd 4, residues differ.
        assert!(Congruence { m: 4, r: 1 }.never_equal(Congruence { m: 4, r: 3 }));
        // x ≡ 1 (mod 4) vs y ≡ 1 (mod 6): 1 ≡ 1 (mod 2) — may be equal.
        assert!(!Congruence { m: 4, r: 1 }.never_equal(Congruence { m: 6, r: 1 }));
    }

    #[test]
    fn bind_congruence_from_start_and_step() {
        // range(c, stop, c): every value ≡ 0 (mod c).
        let out = cg_of_bind(Congruence::point(16), Congruence::point(16));
        assert_eq!(out, Congruence { m: 16, r: 0 });
        // range(1, stop, 4): 1, 5, 9, …
        let out = cg_of_bind(Congruence::point(1), Congruence::point(4));
        assert_eq!(out, Congruence { m: 4, r: 1 });
        // Abstract step that is a multiple of 8.
        let out = cg_of_bind(Congruence::point(0), Congruence { m: 8, r: 0 });
        assert_eq!(out, Congruence { m: 8, r: 0 });
    }

    #[test]
    fn values_hull() {
        assert_eq!(cg_of_values(&[6, 18, 30]), Congruence { m: 12, r: 6 });
        assert_eq!(cg_of_values(&[5]).as_point(), Some(5));
        assert!(cg_of_values(&[]).is_top());
    }
}
