//! Exact survivor counting (model counting) over the lowered plan.
//!
//! The guards of `beast-engine` and the linter passes of this module can
//! prove subtrees *dead*; this analysis answers the complementary question:
//! exactly **how many** survivors does a subtree hold? [`Counter`] walks the
//! plan in loop order like an enumeration engine would, but instead of
//! visiting survivors it computes subtree cardinalities bottom-up and reuses
//! them aggressively:
//!
//! * **Footprint memoization** — the survivor count below a loop level is a
//!   function of only the outer values that the subtree's defines and checks
//!   actually *read* (its dependency footprint, computed once from the
//!   plan's read/write sets). Sibling subtrees that do not depend on an
//!   outer binding therefore share one cache entry, and counting costs far
//!   less than enumeration whenever the nest is not fully entangled.
//! * **Product-domain restriction** — before enumerating a level's realized
//!   domain, the straight-line run of defines and checks at that level is
//!   evaluated once over the interval × congruence product with the loop
//!   variable abstracted to its whole domain; a decided rejection proves
//!   the level empty without touching a single value. When the run contains
//!   `%`-family checks against concrete moduli, the same abstract pass runs
//!   per *residue class* of the domain (`congruence` answers the `% == 0`
//!   family exactly), and every value in a rejected class is skipped
//!   wholesale — the counting analog of the engine's congruence guards.
//!
//! The per-level cache entries ([`LevelEntry`]) keep the feasible values
//! with cumulative subtree counts, which is exactly the table a
//! count-weighted *direct sampler* needs to draw uniform survivors with
//! zero rejections in O(depth): see [`Counter::descend`] and
//! `beast_search`'s `DirectSampler`.
//!
//! Counts saturate at `u128::MAX` (unreachable for any space that could
//! ever be enumerated); work is bounded by a [`CountBudget`] so the linter
//! can afford an exact-count pass without risking a runaway analysis.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use crate::error::EvalError;
use crate::expr::Bindings;
use crate::interval::{Interval, IvProg};
use crate::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};
use crate::iterator::Realized;
use crate::value::Value;

use super::congruence::{cg_of_bind, cg_of_values, eval_product, Congruence, Product};

/// Work limits for a counting run. Exceeding either limit aborts the
/// analysis ([`Counter::total`] returns `None`) rather than degrading to an
/// approximate count — every number this module reports is exact.
#[derive(Debug, Clone, Copy)]
pub struct CountBudget {
    /// Maximum concrete values recursed into across the whole run.
    pub max_enumerated: u64,
    /// Maximum memo entries kept alive.
    pub max_memo_entries: usize,
}

impl Default for CountBudget {
    fn default() -> CountBudget {
        CountBudget { max_enumerated: 50_000_000, max_memo_entries: 500_000 }
    }
}

/// Per-loop-level counters of a counting run.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Iterator name bound at this level.
    pub name: Arc<str>,
    /// Loop depth.
    pub depth: usize,
    /// Memo entries computed at this level (cache misses).
    pub entries: u64,
    /// Realized domain values summed over computed entries.
    pub domain_values: u64,
    /// Values whose subtree count is nonzero, summed over computed entries.
    pub feasible_values: u64,
    /// Values skipped wholesale because their residue class was rejected by
    /// the abstract pass.
    pub residue_skipped: u64,
}

/// Aggregate counters of a counting run.
#[derive(Debug, Clone, Default)]
pub struct CountStats {
    /// Subtree counts answered from the footprint cache.
    pub cache_hits: u64,
    /// Subtree counts computed by enumeration.
    pub cache_misses: u64,
    /// Concrete values recursed into.
    pub enumerated: u64,
    /// Whole levels proven empty by the abstract pre-pass alone.
    pub domains_rejected: u64,
    /// Residue classes rejected by the abstract pre-pass.
    pub residue_classes_pruned: u64,
    /// Per-level counters, outermost first.
    pub levels: Vec<LevelStats>,
}

/// The feasible domain of one loop level under one dependency footprint:
/// every value with a nonzero subtree count, paired with the *cumulative*
/// count up to and including that value. The last cumulative value is the
/// level's total; per-value counts are adjacent differences. Cumulative
/// form makes a count-weighted draw a binary search.
#[derive(Debug, Clone, Default)]
pub struct LevelEntry {
    values: Vec<(i64, u128)>,
}

impl LevelEntry {
    /// Total survivor count below this level.
    pub fn total(&self) -> u128 {
        self.values.last().map(|&(_, c)| c).unwrap_or(0)
    }

    /// Number of feasible values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no value survives.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `i`-th feasible value.
    pub fn value_at(&self, i: usize) -> i64 {
        self.values[i].0
    }

    /// Subtree count of the `i`-th feasible value.
    pub fn count_at(&self, i: usize) -> u128 {
        let prev = if i == 0 { 0 } else { self.values[i - 1].1 };
        self.values[i].1 - prev
    }

    /// Position of a feasible value.
    pub fn position_of(&self, v: i64) -> Option<usize> {
        self.values.iter().position(|&(x, _)| x == v)
    }

    /// Count-weighted selection: map a survivor index `idx` in
    /// `[0, total)` to `(value, remainder)` where `remainder` indexes the
    /// survivors below that value. This is the weighted-descent step: a
    /// single uniform index over the whole subtree decomposes level by
    /// level into a unique survivor.
    pub fn pick(&self, idx: u128) -> (i64, u128) {
        let p = self.values.partition_point(|&(_, cum)| cum <= idx);
        let prev = if p == 0 { 0 } else { self.values[p - 1].1 };
        (self.values[p].0, idx - prev)
    }
}

/// One step of a count-weighted descent (see [`Counter::descend`]).
pub enum DescentStep {
    /// The walk reached a loop level: pick a feasible value from `entry`,
    /// write it to `slot`, and continue from `step + 1`.
    Level {
        /// Index of the `Bind` step in `lp.steps`.
        step: usize,
        /// Slot the level binds.
        slot: u32,
        /// Feasible values with cumulative subtree counts.
        entry: Arc<LevelEntry>,
    },
    /// A survivor was reached; the slot array holds its values.
    Done,
    /// A check rejected the prefix (unreachable when every level picked a
    /// feasible value).
    Dead,
}

/// Positional slot view over the space's constants — the counting analog of
/// the engine's `SlotBindings`, used to realize opaque iterators and
/// evaluate deferred defines/checks.
struct SlotView<'a> {
    names: &'a [Arc<str>],
    slots: &'a [i64],
    consts: &'a [(Arc<str>, Value)],
}

impl Bindings for SlotView<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        if let Some(i) = self.names.iter().position(|n| &**n == name) {
            return Some(Value::Int(self.slots[i]));
        }
        self.consts.iter().find(|(n, _)| &**n == name).map(|(_, v)| v.clone())
    }
}

/// Maximum residue classes the abstract pre-pass will test per level.
const MAX_RESIDUE_CLASSES: u64 = 64;

/// Maximum modulus considered for residue-class filtering.
const MAX_MODULUS: i64 = 1 << 20;

/// Memoized exact survivor counter over a lowered plan.
pub struct Counter<'a> {
    lp: &'a LoweredPlan,
    budget: CountBudget,
    /// Skip constraint checks entirely: counts the (dependent) Cartesian
    /// tuple space instead — the denominator of a survival rate.
    ignore_checks: bool,
    aborted: bool,
    /// Per step: sorted slots the suffix starting at this step reads from
    /// outside (the dependency footprint).
    footprints: Vec<Arc<[u32]>>,
    /// Per step: compiled interval program for expression bodies.
    progs: Vec<Option<IvProg>>,
    /// Per `Bind` step: `%`-divisor expressions inside the level's run whose
    /// reads are all bound before the level — residue-filter candidates.
    rem_divisors: Vec<Vec<&'a IntExpr>>,
    /// Per `Bind` step: level ordinal (outermost first).
    level_of: HashMap<usize, usize>,
    memo: HashMap<(usize, Box<[i64]>), Arc<LevelEntry>>,
    stats: CountStats,
}

impl<'a> Counter<'a> {
    /// Counter with the default budget.
    pub fn new(lp: &'a LoweredPlan) -> Counter<'a> {
        Counter::with_budget(lp, CountBudget::default())
    }

    /// Counter with an explicit work budget.
    pub fn with_budget(lp: &'a LoweredPlan, budget: CountBudget) -> Counter<'a> {
        Counter::build(lp, budget, false)
    }

    /// Counter of the *unconstrained* tuple space (checks ignored): the
    /// denominator for survival rates. Dependent domains still realize under
    /// outer values, so this is the exact number of tuples an exhaustive
    /// sweep would test constraints on.
    pub fn tuples(lp: &'a LoweredPlan) -> Counter<'a> {
        Counter::tuples_with_budget(lp, CountBudget::default())
    }

    /// [`Counter::tuples`] with an explicit budget.
    pub fn tuples_with_budget(lp: &'a LoweredPlan, budget: CountBudget) -> Counter<'a> {
        Counter::build(lp, budget, true)
    }

    fn build(lp: &'a LoweredPlan, budget: CountBudget, ignore_checks: bool) -> Counter<'a> {
        let space = lp.plan.space();
        let n_steps = lp.steps.len();
        let slot_of: HashMap<&str, u32> = lp
            .slot_names
            .iter()
            .enumerate()
            .map(|(i, n)| (&**n, i as u32))
            .collect();

        // Declared dependency names of an opaque step, mapped to slots
        // (constant deps vanish at lowering and carry no slot).
        let deps_to_slots = |names: &BTreeSet<Arc<str>>, out: &mut BTreeSet<u32>| {
            for n in names {
                if let Some(&s) = slot_of.get(&**n) {
                    out.insert(s);
                }
            }
        };

        // Suffix footprints: fp[i] = reads(step i) ∪ (fp[i+1] \ writes(step i)).
        // A step's own reads happen before its write, so they are added
        // after the write's removal.
        let mut footprints: Vec<Arc<[u32]>> = vec![Arc::from(&[] as &[u32]); n_steps];
        let mut fp: BTreeSet<u32> = BTreeSet::new();
        let mut deps = BTreeSet::new();
        for i in (0..n_steps).rev() {
            match &lp.steps[i] {
                LStep::Bind { slot, domain, iter, .. } => {
                    fp.remove(slot);
                    match domain {
                        LIter::Range { start, stop, step } => {
                            for e in [start, stop, step] {
                                super::for_each_slot(e, &mut |s| {
                                    fp.insert(s);
                                });
                            }
                        }
                        LIter::Values(_) => {}
                        LIter::Opaque { .. } => {
                            deps.clear();
                            space.iters()[*iter].kind.collect_deps(&mut deps);
                            deps_to_slots(&deps, &mut fp);
                        }
                    }
                }
                LStep::Define { slot, body, derived } => {
                    fp.remove(slot);
                    match body {
                        LBody::Expr(e) => super::for_each_slot(e, &mut |s| {
                            fp.insert(s);
                        }),
                        LBody::Opaque => {
                            deps.clear();
                            space.deriveds()[*derived].kind.collect_deps(&mut deps);
                            deps_to_slots(&deps, &mut fp);
                        }
                    }
                }
                // In tuple mode checks never run, so their reads do not
                // constrain the subtree: leaving them out both widens cache
                // sharing and enables the uniform-level product shortcut.
                LStep::Check { .. } if ignore_checks => {}
                LStep::Check { body, constraint } => match body {
                    LBody::Expr(e) => super::for_each_slot(e, &mut |s| {
                        fp.insert(s);
                    }),
                    LBody::Opaque => {
                        deps.clear();
                        space.constraints()[*constraint].kind.collect_deps(&mut deps);
                        deps_to_slots(&deps, &mut fp);
                    }
                },
                LStep::Visit => {}
            }
            footprints[i] = fp.iter().copied().collect::<Vec<u32>>().into();
        }

        // Compiled abstract programs for every expression body.
        let progs: Vec<Option<IvProg>> = lp
            .steps
            .iter()
            .map(|s| match s {
                LStep::Define { body: LBody::Expr(e), .. }
                | LStep::Check { body: LBody::Expr(e), .. } => Some(IvProg::compile(e)),
                _ => None,
            })
            .collect();

        // Slots written strictly before each step, for residue-filter
        // candidate divisors (they must be fully bound at the level).
        let mut written_before: Vec<Vec<bool>> = Vec::with_capacity(n_steps);
        let mut written = vec![false; lp.n_slots as usize];
        for s in &lp.steps {
            written_before.push(written.clone());
            match s {
                LStep::Bind { slot, .. } | LStep::Define { slot, .. } => {
                    written[*slot as usize] = true
                }
                _ => {}
            }
        }

        // Residue-filter candidates per Bind: `a % d` divisors appearing in
        // the level's run of checks, with every slot of `d` bound before
        // the level opens.
        let mut rem_divisors: Vec<Vec<&'a IntExpr>> = vec![Vec::new(); n_steps];
        let mut level_of = HashMap::new();
        let mut levels = Vec::new();
        for (i, s) in lp.steps.iter().enumerate() {
            let LStep::Bind { slot: _, depth, iter, .. } = s else { continue };
            level_of.insert(i, levels.len());
            levels.push(LevelStats {
                name: space.iters()[*iter].name.clone(),
                depth: *depth,
                entries: 0,
                domain_values: 0,
                feasible_values: 0,
                residue_skipped: 0,
            });
            let mut divisors = Vec::new();
            for step in &lp.steps[i + 1..] {
                match step {
                    LStep::Bind { .. } | LStep::Visit => break,
                    LStep::Check { body: LBody::Expr(e), .. } => {
                        collect_rem_divisors(e, &mut |d| {
                            let mut ok = true;
                            super::for_each_slot(d, &mut |s| {
                                ok &= written_before[i][s as usize];
                            });
                            if ok {
                                divisors.push(d);
                            }
                        });
                    }
                    _ => {}
                }
            }
            rem_divisors[i] = divisors;
        }

        Counter {
            lp,
            budget,
            ignore_checks,
            aborted: false,
            footprints,
            progs,
            rem_divisors,
            level_of,
            memo: HashMap::new(),
            stats: CountStats { levels, ..CountStats::default() },
        }
    }

    /// Exact survivor count of the whole space; `None` when the work budget
    /// was exhausted before the count completed.
    pub fn total(&mut self) -> Result<Option<u128>, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let c = self.count_from(0, &mut slots)?;
        Ok((!self.aborted).then_some(c))
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CountStats {
        &self.stats
    }

    /// True when a budget limit stopped the analysis.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Walk the straight-line steps from `from`, evaluating defines and
    /// checks concretely against `slots`, until a loop level, a survivor or
    /// a rejection is reached. Returns `None` when the work budget aborts
    /// the underlying count (never happens after a successful
    /// [`Counter::total`], whose cache then answers every level).
    pub fn descend(
        &mut self,
        from: usize,
        slots: &mut Vec<i64>,
    ) -> Result<Option<DescentStep>, EvalError> {
        let lp = self.lp;
        let space = lp.plan.space();
        let mut i = from;
        loop {
            match &lp.steps[i] {
                LStep::Visit => return Ok(Some(DescentStep::Done)),
                LStep::Define { slot, body, derived } => {
                    slots[*slot as usize] = eval_define(lp, space, *derived, body, slots)?;
                    i += 1;
                }
                LStep::Check { constraint, body } => {
                    if !self.ignore_checks && eval_check(lp, space, *constraint, body, slots)? {
                        return Ok(Some(DescentStep::Dead));
                    }
                    i += 1;
                }
                LStep::Bind { slot, .. } => {
                    let slot = *slot;
                    let entry = self.entry_at(i, slots)?;
                    if self.aborted {
                        return Ok(None);
                    }
                    return Ok(Some(DescentStep::Level { step: i, slot, entry }));
                }
            }
        }
    }

    /// Count survivors of the subtree rooted at step `from` under the bound
    /// prefix in `slots`.
    fn count_from(&mut self, from: usize, slots: &mut Vec<i64>) -> Result<u128, EvalError> {
        let lp = self.lp;
        let space = lp.plan.space();
        let mut i = from;
        loop {
            if self.aborted {
                return Ok(0);
            }
            match &lp.steps[i] {
                LStep::Visit => return Ok(1),
                LStep::Define { slot, body, derived } => {
                    slots[*slot as usize] = eval_define(lp, space, *derived, body, slots)?;
                    i += 1;
                }
                LStep::Check { constraint, body } => {
                    if !self.ignore_checks && eval_check(lp, space, *constraint, body, slots)? {
                        return Ok(0);
                    }
                    i += 1;
                }
                LStep::Bind { .. } => {
                    return Ok(self.entry_at(i, slots)?.total());
                }
            }
        }
    }

    /// The feasible-domain entry of the loop level at step `i` under the
    /// bound prefix in `slots`: answered from the footprint cache when the
    /// footprint values match a previous subtree, computed (and cached)
    /// otherwise.
    fn entry_at(
        &mut self,
        i: usize,
        slots: &mut Vec<i64>,
    ) -> Result<Arc<LevelEntry>, EvalError> {
        let fp = Arc::clone(&self.footprints[i]);
        let key: (usize, Box<[i64]>) =
            (i, fp.iter().map(|&s| slots[s as usize]).collect());
        if let Some(e) = self.memo.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(Arc::clone(e));
        }
        self.stats.cache_misses += 1;

        let lp = self.lp;
        let space = lp.plan.space();
        let LStep::Bind { slot, iter, domain, .. } = &lp.steps[i] else {
            unreachable!("entry_at is only called on Bind steps")
        };
        let (slot, iter) = (*slot, *iter);

        let realized = match domain {
            LIter::Range { start, stop, step } => Realized::Range {
                start: start.eval(slots)?,
                stop: stop.eval(slots)?,
                step: step.eval(slots)?,
            },
            LIter::Values(v) => {
                Realized::Values(v.iter().map(|&x| Value::Int(x)).collect())
            }
            LIter::Opaque { .. } => {
                let view = SlotView {
                    names: &lp.slot_names,
                    slots,
                    consts: space.consts(),
                };
                space.realize_iter(iter, &view)?
            }
        };
        let len = realized.len();
        let level = self.level_of[&i];

        // Abstract pre-pass over the level's run, with the loop variable
        // abstracted to its whole realized domain. A decided rejection
        // proves the level empty outright.
        let mut entry = LevelEntry::default();
        let mut residue_skipped = 0u64;
        let dom = domain_product(&realized)?;
        let whole_rejected = !self.ignore_checks
            && len > 0
            && match &dom {
                Some((iv, cg)) => self.run_rejects(i, slots, slot, *iv, *cg),
                None => false,
            };
        // Uniform-level shortcut: when nothing after this bind reads the
        // bound slot (checks included — in tuple mode they are excluded
        // from footprints because they never run), every value has the
        // same subtree count: recurse once and replicate.
        let uniform =
            len > 0 && self.footprints[i + 1].binary_search(&slot).is_err();
        if whole_rejected {
            self.stats.domains_rejected += 1;
        } else if uniform {
            self.stats.enumerated += 1;
            if self.stats.enumerated > self.budget.max_enumerated {
                self.aborted = true;
            } else {
                slots[slot as usize] = realized.nth_value(0).expect("len > 0").as_int()?;
                let c = self.count_from(i + 1, slots)?;
                if c > 0 {
                    let mut cum = 0u128;
                    entry.values.reserve(len);
                    for k in 0..len {
                        let v = realized.nth_value(k).expect("index in range").as_int()?;
                        cum = cum.saturating_add(c);
                        entry.values.push((v, cum));
                    }
                }
            }
        } else {
            // Residue-class filtering: test each residue class of the
            // domain against the run once; values in rejected classes are
            // skipped without recursion.
            let rejected_classes = if self.ignore_checks {
                None
            } else {
                self.rejected_residue_classes(i, slots, slot, &realized, &dom)?
            };
            let mut cum = 0u128;
            for k in 0..len {
                let v = realized.nth_value(k).expect("index in range").as_int()?;
                if let Some((m, rej)) = &rejected_classes {
                    if rej.contains(&v.rem_euclid(*m)) {
                        residue_skipped += 1;
                        continue;
                    }
                }
                self.stats.enumerated += 1;
                if self.stats.enumerated > self.budget.max_enumerated {
                    self.aborted = true;
                    break;
                }
                slots[slot as usize] = v;
                let c = self.count_from(i + 1, slots)?;
                if c > 0 {
                    cum = cum.saturating_add(c);
                    entry.values.push((v, cum));
                }
            }
        }

        let entry = Arc::new(entry);
        if !self.aborted {
            let lvl = &mut self.stats.levels[level];
            lvl.entries += 1;
            lvl.domain_values += len as u64;
            lvl.feasible_values += entry.len() as u64;
            lvl.residue_skipped += residue_skipped;
            if self.memo.len() < self.budget.max_memo_entries {
                self.memo.insert(key, Arc::clone(&entry));
            } else {
                self.aborted = true;
            }
        }
        Ok(entry)
    }

    /// Evaluate the level's straight-line run (defines and checks up to the
    /// next loop or the visit) over the interval × congruence product, with
    /// the level's variable abstracted to `(x_iv, x_cg)` and every outer
    /// slot an exact point. Returns `true` when some check *provably*
    /// rejects every concretization — and no step before it could have
    /// raised a runtime error instead (`clean` tracking), so skipping the
    /// whole class is observationally identical to enumerating it.
    fn run_rejects(
        &mut self,
        bind_step: usize,
        slots: &[i64],
        bind_slot: u32,
        x_iv: Interval,
        x_cg: Congruence,
    ) -> bool {
        let lp = self.lp;
        let mut iv_env: Vec<Interval> =
            slots.iter().map(|&v| Interval::point(v)).collect();
        let mut cg_env: Vec<Congruence> =
            slots.iter().map(|&v| Congruence::point(v)).collect();
        iv_env[bind_slot as usize] = x_iv;
        cg_env[bind_slot as usize] = x_cg;
        let mut stack: Vec<Product> = Vec::new();
        let mut run_clean = true;
        for (j, step) in lp.steps.iter().enumerate().skip(bind_step + 1) {
            match step {
                LStep::Bind { .. } | LStep::Visit => break,
                LStep::Define { slot, body, .. } => match body {
                    LBody::Expr(_) => {
                        let prog = self.progs[j].as_ref().expect("expr body compiled");
                        let (o, cg) = eval_product(prog, &iv_env, &cg_env, &mut stack);
                        run_clean &= o.clean;
                        iv_env[*slot as usize] = o.iv;
                        cg_env[*slot as usize] = cg;
                    }
                    LBody::Opaque => {
                        run_clean = false;
                        iv_env[*slot as usize] = Interval::TOP;
                        cg_env[*slot as usize] = Congruence::top();
                    }
                },
                LStep::Check { body, .. } => match body {
                    LBody::Expr(_) => {
                        let prog = self.progs[j].as_ref().expect("expr body compiled");
                        let (o, cg) = eval_product(prog, &iv_env, &cg_env, &mut stack);
                        if run_clean && o.clean && (!o.iv.contains(0) || cg.always_nonzero())
                        {
                            return true;
                        }
                        run_clean &= o.clean;
                    }
                    LBody::Opaque => run_clean = false,
                },
            }
        }
        false
    }

    /// Residue classes of the level's domain rejected by the abstract run.
    /// Returns `Some((modulus, rejected residues))` when filtering applies,
    /// `None` when no profitable modulus exists.
    fn rejected_residue_classes(
        &mut self,
        bind_step: usize,
        slots: &[i64],
        bind_slot: u32,
        realized: &Realized,
        dom: &Option<(Interval, Congruence)>,
    ) -> Result<Option<(i64, HashSet<i64>)>, EvalError> {
        let Some((dom_iv, _)) = dom else { return Ok(None) };
        // Combine the concrete values of every candidate divisor into one
        // modulus (lcm, capped): testing classes mod the lcm decides every
        // individual `%` check at once.
        let mut modulus: i64 = 1;
        for d in &self.rem_divisors[bind_step] {
            let Ok(v) = d.eval(slots) else { continue };
            let v = v.unsigned_abs().min(i64::MAX as u64) as i64;
            if !(2..=MAX_MODULUS).contains(&v) {
                continue;
            }
            let g = gcd(modulus, v);
            match (modulus / g).checked_mul(v) {
                Some(l) if l <= MAX_MODULUS => modulus = l,
                _ => {}
            }
        }
        if modulus < 2 {
            return Ok(None);
        }

        // Residue classes the domain actually visits.
        let classes: Vec<i64> = match realized {
            Realized::Range { start, step, .. } => {
                let g = gcd(step.unsigned_abs().min(i64::MAX as u64) as i64, modulus);
                let period = (modulus / g) as u64;
                if period > MAX_RESIDUE_CLASSES || period as usize >= realized.len() {
                    return Ok(None);
                }
                (0..period)
                    .map(|t| (start.rem_euclid(modulus) + t as i64 * g) % modulus)
                    .collect()
            }
            Realized::Values(vs) => {
                let mut set = BTreeSet::new();
                for v in vs {
                    set.insert(v.as_int()?.rem_euclid(modulus));
                }
                if set.len() as u64 > MAX_RESIDUE_CLASSES || set.len() >= vs.len() {
                    return Ok(None);
                }
                set.into_iter().collect()
            }
        };

        let mut rejected = HashSet::new();
        for c in classes {
            let cg = Congruence { m: modulus, r: c.rem_euclid(modulus) };
            if self.run_rejects(bind_step, slots, bind_slot, *dom_iv, cg) {
                self.stats.residue_classes_pruned += 1;
                rejected.insert(c);
            }
        }
        Ok((!rejected.is_empty()).then_some((modulus, rejected)))
    }
}

/// Concrete evaluation of a define body (expression or deferred closure).
fn eval_define(
    lp: &LoweredPlan,
    space: &crate::space::Space,
    derived: usize,
    body: &LBody,
    slots: &[i64],
) -> Result<i64, EvalError> {
    match body {
        LBody::Expr(e) => e.eval(slots),
        LBody::Opaque => {
            let view = SlotView { names: &lp.slot_names, slots, consts: space.consts() };
            space.deriveds()[derived].kind.eval(&view)?.as_int()
        }
    }
}

/// Concrete evaluation of a check body; `true` means reject.
fn eval_check(
    lp: &LoweredPlan,
    space: &crate::space::Space,
    constraint: usize,
    body: &LBody,
    slots: &[i64],
) -> Result<bool, EvalError> {
    match body {
        LBody::Expr(e) => Ok(e.eval(slots)? != 0),
        LBody::Opaque => {
            let view = SlotView { names: &lp.slot_names, slots, consts: space.consts() };
            space.constraints()[constraint].kind.rejects(&view)
        }
    }
}

/// The whole-domain abstraction of a realized domain: value hull interval
/// plus the exact progression congruence. `None` for an empty domain.
fn domain_product(realized: &Realized) -> Result<Option<(Interval, Congruence)>, EvalError> {
    let len = realized.len();
    if len == 0 {
        return Ok(None);
    }
    match realized {
        Realized::Range { start, step, .. } => {
            let first = *start;
            let last = start.wrapping_add((len as i64 - 1).wrapping_mul(*step));
            let iv = Interval::new(first, last);
            let cg = cg_of_bind(Congruence::point(first), Congruence::point(*step));
            Ok(Some((iv, cg)))
        }
        Realized::Values(vs) => {
            let mut ints = Vec::with_capacity(vs.len());
            for v in vs {
                ints.push(v.as_int()?);
            }
            let (lo, hi) = (
                ints.iter().copied().min().expect("nonempty"),
                ints.iter().copied().max().expect("nonempty"),
            );
            Ok(Some((Interval::new(lo, hi), cg_of_values(&ints))))
        }
    }
}

/// Collect the divisor subexpressions of every `%` node.
fn collect_rem_divisors<'e>(e: &'e IntExpr, f: &mut impl FnMut(&'e IntExpr)) {
    match e {
        IntExpr::Const(_) | IntExpr::Slot(_) => {}
        IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => collect_rem_divisors(a, f),
        IntExpr::Bin(op, a, b) => {
            if *op == IntBinOp::Rem {
                f(b);
            }
            collect_rem_divisors(a, f);
            collect_rem_divisors(b, f);
        }
        IntExpr::Call2(_, a, b) => {
            collect_rem_divisors(a, f);
            collect_rem_divisors(b, f);
        }
        IntExpr::Ternary(c, t, x) => {
            collect_rem_divisors(c, f);
            collect_rem_divisors(t, f);
            collect_rem_divisors(x, f);
        }
    }
}

/// Nonnegative gcd (total: `gcd(0, 0) == 0`).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;
    use crate::expr::var;
    use crate::plan::{Plan, PlanOptions};
    use crate::space::Space;

    fn lower(space: &Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    /// Brute-force survivor count by walking the plan recursively.
    fn brute_force(lp: &LoweredPlan) -> u128 {
        fn walk(lp: &LoweredPlan, i: usize, slots: &mut Vec<i64>) -> u128 {
            let space = lp.plan.space();
            match &lp.steps[i] {
                LStep::Visit => 1,
                LStep::Define { slot, body, derived } => {
                    slots[*slot as usize] =
                        eval_define(lp, space, *derived, body, slots).unwrap();
                    walk(lp, i + 1, slots)
                }
                LStep::Check { constraint, body } => {
                    if eval_check(lp, space, *constraint, body, slots).unwrap() {
                        0
                    } else {
                        walk(lp, i + 1, slots)
                    }
                }
                LStep::Bind { slot, iter, domain, .. } => {
                    let realized = match domain {
                        LIter::Range { start, stop, step } => Realized::Range {
                            start: start.eval(slots).unwrap(),
                            stop: stop.eval(slots).unwrap(),
                            step: step.eval(slots).unwrap(),
                        },
                        LIter::Values(v) => {
                            Realized::Values(v.iter().map(|&x| Value::Int(x)).collect())
                        }
                        LIter::Opaque { .. } => {
                            let view = SlotView {
                                names: &lp.slot_names,
                                slots,
                                consts: space.consts(),
                            };
                            space.realize_iter(*iter, &view).unwrap()
                        }
                    };
                    let mut total = 0u128;
                    for k in 0..realized.len() {
                        slots[*slot as usize] =
                            realized.nth_value(k).unwrap().as_int().unwrap();
                        total += walk(lp, i + 1, slots);
                    }
                    total
                }
            }
        }
        let mut slots = vec![0i64; lp.n_slots as usize];
        walk(lp, 0, &mut slots)
    }

    #[test]
    fn counts_match_brute_force_on_a_dependent_space() {
        let space = Space::builder("count_mini")
            .constant("cap", 30)
            .range("a", 1, 9)
            .range_step("b", var("a"), 33, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::new(&lp);
        assert_eq!(counter.total().unwrap(), Some(brute_force(&lp)));
    }

    #[test]
    fn independent_dimensions_share_cache_entries() {
        let space = Space::builder("count_indep")
            .range("x", 0, 100)
            .range("y", 0, 100)
            .constraint("x_even", ConstraintClass::Hard, (var("x") % 2).ne(0))
            .constraint("y_mod3", ConstraintClass::Hard, (var("y") % 3).ne(0))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::new(&lp);
        assert_eq!(counter.total().unwrap(), Some(50 * 34));
        // y's subtree reads nothing of x: one computed entry, 49 hits.
        assert!(counter.stats().cache_hits >= 49, "{:?}", counter.stats());
        assert!(
            counter.stats().enumerated < 100 * 100,
            "memoization failed to beat enumeration: {:?}",
            counter.stats()
        );
    }

    #[test]
    fn residue_classes_prune_stepped_divisibility() {
        // b steps by 1 but only multiples of 24 survive: the class pass
        // should reject the 23 dead residue classes wholesale.
        let space = Space::builder("count_residue")
            .range("b", 0, 2400)
            .constraint("mult", ConstraintClass::Hard, (var("b") % 24).ne(0))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::new(&lp);
        assert_eq!(counter.total().unwrap(), Some(100));
        assert!(counter.stats().residue_classes_pruned >= 23, "{:?}", counter.stats());
        assert_eq!(counter.stats().enumerated, 100);
    }

    #[test]
    fn whole_domain_rejection_skips_enumeration() {
        let space = Space::builder("count_empty_level")
            .range("x", 1, 1000)
            .constraint("nope", ConstraintClass::Hard, var("x").ge(1))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::new(&lp);
        assert_eq!(counter.total().unwrap(), Some(0));
        assert_eq!(counter.stats().enumerated, 0, "{:?}", counter.stats());
        assert_eq!(counter.stats().domains_rejected, 1);
    }

    #[test]
    fn tuples_mode_ignores_checks() {
        let space = Space::builder("count_tuples")
            .range("a", 0, 10)
            .range("b", 0, 7)
            .constraint("all", ConstraintClass::Hard, var("a").ge(0))
            .build()
            .unwrap();
        let lp = lower(&space);
        assert_eq!(Counter::tuples(&lp).total().unwrap(), Some(70));
        assert_eq!(Counter::new(&lp).total().unwrap(), Some(0));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let space = Space::builder("count_budget")
            .range("a", 0, 1000)
            .range_step("b", var("a"), 100_000, crate::expr::lit(1))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::with_budget(
            &lp,
            CountBudget { max_enumerated: 100, max_memo_entries: 8 },
        );
        assert_eq!(counter.total().unwrap(), None);
        assert!(counter.aborted());
    }

    #[test]
    fn level_entry_pick_is_a_weighted_inverse() {
        let entry = LevelEntry { values: vec![(10, 2), (20, 3), (40, 7)] };
        assert_eq!(entry.total(), 7);
        assert_eq!(entry.count_at(0), 2);
        assert_eq!(entry.count_at(1), 1);
        assert_eq!(entry.count_at(2), 4);
        let picks: Vec<(i64, u128)> = (0..7).map(|i| entry.pick(i)).collect();
        assert_eq!(
            picks,
            vec![(10, 0), (10, 1), (20, 0), (40, 0), (40, 1), (40, 2), (40, 3)]
        );
        assert_eq!(entry.position_of(20), Some(1));
        assert_eq!(entry.position_of(30), None);
    }

    #[test]
    fn opaque_iterators_are_counted_through_the_space() {
        let space = Space::builder("count_opaque")
            .range("a", 1, 5)
            .deferred_iter("b", &["a"], |env| {
                Ok(Realized::Range { start: 0, stop: env.require_int("a")?, step: 1 })
            })
            .build()
            .unwrap();
        let lp = lower(&space);
        let mut counter = Counter::new(&lp);
        // 1 + 2 + 3 + 4 dependent values.
        assert_eq!(counter.total().unwrap(), Some(10));
    }
}
