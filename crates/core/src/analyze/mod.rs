//! Static analysis of search spaces: a multi-pass linter over the lowered
//! plan plus the congruence abstract domain it shares with the engine.
//!
//! The paper's premise is that bad tuning configurations should be caught
//! *before* enumeration; this module extends that from configurations to
//! the space description itself. A space author who writes an impossible
//! constraint today gets a slow sweep returning zero survivors and no clue
//! why. [`analyze`] walks the lowered plan once with the interval ×
//! congruence product domain and reports structured diagnostics with
//! stable codes:
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | BE001 | error    | a constraint rejects every point: the space is provably empty |
//! | BE002 | warning  | a constraint can never reject: dead check |
//! | BE003 | warning  | a constraint's rejections are covered by another: subsumed |
//! | BE004 | info/warning | iterator/derived variable read by nothing |
//! | BE005 | warning  | name shadows an expression builtin or C keyword |
//! | BE006 | info     | check reads only outer-loop variables: hoistable |
//! | BE007 | warning  | derived variable can fail at runtime (divisor may be 0) |
//! | BE008 | warning  | arithmetic provably can exceed `i64` and wrap |
//! | BE009 | info     | exact survivor count and survival rate (counting pass) |
//! | BE010 | warning  | survival rate below 1e-4: rejection sampling impractical |
//!
//! BE009/BE010 come from the exact model-counting pass ([`count`]) and are
//! only emitted by [`analyze_with_counts`] — the engine's pre-sweep gate
//! runs the abstract passes alone, so building an engine stays cheap.
//!
//! The congruence half ([`congruence`]) is shared with
//! `beast_engine::compiled`'s subtree guards, where residue facts prune
//! divisibility constraints (`% == 0`, `!=` against a multiple) that
//! intervals alone cannot decide.

pub mod congruence;
pub mod count;
pub mod diagnostics;

use crate::interval::{Interval, IvProg};
use crate::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};
use crate::space::NodeTarget;

pub use congruence::{cg_of_bind, cg_of_values, eval_product, reduce, Congruence, Product};
pub use count::{CountBudget, CountStats, Counter, DescentStep, LevelEntry, LevelStats};
pub use diagnostics::{Diagnostic, LintReport, LintSummary, Severity};

/// What the engine does with lint findings before a sweep (configured via
/// `EngineOptions` in `beast-engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Run the analyzer and refuse to sweep when any error-severity
    /// diagnostic is found.
    Deny,
    /// Run the analyzer and record the summary in sweep telemetry (the
    /// default: findings surface in `SweepReport` JSON, never block).
    #[default]
    Warn,
    /// Skip the analyzer entirely.
    Allow,
}

/// Pre-sweep gate entry point: run every pass over the lowered plan.
///
/// Identical to [`analyze`]; the alias exists so call sites read as what
/// they are (`analyze::check_space(&lp)` guarding an engine build).
pub fn check_space(lp: &LoweredPlan) -> LintReport {
    analyze(lp)
}

/// Run all lint passes over a lowered plan and return the findings sorted
/// by (code, name) for deterministic output.
pub fn analyze(lp: &LoweredPlan) -> LintReport {
    let mut diags = Vec::new();
    walk_passes(lp, &mut diags);
    subsumption_pass(lp, &mut diags);
    unused_pass(lp, &mut diags);
    shadow_pass(lp, &mut diags);
    diags.sort_by(|a, b| (a.code, &a.name).cmp(&(b.code, &b.name)));
    LintReport { diagnostics: diags }
}

/// [`analyze`] plus the exact counting pass with the default
/// [`CountBudget`]: BE009 (exact survivor count and survival rate), BE010
/// (survival rate below 1e-4) and, where the abstract domains could not
/// prove emptiness but the exact count is zero, a count-witnessed BE001.
///
/// Counting is budgeted but not free — this entry point is for the linter
/// CLI and reports, not for the per-build engine gate.
pub fn analyze_with_counts(lp: &LoweredPlan) -> LintReport {
    analyze_with_counts_budget(lp, count::CountBudget::default())
}

/// [`analyze_with_counts`] under an explicit work budget. When the budget
/// is exhausted or a domain fails to realize, the count-powered
/// diagnostics are skipped and the abstract report returned unchanged.
pub fn analyze_with_counts_budget(lp: &LoweredPlan, budget: CountBudget) -> LintReport {
    let mut report = analyze(lp);
    let mut counter = Counter::with_budget(lp, budget);
    let Ok(Some(survivors)) = counter.total() else { return report };
    let Ok(Some(tuples)) = Counter::tuples_with_budget(lp, budget).total() else {
        return report;
    };
    let name = lp.plan.space().name().to_string();
    let rate = if tuples == 0 { 0.0 } else { survivors as f64 / tuples as f64 };
    let diags = &mut report.diagnostics;
    diags.push(Diagnostic {
        severity: Severity::Info,
        code: "BE009",
        name: name.clone(),
        message: format!(
            "exact count: {survivors} survivor(s) of {tuples} tuple(s) \
             (survival rate {rate:.3e})"
        ),
        suggestion: None,
    });
    if survivors == 0 && !diags.iter().any(|d| d.code == "BE001") {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "BE001",
            name: name.clone(),
            message: "the exact counting pass proves the space empty: every \
                      tuple is rejected"
                .into(),
            suggestion: Some(
                "the abstract domains cannot name the culprit; bisect by \
                 removing constraints and re-counting"
                    .into(),
            ),
        });
    } else if survivors > 0 && rate < 1e-4 {
        diags.push(Diagnostic {
            severity: Severity::Warning,
            code: "BE010",
            name,
            message: format!(
                "survival rate {rate:.3e} is below 1e-4: rejection sampling \
                 is impractical ({} tuples per survivor)",
                tuples / survivors
            ),
            suggestion: Some(
                "use the count-weighted direct sampler (zero rejections) or \
                 relax the tightest constraints"
                    .into(),
            ),
        });
    }
    diags.sort_by(|a, b| (a.code, &a.name).cmp(&(b.code, &b.name)));
    report
}

/// Evaluate one lowered expression over the product domain.
fn eval_expr(
    e: &IntExpr,
    iv_env: &[Interval],
    cg_env: &[Congruence],
    stack: &mut Vec<Product>,
) -> Product {
    eval_product(&IvProg::compile(e), iv_env, cg_env, stack)
}

/// Apply `f` to every slot the expression reads.
fn for_each_slot(e: &IntExpr, f: &mut impl FnMut(u32)) {
    match e {
        IntExpr::Const(_) => {}
        IntExpr::Slot(s) => f(*s),
        IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => for_each_slot(a, f),
        IntExpr::Bin(_, a, b) | IntExpr::Call2(_, a, b) => {
            for_each_slot(a, f);
            for_each_slot(b, f);
        }
        IntExpr::Ternary(c, t, x) => {
            for_each_slot(c, f);
            for_each_slot(t, f);
            for_each_slot(x, f);
        }
    }
}

/// The single env walk: tracks the interval × congruence hull of every slot
/// across the plan and emits the environment-dependent diagnostics
/// (BE001 empty space, BE002 dead check, BE006 hoistable check, BE007
/// fallible define, BE008 overflow risk).
fn walk_passes(lp: &LoweredPlan, diags: &mut Vec<Diagnostic>) {
    let space = lp.plan.space();
    let n = lp.n_slots as usize;
    let mut iv_env = vec![Interval::TOP; n];
    let mut cg_env = vec![Congruence::top(); n];
    let mut stack = Vec::new();
    // Loop level at which each slot's value becomes available (-1 =
    // preamble); for derived slots, the transitive max over their reads, so
    // hoistability judgments see through defines.
    let mut slot_level: Vec<i64> = vec![-1; n];
    let mut cur_level: i64 = -1;

    let needed_level = |e: &IntExpr, slot_level: &[i64]| -> i64 {
        let mut need = -1i64;
        for_each_slot(e, &mut |s| need = need.max(slot_level[s as usize]));
        need
    };

    for step in &lp.steps {
        match step {
            LStep::Bind { slot, depth, domain, .. } => {
                cur_level = *depth as i64;
                slot_level[*slot as usize] = cur_level;
                let (iv, cg) = match domain {
                    LIter::Range { start, stop, step } => {
                        let (sa, cga) = eval_expr(start, &iv_env, &cg_env, &mut stack);
                        let (so, _) = eval_expr(stop, &iv_env, &cg_env, &mut stack);
                        let (_, cgs) = eval_expr(step, &iv_env, &cg_env, &mut stack);
                        // Stride-aware value hull, mirroring the constraint
                        // scheduler's `env_step`: a constant-sign stride
                        // bounds executed iterations on the start side.
                        let iv = match step.as_const() {
                            Some(k) if k > 0 => Interval {
                                lo: sa.iv.lo,
                                hi: so.iv.hi.saturating_sub(1).max(sa.iv.lo),
                            },
                            Some(k) if k < 0 => Interval {
                                lo: so.iv.lo.saturating_add(1).min(sa.iv.hi),
                                hi: sa.iv.hi,
                            },
                            _ => crate::interval::range_value_hull(sa.iv, so.iv),
                        };
                        (iv, cg_of_bind(cga, cgs))
                    }
                    LIter::Values(v) => (
                        Interval {
                            lo: v.iter().copied().min().unwrap_or(0),
                            hi: v.iter().copied().max().unwrap_or(0),
                        },
                        cg_of_values(v),
                    ),
                    LIter::Opaque { .. } => (Interval::TOP, Congruence::top()),
                };
                iv_env[*slot as usize] = iv;
                cg_env[*slot as usize] = cg;
            }
            LStep::Define { derived, slot, body } => {
                let name = &space.deriveds()[*derived].name;
                match body {
                    LBody::Expr(e) => {
                        let (o, cg) = eval_expr(e, &iv_env, &cg_env, &mut stack);
                        if !o.clean {
                            diags.push(Diagnostic {
                                severity: Severity::Warning,
                                code: "BE007",
                                name: name.to_string(),
                                message: "may fail at runtime: a divisor's interval \
                                          contains 0"
                                    .into(),
                                suggestion: Some(format!(
                                    "guard the division in `{}` or constrain its \
                                     divisor away from 0",
                                    e.render_c(&lp.slot_names)
                                )),
                            });
                        } else if o.widened {
                            diags.push(overflow_diag(name, e, lp));
                        }
                        iv_env[*slot as usize] = o.iv;
                        cg_env[*slot as usize] = cg;
                        slot_level[*slot as usize] = needed_level(e, &slot_level);
                    }
                    LBody::Opaque => {
                        iv_env[*slot as usize] = Interval::TOP;
                        cg_env[*slot as usize] = Congruence::top();
                        slot_level[*slot as usize] = cur_level;
                    }
                }
            }
            LStep::Check { constraint, body } => {
                let name = &space.constraints()[*constraint].name;
                let LBody::Expr(e) = body else { continue };
                let (o, cg) = eval_expr(e, &iv_env, &cg_env, &mut stack);
                if o.clean && (!o.iv.contains(0) || cg.always_nonzero()) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        code: "BE001",
                        name: name.to_string(),
                        message: "statically rejects every point: the search space \
                                  is provably empty"
                            .into(),
                        suggestion: Some(format!(
                            "the predicate `{}` is always true under the declared \
                             domains; relax or remove it",
                            e.render_c(&lp.slot_names)
                        )),
                    });
                } else if o.clean
                    && (o.iv == Interval::point(0) || cg.as_point() == Some(0))
                {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "BE002",
                        name: name.to_string(),
                        message: "can never reject a point: dead check".into(),
                        suggestion: Some(format!(
                            "the predicate `{}` is always false under the declared \
                             domains; remove it",
                            e.render_c(&lp.slot_names)
                        )),
                    });
                } else if o.clean && o.widened {
                    diags.push(overflow_diag(name, e, lp));
                }
                let needed = needed_level(e, &slot_level);
                if needed < cur_level {
                    diags.push(Diagnostic {
                        severity: Severity::Info,
                        code: "BE006",
                        name: name.to_string(),
                        message: format!(
                            "evaluated at loop level {cur_level} but (after \
                             simplification) reads nothing bound below level \
                             {needed}: hoistable"
                        ),
                        suggestion: Some(
                            "rewrite the definitions it references so the planner \
                             sees the smaller dependency set"
                                .into(),
                        ),
                    });
                }
            }
            LStep::Visit => {}
        }
    }
}

fn overflow_diag(name: &str, e: &IntExpr, lp: &LoweredPlan) -> Diagnostic {
    Diagnostic {
        severity: Severity::Warning,
        code: "BE008",
        name: name.to_string(),
        message: "arithmetic can provably exceed the i64 range and wrap at \
                  runtime"
            .into(),
        suggestion: Some(format!(
            "tighten the domains feeding `{}` so intermediates stay in range",
            e.render_c(&lp.slot_names)
        )),
    }
}

/// Threshold family of a normalized comparison: `lhs >= t` or `lhs <= t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Fires when `lhs >= t`.
    Lower,
    /// Fires when `lhs <= t`.
    Upper,
}

/// Normalize `lhs OP const` / `const OP rhs` comparisons into
/// `(expr, family, inclusive threshold)`.
fn normalize(e: &IntExpr) -> Option<(&IntExpr, Family, i64)> {
    let IntExpr::Bin(op, a, b) = e else { return None };
    let (lhs, op, c) = if let Some(c) = b.as_const() {
        (&**a, *op, c)
    } else if let Some(c) = a.as_const() {
        // `c OP rhs` flips to `rhs OP' c`.
        let flipped = match op {
            IntBinOp::Lt => IntBinOp::Gt,
            IntBinOp::Le => IntBinOp::Ge,
            IntBinOp::Gt => IntBinOp::Lt,
            IntBinOp::Ge => IntBinOp::Le,
            _ => return None,
        };
        (&**b, flipped, c)
    } else {
        return None;
    };
    match op {
        IntBinOp::Ge => Some((lhs, Family::Lower, c)),
        IntBinOp::Gt => Some((lhs, Family::Lower, c.checked_add(1)?)),
        IntBinOp::Le => Some((lhs, Family::Upper, c)),
        IntBinOp::Lt => Some((lhs, Family::Upper, c.checked_sub(1)?)),
        _ => None,
    }
}

/// BE003: a constraint whose rejection set is contained in another
/// same-class constraint's rejection set is redundant. Detected for
/// structurally identical left-hand sides compared against constant
/// thresholds (`x > 10` is subsumed by `x > 5`).
fn subsumption_pass(lp: &LoweredPlan, diags: &mut Vec<Diagnostic>) {
    let space = lp.plan.space();
    let checks: Vec<(usize, &IntExpr, Family, i64)> = lp
        .steps
        .iter()
        .filter_map(|s| match s {
            LStep::Check { constraint, body: LBody::Expr(e) } => {
                normalize(e).map(|(lhs, fam, t)| (*constraint, lhs, fam, t))
            }
            _ => None,
        })
        .collect();
    for &(ci, lhs_i, fam_i, t_i) in &checks {
        let covered_by = checks.iter().find(|&&(cj, lhs_j, fam_j, t_j)| {
            cj != ci
                && fam_j == fam_i
                && lhs_j == lhs_i
                && space.constraints()[cj].class == space.constraints()[ci].class
                && match fam_i {
                    // Fire-set {x >= t_i} ⊆ {x >= t_j} iff t_i >= t_j.
                    Family::Lower => t_i >= t_j,
                    Family::Upper => t_i <= t_j,
                }
                // Identical fire-sets: keep the earlier definition.
                && (t_i != t_j || cj < ci)
        });
        if let Some(&(cj, ..)) = covered_by {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "BE003",
                name: space.constraints()[ci].name.to_string(),
                message: format!(
                    "every point it rejects is already rejected by `{}`: redundant",
                    space.constraints()[cj].name
                ),
                suggestion: Some("remove the subsumed constraint".into()),
            });
        }
    }
}

/// BE004: definitions nothing depends on. A derived variable nobody reads
/// is wasted work per point (warning); an iterator nothing reads is a pure
/// enumeration dimension (info — often intentional, e.g. a seed).
fn unused_pass(lp: &LoweredPlan, diags: &mut Vec<Diagnostic>) {
    let space = lp.plan.space();
    let dag = space.dag();
    for v in 0..dag.len() {
        if !dag.dependents(v).is_empty() {
            continue;
        }
        match space.node_target(v) {
            NodeTarget::Derived(d) => diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "BE004",
                name: space.deriveds()[d].name.to_string(),
                message: "derived variable is never read by any constraint, \
                          derived variable or iterator bound"
                    .into(),
                suggestion: Some("remove it (computed per point, used by nothing)".into()),
            }),
            NodeTarget::Iter(i) => diags.push(Diagnostic {
                severity: Severity::Info,
                code: "BE004",
                name: space.iters()[i].name.to_string(),
                message: "iterator is not read by any constraint or definition: \
                          pure enumeration dimension"
                    .into(),
                suggestion: None,
            }),
            NodeTarget::Constraint(_) => {}
        }
    }
}

/// Names of the expression builtins a space symbol may shadow in generated
/// code.
const BUILTIN_NAMES: [&str; 6] = ["min", "max", "abs", "div_ceil", "gcd", "round_up"];

/// C (and CUDA) keywords that are valid BEAST identifiers but break the C
/// source generator.
const C_KEYWORDS: [&str; 34] = [
    "auto", "break", "case", "char", "const", "continue", "default", "do", "double",
    "else", "enum", "extern", "float", "for", "goto", "if", "inline", "int", "long",
    "register", "restrict", "return", "short", "signed", "sizeof", "static", "struct",
    "switch", "typedef", "union", "unsigned", "void", "volatile", "while",
];

/// BE005: space symbols that collide with builtin function names or C
/// keywords. The builder only rejects duplicates *among* space symbols, so
/// these are constructible and miscompile generated sources.
fn shadow_pass(lp: &LoweredPlan, diags: &mut Vec<Diagnostic>) {
    let space = lp.plan.space();
    let mut names: Vec<&str> = space.consts().iter().map(|(n, _)| &**n).collect();
    names.extend(space.iters().iter().map(|d| &*d.name));
    names.extend(space.deriveds().iter().map(|d| &*d.name));
    for name in names {
        let what = if BUILTIN_NAMES.contains(&name) {
            "an expression builtin"
        } else if C_KEYWORDS.contains(&name) {
            "a C keyword"
        } else {
            continue;
        };
        diags.push(Diagnostic {
            severity: Severity::Warning,
            code: "BE005",
            name: name.to_string(),
            message: format!("shadows {what}: generated source will not compile"),
            suggestion: Some(format!("rename `{name}` (e.g. `{name}_`)")),
        });
    }
}
