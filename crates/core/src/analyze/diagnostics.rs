//! The diagnostics model shared by every lint pass: severities, structured
//! diagnostics with stable codes, and the aggregate report surfaced through
//! `repro lint` and the engine's pre-sweep gate.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The space is provably broken (e.g. statically empty): a sweep would
    /// be a waste of machine time. The engine's `deny` gate refuses to run.
    Error,
    /// Almost certainly a mistake in the space description, but the sweep
    /// still produces meaningful results.
    Warning,
    /// Noteworthy structure, not necessarily wrong.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One structured finding from a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (`BE001`…`BE008`); see `DESIGN.md`.
    pub code: &'static str,
    /// The definition the finding anchors to (constraint, iterator, derived
    /// or constant name).
    pub name: String,
    /// Human-readable explanation.
    pub message: String,
    /// Suggested fix, when the pass can propose one.
    pub suggestion: Option<String>,
}

/// Diagnostic counts by severity — the compact form embedded in
/// `SweepReport` JSON next to the pruning counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Number of error-severity diagnostics.
    pub errors: u64,
    /// Number of warning-severity diagnostics.
    pub warnings: u64,
    /// Number of info-severity diagnostics.
    pub infos: u64,
}

/// The result of running every lint pass over one lowered plan.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (code, name) for deterministic output.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Counts by severity.
    pub fn summary(&self) -> LintSummary {
        let mut s = LintSummary::default();
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => s.errors += 1,
                Severity::Warning => s.warnings += 1,
                Severity::Info => s.infos += 1,
            }
        }
        s
    }

    /// True when any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Render as compiler-style text, one finding per line (plus an
    /// indented suggestion line when present).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}] {}: {}\n",
                d.severity, d.code, d.name, d.message
            ));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("  suggestion: {s}\n"));
            }
        }
        let sum = self.summary();
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            sum.errors, sum.warnings, sum.infos
        ));
        out
    }

    /// Render as a JSON document (hand-rolled like the telemetry module —
    /// the workspace deliberately has no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"severity\": \"{}\", \"code\": \"{}\", \"name\": \"{}\", \"message\": \"{}\"",
                d.severity,
                d.code,
                json_escape(&d.name),
                json_escape(&d.message)
            ));
            match &d.suggestion {
                Some(s) => out.push_str(&format!(", \"suggestion\": \"{}\"}}", json_escape(s))),
                None => out.push_str(", \"suggestion\": null}"),
            }
        }
        let sum = self.summary();
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"infos\": {}}}\n}}\n",
            sum.errors, sum.warnings, sum.infos
        ));
        out
    }
}

/// Escape a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    severity: Severity::Error,
                    code: "BE001",
                    name: "impossible".into(),
                    message: "rejects every point".into(),
                    suggestion: Some("relax the \"bound\"".into()),
                },
                Diagnostic {
                    severity: Severity::Info,
                    code: "BE004",
                    name: "tex_a".into(),
                    message: "never read".into(),
                    suggestion: None,
                },
            ],
        }
    }

    #[test]
    fn summary_counts_by_severity() {
        let sum = sample().summary();
        assert_eq!(sum, LintSummary { errors: 1, warnings: 0, infos: 1 });
        assert!(sample().has_errors());
        assert!(!LintReport::default().has_errors());
    }

    #[test]
    fn text_rendering_is_compiler_style() {
        let text = sample().render_text();
        assert!(text.contains("error[BE001] impossible: rejects every point"));
        assert!(text.contains("  suggestion: relax"));
        assert!(text.contains("1 error(s), 0 warning(s), 1 info(s)"));
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let json = sample().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("relax the \\\"bound\\\""));
        assert!(json.contains("\"suggestion\": null"));
        assert!(json.contains("\"errors\": 1"));
    }
}
