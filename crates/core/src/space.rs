//! The search space: named constants, iterators, derived variables and
//! constraints, with the dependency DAG built at construction time.
//!
//! This is the Rust analog of a BEAST space description file: the user lists
//! definitions in any order (deferred forms may even reference names defined
//! later, Section V), and [`SpaceBuilder::build`] resolves names, extracts
//! dependencies, checks for cycles and produces an immutable [`Space`] ready
//! for planning and evaluation.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::constraint::{ConstraintClass, ConstraintFn, ConstraintKind};
use crate::dag::{Dag, NodeKind};
use crate::derived::{DerivedFn, DerivedKind};
use crate::error::{EvalError, SpaceError};
use crate::expr::{Bindings, E};
use crate::iterator::{IterKind, Realized};
use crate::value::Value;

/// One search-space dimension.
#[derive(Debug, Clone)]
pub struct IterDef {
    /// Variable name bound by this dimension's loop.
    pub name: Arc<str>,
    /// How the domain is produced.
    pub kind: IterKind,
}

/// One derived variable.
#[derive(Debug, Clone)]
pub struct DerivedDef {
    /// Variable name.
    pub name: Arc<str>,
    /// How the value is computed.
    pub kind: DerivedKind,
}

/// One pruning constraint.
#[derive(Debug, Clone)]
pub struct ConstraintDef {
    /// Constraint name (for statistics and reports).
    pub name: Arc<str>,
    /// Hard / soft / correctness classification.
    pub class: ConstraintClass,
    /// The predicate; `true` ⇒ prune.
    pub kind: ConstraintKind,
}

/// An immutable, validated search space.
#[derive(Debug)]
pub struct Space {
    name: String,
    consts: Vec<(Arc<str>, Value)>,
    iters: Vec<IterDef>,
    deriveds: Vec<DerivedDef>,
    constraints: Vec<ConstraintDef>,
    dag: Dag,
}

impl Space {
    /// Start building a space.
    pub fn builder(name: &str) -> SpaceBuilder {
        SpaceBuilder {
            name: name.to_string(),
            consts: Vec::new(),
            iters: Vec::new(),
            deriveds: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The space's name (used in reports and generated code).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The named constants, in definition order.
    pub fn consts(&self) -> &[(Arc<str>, Value)] {
        &self.consts
    }

    /// The iterators, in definition order.
    pub fn iters(&self) -> &[IterDef] {
        &self.iters
    }

    /// The derived variables, in definition order.
    pub fn deriveds(&self) -> &[DerivedDef] {
        &self.deriveds
    }

    /// The constraints, in definition order.
    pub fn constraints(&self) -> &[ConstraintDef] {
        &self.constraints
    }

    /// The dependency DAG. Node ids: `0..iters.len()` are iterators,
    /// then derived variables, then constraints.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// DAG node id of iterator `i`.
    pub fn iter_node(&self, i: usize) -> usize {
        i
    }

    /// DAG node id of derived variable `i`.
    pub fn derived_node(&self, i: usize) -> usize {
        self.iters.len() + i
    }

    /// DAG node id of constraint `i`.
    pub fn constraint_node(&self, i: usize) -> usize {
        self.iters.len() + self.deriveds.len() + i
    }

    /// Reverse of the node-id mapping.
    pub fn node_target(&self, node: usize) -> NodeTarget {
        if node < self.iters.len() {
            NodeTarget::Iter(node)
        } else if node < self.iters.len() + self.deriveds.len() {
            NodeTarget::Derived(node - self.iters.len())
        } else {
            NodeTarget::Constraint(node - self.iters.len() - self.deriveds.len())
        }
    }

    /// All variable names an engine must be able to bind: constants,
    /// iterators and derived variables, in that order. (Constraints produce
    /// no bindings.)
    pub fn variable_names(&self) -> Vec<Arc<str>> {
        let mut names =
            Vec::with_capacity(self.consts.len() + self.iters.len() + self.deriveds.len());
        names.extend(self.consts.iter().map(|(n, _)| n.clone()));
        names.extend(self.iters.iter().map(|d| d.name.clone()));
        names.extend(self.deriveds.iter().map(|d| d.name.clone()));
        names
    }

    /// True if any definition contains an opaque Rust closure; such spaces
    /// cannot be translated to C/Python/... source by `beast-codegen`.
    pub fn has_opaque_nodes(&self) -> bool {
        self.iters.iter().any(|d| d.kind.is_opaque())
            || self.deriveds.iter().any(|d| d.kind.is_opaque())
            || self.constraints.iter().any(|d| d.kind.is_opaque())
    }

    /// An upper bound on the raw (pre-pruning) cardinality of the space,
    /// realizing each independent iterator and assuming dependent iterators
    /// hit their maximal domain; `None` when a domain cannot be bounded
    /// without bindings.
    ///
    /// Only level-0 iterators can be realized without bindings; for the rest
    /// this returns `None`, which is the honest answer.
    pub fn static_cardinality(&self) -> Option<u128> {
        let consts = ConstBindings(&self.consts);
        let mut total: u128 = 1;
        for (i, def) in self.iters.iter().enumerate() {
            if self.dag.level(self.iter_node(i)) != 0 {
                return None;
            }
            let r = def.kind.realize(&consts).ok()?;
            total = total.checked_mul(r.len() as u128)?;
        }
        Some(total)
    }

    /// Realize iterator `i` against the given bindings (convenience).
    pub fn realize_iter(
        &self,
        i: usize,
        env: &dyn Bindings,
    ) -> Result<Realized, EvalError> {
        self.iters[i].kind.realize(env)
    }
}

/// What a DAG node id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTarget {
    /// Iterator index.
    Iter(usize),
    /// Derived-variable index.
    Derived(usize),
    /// Constraint index.
    Constraint(usize),
}

/// Bindings view over the constant table only.
pub struct ConstBindings<'a>(pub &'a [(Arc<str>, Value)]);

impl Bindings for ConstBindings<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        self.0
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v.clone())
    }
}

/// Builder for [`Space`]. Definitions may be added in any order; name
/// resolution happens in [`SpaceBuilder::build`].
pub struct SpaceBuilder {
    name: String,
    consts: Vec<(Arc<str>, Value)>,
    iters: Vec<IterDef>,
    deriveds: Vec<DerivedDef>,
    constraints: Vec<ConstraintDef>,
}

impl SpaceBuilder {
    /// Add a named constant (device parameters, settings such as
    /// `precision`, Fig. 10).
    pub fn constant(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.consts.push((Arc::from(name), value.into()));
        self
    }

    /// Add an iterator dimension.
    pub fn iter(mut self, name: &str, kind: IterKind) -> Self {
        self.iters.push(IterDef { name: Arc::from(name), kind });
        self
    }

    /// Add a `range(start, stop)` iterator (unit step).
    pub fn range(self, name: &str, start: impl Into<E>, stop: impl Into<E>) -> Self {
        self.iter(name, crate::iterator::build::range(start, stop))
    }

    /// Add a `range(start, stop, step)` iterator.
    pub fn range_step(
        self,
        name: &str,
        start: impl Into<E>,
        stop: impl Into<E>,
        step: impl Into<E>,
    ) -> Self {
        self.iter(name, crate::iterator::build::range_step(start, stop, step))
    }

    /// Add an explicit value-list iterator.
    pub fn list<V: Into<Value>>(self, name: &str, values: impl IntoIterator<Item = V>) -> Self {
        self.iter(name, crate::iterator::build::list(values))
    }

    /// Add a deferred iterator with declared dependencies.
    pub fn deferred_iter<F>(self, name: &str, deps: &[&str], f: F) -> Self
    where
        F: Fn(&dyn Bindings) -> Result<Realized, EvalError> + Send + Sync + 'static,
    {
        self.iter(name, crate::iterator::build::deferred(deps, f))
    }

    /// Add a closure (generator) iterator with declared dependencies.
    pub fn closure_iter<F, I>(self, name: &str, deps: &[&str], f: F) -> Self
    where
        F: Fn(&dyn Bindings) -> I + Send + Sync + 'static,
        I: Iterator<Item = Value> + Send + 'static,
    {
        self.iter(name, crate::iterator::build::closure(deps, f))
    }

    /// Add an expression derived variable.
    pub fn derived(mut self, name: &str, e: E) -> Self {
        self.deriveds.push(DerivedDef {
            name: Arc::from(name),
            kind: DerivedKind::Expr(e.into_expr()),
        });
        self
    }

    /// Add a deferred derived variable with declared dependencies.
    pub fn derived_fn<F>(mut self, name: &str, deps: &[&str], f: F) -> Self
    where
        F: Fn(&dyn Bindings) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        self.deriveds.push(DerivedDef {
            name: Arc::from(name),
            kind: DerivedKind::Deferred {
                deps: deps.iter().map(|s| Arc::from(*s)).collect(),
                f: Arc::new(f) as Arc<DerivedFn>,
            },
        });
        self
    }

    /// Add an expression constraint; `true` ⇒ prune.
    pub fn constraint(mut self, name: &str, class: ConstraintClass, e: E) -> Self {
        self.constraints.push(ConstraintDef {
            name: Arc::from(name),
            class,
            kind: ConstraintKind::Expr(e.into_expr()),
        });
        self
    }

    /// Add a deferred constraint with declared dependencies; `true` ⇒ prune.
    pub fn constraint_fn<F>(
        mut self,
        name: &str,
        class: ConstraintClass,
        deps: &[&str],
        f: F,
    ) -> Self
    where
        F: Fn(&dyn Bindings) -> Result<bool, EvalError> + Send + Sync + 'static,
    {
        self.constraints.push(ConstraintDef {
            name: Arc::from(name),
            class,
            kind: ConstraintKind::Deferred {
                deps: deps.iter().map(|s| Arc::from(*s)).collect(),
                f: Arc::new(f) as Arc<ConstraintFn>,
            },
        });
        self
    }

    /// Resolve names, build the dependency DAG and validate the space.
    pub fn build(self) -> Result<Arc<Space>, SpaceError> {
        let SpaceBuilder { name, consts, iters, deriveds, constraints } = self;

        if iters.is_empty() {
            return Err(SpaceError::Empty);
        }

        // Validate identifiers and detect duplicates across all namespaces.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let all_names = consts
            .iter()
            .map(|(n, _)| n)
            .chain(iters.iter().map(|d| &d.name))
            .chain(deriveds.iter().map(|d| &d.name))
            .chain(constraints.iter().map(|d| &d.name));
        for n in all_names {
            if !is_identifier(n) {
                return Err(SpaceError::InvalidName(n.to_string()));
            }
            if !seen.insert(n) {
                return Err(SpaceError::DuplicateName(n.to_string()));
            }
        }

        // Name -> DAG node id for value-producing definitions. Constants are
        // pre-bound and are not DAG nodes.
        let n_iters = iters.len();
        let n_derived = deriveds.len();
        let mut node_of: HashMap<&str, usize> = HashMap::new();
        for (i, d) in iters.iter().enumerate() {
            node_of.insert(&d.name, i);
        }
        for (i, d) in deriveds.iter().enumerate() {
            node_of.insert(&d.name, n_iters + i);
        }
        let const_names: BTreeSet<&str> = consts.iter().map(|(n, _)| &**n).collect();

        let n_nodes = n_iters + n_derived + constraints.len();
        let mut dag_names = Vec::with_capacity(n_nodes);
        let mut dag_kinds = Vec::with_capacity(n_nodes);
        let mut dag_deps: Vec<Vec<usize>> = Vec::with_capacity(n_nodes);

        let resolve =
            |referrer: &Arc<str>, raw: BTreeSet<Arc<str>>| -> Result<Vec<usize>, SpaceError> {
                let mut out = Vec::new();
                for dep in raw {
                    if const_names.contains(&*dep) {
                        continue; // constants are always bound
                    }
                    match node_of.get(&*dep) {
                        Some(&id) => out.push(id),
                        None => {
                            return Err(SpaceError::UnknownName {
                                referrer: referrer.to_string(),
                                missing: dep.to_string(),
                            })
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                Ok(out)
            };

        for d in &iters {
            let mut raw = BTreeSet::new();
            d.kind.collect_deps(&mut raw);
            dag_names.push(d.name.clone());
            dag_kinds.push(NodeKind::Iter);
            dag_deps.push(resolve(&d.name, raw)?);
        }
        for d in &deriveds {
            let mut raw = BTreeSet::new();
            d.kind.collect_deps(&mut raw);
            dag_names.push(d.name.clone());
            dag_kinds.push(NodeKind::Derived);
            dag_deps.push(resolve(&d.name, raw)?);
        }
        for d in &constraints {
            let mut raw = BTreeSet::new();
            d.kind.collect_deps(&mut raw);
            dag_names.push(d.name.clone());
            dag_kinds.push(NodeKind::Constraint);
            dag_deps.push(resolve(&d.name, raw)?);
        }

        let dag = Dag::new(dag_names, dag_kinds, dag_deps)?;

        Ok(Arc::new(Space { name, consts, iters, deriveds, constraints, dag }))
    }
}

/// True for `[A-Za-z_][A-Za-z0-9_]*` — valid in every codegen backend.
fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;

    fn small_space() -> Arc<Space> {
        // A miniature GEMM-like space.
        Space::builder("mini")
            .constant("max_threads", 64)
            .range("dim_m", 1, 9)
            .range("dim_n", 1, 9)
            .range_step("blk_m", var("dim_m"), 33, var("dim_m"))
            .derived("threads", var("dim_m") * var("dim_n"))
            .constraint(
                "over_max_threads",
                ConstraintClass::Hard,
                var("threads").gt(var("max_threads")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_exposes_definitions() {
        let s = small_space();
        assert_eq!(s.name(), "mini");
        assert_eq!(s.consts().len(), 1);
        assert_eq!(s.iters().len(), 3);
        assert_eq!(s.deriveds().len(), 1);
        assert_eq!(s.constraints().len(), 1);
        assert!(!s.has_opaque_nodes());
    }

    #[test]
    fn dag_levels_follow_dependencies() {
        let s = small_space();
        let dag = s.dag();
        assert_eq!(dag.level(s.iter_node(0)), 0); // dim_m
        assert_eq!(dag.level(s.iter_node(2)), 1); // blk_m depends on dim_m
        assert_eq!(dag.level(s.derived_node(0)), 1); // threads
        assert_eq!(dag.level(s.constraint_node(0)), 2); // over_max_threads
    }

    #[test]
    fn node_target_round_trip() {
        let s = small_space();
        assert_eq!(s.node_target(s.iter_node(1)), NodeTarget::Iter(1));
        assert_eq!(s.node_target(s.derived_node(0)), NodeTarget::Derived(0));
        assert_eq!(s.node_target(s.constraint_node(0)), NodeTarget::Constraint(0));
    }

    #[test]
    fn duplicate_name_rejected() {
        let err = Space::builder("dup")
            .range("x", 0, 4)
            .derived("x", var("x") + 1)
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateName("x".into()));
    }

    #[test]
    fn unknown_name_rejected() {
        let err = Space::builder("bad")
            .range("x", 0, var("missing"))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SpaceError::UnknownName { referrer: "x".into(), missing: "missing".into() }
        );
    }

    #[test]
    fn empty_space_rejected() {
        assert_eq!(Space::builder("e").build().unwrap_err(), SpaceError::Empty);
    }

    #[test]
    fn invalid_identifier_rejected() {
        let err = Space::builder("bad")
            .range("2x", 0, 4)
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::InvalidName("2x".into()));
    }

    #[test]
    fn cycle_rejected() {
        let err = Space::builder("cyc")
            .range_step("a", 0, var("b"), 1)
            .range_step("b", 0, var("a"), 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::Cycle(_)));
    }

    #[test]
    fn deferred_definitions_out_of_order() {
        // Deferred iterators may reference names defined later (Fig. 2).
        let s = Space::builder("deferred")
            .deferred_iter("inner", &["outer"], |env| {
                Ok(Realized::Range { start: 0, stop: env.require_int("outer")?, step: 1 })
            })
            .range("outer", 0, 10)
            .build()
            .unwrap();
        assert_eq!(s.dag().level(s.iter_node(0)), 1);
        assert_eq!(s.dag().level(s.iter_node(1)), 0);
        assert!(s.has_opaque_nodes());
    }

    #[test]
    fn static_cardinality_for_independent_spaces() {
        let s = Space::builder("card")
            .range("a", 0, 10)
            .range("b", 0, 5)
            .build()
            .unwrap();
        assert_eq!(s.static_cardinality(), Some(50));
        // Dependent spaces cannot be bounded statically.
        assert_eq!(small_space().static_cardinality(), None);
    }

    #[test]
    fn variable_names_cover_consts_iters_deriveds() {
        let s = small_space();
        let names = s.variable_names();
        let strs: Vec<&str> = names.iter().map(|n| &**n).collect();
        assert_eq!(
            strs,
            vec!["max_threads", "dim_m", "dim_n", "blk_m", "threads"]
        );
    }

    #[test]
    fn constraint_names_cannot_be_dependencies() {
        let err = Space::builder("bad")
            .range("x", 0, 4)
            .constraint("c", ConstraintClass::Generic, var("x").gt(1))
            .derived("y", var("c") + 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::UnknownName { .. }));
    }
}
