//! Pruning constraints (`@condition` in the paper, Section VI).
//!
//! A constraint evaluates to a boolean for each candidate tuple; following
//! the paper's polarity, **`true` means the point is pruned** (e.g.
//! `over_max_threads` returns true when the block exceeds the hardware
//! thread limit, Fig. 13).
//!
//! Constraints carry a *class* — hard, soft, or correctness (Section IX-E) —
//! used for reporting and for selectively disabling classes in ablation runs.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::expr::{Bindings, Expr};

/// The paper's three classes of pruning constraints, plus a generic bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintClass {
    /// Tied to hardware limits; violating kernels fail to compile or launch.
    Hard,
    /// Performance heuristics; violating kernels run but are guaranteed slow.
    Soft,
    /// Algorithmic assumptions; violating kernels produce wrong results.
    Correctness,
    /// Unclassified.
    Generic,
}

impl fmt::Display for ConstraintClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintClass::Hard => "hard",
            ConstraintClass::Soft => "soft",
            ConstraintClass::Correctness => "correctness",
            ConstraintClass::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// Signature of a deferred constraint body.
pub type ConstraintFn = dyn Fn(&dyn Bindings) -> Result<bool, EvalError> + Send + Sync;

/// How a constraint is computed.
#[derive(Clone)]
pub enum ConstraintKind {
    /// An expression constraint; dependencies extracted automatically.
    Expr(Expr),
    /// A deferred constraint — an opaque function with declared dependencies,
    /// usable in any definition order (Section VI).
    Deferred {
        /// Declared dependencies.
        deps: Vec<Arc<str>>,
        /// The body; `true` ⇒ prune.
        f: Arc<ConstraintFn>,
    },
}

impl fmt::Debug for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintKind::Expr(e) => write!(f, "expr({e})"),
            ConstraintKind::Deferred { deps, .. } => write!(f, "deferred(deps={deps:?})"),
        }
    }
}

impl ConstraintKind {
    /// Collect dependency names.
    pub fn collect_deps(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            ConstraintKind::Expr(e) => e.collect_deps(out),
            ConstraintKind::Deferred { deps, .. } => out.extend(deps.iter().cloned()),
        }
    }

    /// Evaluate; `Ok(true)` means the current point must be pruned.
    pub fn rejects(&self, env: &dyn Bindings) -> Result<bool, EvalError> {
        match self {
            ConstraintKind::Expr(e) => Ok(e.eval(env)?.truthy()),
            ConstraintKind::Deferred { f, .. } => f(env),
        }
    }

    /// True if the body is an opaque Rust closure.
    pub fn is_opaque(&self) -> bool {
        matches!(self, ConstraintKind::Deferred { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;
    use crate::value::Value;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, i64)]) -> HashMap<Arc<str>, Value> {
        pairs
            .iter()
            .map(|(k, v)| (Arc::<str>::from(*k), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn expression_constraint_polarity() {
        // over_max_threads: threads_per_block > max_threads_per_block.
        let c = ConstraintKind::Expr(
            var("threads_per_block").gt(var("max_threads_per_block")).into_expr(),
        );
        assert!(c
            .rejects(&env(&[("threads_per_block", 2048), ("max_threads_per_block", 1024)]))
            .unwrap());
        assert!(!c
            .rejects(&env(&[("threads_per_block", 256), ("max_threads_per_block", 1024)]))
            .unwrap());
    }

    #[test]
    fn deferred_constraint() {
        let c = ConstraintKind::Deferred {
            deps: vec![Arc::from("threads_per_block"), Arc::from("warp_size")],
            f: Arc::new(|env| {
                Ok(env.require_int("threads_per_block")? % env.require_int("warp_size")? != 0)
            }),
        };
        assert!(c
            .rejects(&env(&[("threads_per_block", 48), ("warp_size", 32)]))
            .unwrap());
        assert!(!c
            .rejects(&env(&[("threads_per_block", 64), ("warp_size", 32)]))
            .unwrap());
        assert!(c.is_opaque());
    }

    #[test]
    fn class_display() {
        assert_eq!(ConstraintClass::Hard.to_string(), "hard");
        assert_eq!(ConstraintClass::Correctness.to_string(), "correctness");
    }
}
