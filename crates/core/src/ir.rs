//! Lowered integer IR — the analog of the paper's *generated C code*.
//!
//! The paper's translator converts the declarative Python description into
//! standard C operating on plain `int` variables. This module performs the
//! equivalent lowering: constants (including string-valued settings such as
//! `precision = "double"`, Fig. 10) are folded away at lowering time, every
//! remaining variable becomes a dense *slot* in a flat `i64` array, and all
//! expressions become [`IntExpr`] trees with C arithmetic semantics.
//!
//! The compiled evaluation backend and the bytecode VM execute the lowered
//! plan; the source-code generators print it.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{EvalError, SpaceError};
use crate::expr::{BinOp, Builtin, Expr, UnOp};
use crate::iterator::IterKind;
use crate::plan::{Plan, Step};
use crate::space::Space;
use crate::value::Value;

/// Binary operators on lowered integers. Comparisons and logic produce 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntBinOp {
    /// Wrapping addition (C semantics).
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Trunc-toward-zero division; checks for zero divisor.
    Div,
    /// Floor division; checks for zero divisor.
    FloorDiv,
    /// C remainder; checks for zero divisor.
    Rem,
    /// `<` producing 0/1.
    Lt,
    /// `<=` producing 0/1.
    Le,
    /// `>` producing 0/1.
    Gt,
    /// `>=` producing 0/1.
    Ge,
    /// `==` producing 0/1.
    Eq,
    /// `!=` producing 0/1.
    Ne,
    /// Short-circuiting logical and producing 0/1.
    And,
    /// Short-circuiting logical or producing 0/1.
    Or,
}

/// A lowered integer expression over slots.
#[derive(Debug, Clone, PartialEq)]
pub enum IntExpr {
    /// Literal.
    Const(i64),
    /// Slot read.
    Slot(u32),
    /// Binary operation.
    Bin(IntBinOp, Box<IntExpr>, Box<IntExpr>),
    /// Arithmetic negation.
    Neg(Box<IntExpr>),
    /// Logical not producing 0/1.
    Not(Box<IntExpr>),
    /// Conditional.
    Ternary(Box<IntExpr>, Box<IntExpr>, Box<IntExpr>),
    /// Two-argument builtin (min/max/div_ceil/gcd/round_up).
    Call2(Builtin, Box<IntExpr>, Box<IntExpr>),
    /// Absolute value.
    Abs(Box<IntExpr>),
}

impl IntExpr {
    /// Evaluate against a slot array. Arithmetic wraps like C; division by
    /// zero is a checked error.
    pub fn eval(&self, slots: &[i64]) -> Result<i64, EvalError> {
        match self {
            IntExpr::Const(c) => Ok(*c),
            IntExpr::Slot(s) => Ok(slots[*s as usize]),
            IntExpr::Neg(a) => Ok(a.eval(slots)?.wrapping_neg()),
            IntExpr::Not(a) => Ok(i64::from(a.eval(slots)? == 0)),
            IntExpr::Ternary(c, t, f) => {
                if c.eval(slots)? != 0 {
                    t.eval(slots)
                } else {
                    f.eval(slots)
                }
            }
            IntExpr::Abs(a) => Ok(a.eval(slots)?.wrapping_abs()),
            IntExpr::Bin(op, a, b) => {
                // Short-circuit first.
                match op {
                    IntBinOp::And => {
                        return Ok(if a.eval(slots)? == 0 {
                            0
                        } else {
                            i64::from(b.eval(slots)? != 0)
                        })
                    }
                    IntBinOp::Or => {
                        return Ok(if a.eval(slots)? != 0 {
                            1
                        } else {
                            i64::from(b.eval(slots)? != 0)
                        })
                    }
                    _ => {}
                }
                let x = a.eval(slots)?;
                let y = b.eval(slots)?;
                Ok(match op {
                    IntBinOp::Add => x.wrapping_add(y),
                    IntBinOp::Sub => x.wrapping_sub(y),
                    IntBinOp::Mul => x.wrapping_mul(y),
                    IntBinOp::Div => {
                        if y == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        x.wrapping_div(y)
                    }
                    IntBinOp::FloorDiv => {
                        if y == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        x.div_euclid(y)
                    }
                    IntBinOp::Rem => {
                        if y == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        x.wrapping_rem(y)
                    }
                    IntBinOp::Lt => i64::from(x < y),
                    IntBinOp::Le => i64::from(x <= y),
                    IntBinOp::Gt => i64::from(x > y),
                    IntBinOp::Ge => i64::from(x >= y),
                    IntBinOp::Eq => i64::from(x == y),
                    IntBinOp::Ne => i64::from(x != y),
                    IntBinOp::And | IntBinOp::Or => unreachable!("handled above"),
                })
            }
            IntExpr::Call2(b, x, y) => {
                let a = x.eval(slots)?;
                let c = y.eval(slots)?;
                Ok(match b {
                    Builtin::Min => a.min(c),
                    Builtin::Max => a.max(c),
                    Builtin::DivCeil => {
                        if c == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        (a + c - 1).div_euclid(c)
                    }
                    Builtin::Gcd => {
                        let (mut a, mut b2) = (a.unsigned_abs(), c.unsigned_abs());
                        while b2 != 0 {
                            let t = a % b2;
                            a = b2;
                            b2 = t;
                        }
                        a as i64
                    }
                    Builtin::RoundUp => {
                        if c == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        (a + c - 1).div_euclid(c) * c
                    }
                    Builtin::Abs => unreachable!("Abs is unary"),
                })
            }
        }
    }

    /// If the expression is a constant, its value.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntExpr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Number of IR nodes — the cost proxy used by the constraint scheduler
    /// (`crate::schedule`). Tracks the length of the postfix program an
    /// engine compiles this expression to, up to peephole folding.
    pub fn op_count(&self) -> u32 {
        match self {
            IntExpr::Const(_) | IntExpr::Slot(_) => 1,
            IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => 1 + a.op_count(),
            IntExpr::Bin(_, a, b) | IntExpr::Call2(_, a, b) => {
                1 + a.op_count() + b.op_count()
            }
            IntExpr::Ternary(c, t, f) => 1 + c.op_count() + t.op_count() + f.op_count(),
        }
    }

    /// True if evaluation can never fail or panic for *any* slot values:
    /// no division/remainder by a possibly-zero divisor, and no `div_ceil`/
    /// `round_up` (whose `a + b - 1` can overflow in debug builds).
    ///
    /// Only infallible checks may be reordered by the constraint scheduler —
    /// a rejection by a reordered check must not mask (or unmask) an
    /// evaluation error another check in the same run would have raised.
    pub fn infallible(&self) -> bool {
        match self {
            IntExpr::Const(_) | IntExpr::Slot(_) => true,
            IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => a.infallible(),
            IntExpr::Bin(IntBinOp::Div | IntBinOp::Rem, a, b) => {
                a.infallible() && matches!(b.as_const(), Some(k) if k != 0)
            }
            // `div_euclid` panics on `i64::MIN / -1` in every build profile.
            IntExpr::Bin(IntBinOp::FloorDiv, a, b) => {
                a.infallible() && matches!(b.as_const(), Some(k) if k != 0 && k != -1)
            }
            IntExpr::Bin(_, a, b) => a.infallible() && b.infallible(),
            IntExpr::Call2(Builtin::Min | Builtin::Max | Builtin::Gcd, a, b) => {
                a.infallible() && b.infallible()
            }
            IntExpr::Call2(_, _, _) => false,
            IntExpr::Ternary(c, t, f) => {
                c.infallible() && t.infallible() && f.infallible()
            }
        }
    }

    /// Peephole simplification: constant folding, identity elimination,
    /// branch selection on constant conditions. Applied bottom-up.
    pub fn simplify(self) -> IntExpr {
        match self {
            IntExpr::Const(_) | IntExpr::Slot(_) => self,
            IntExpr::Neg(a) => {
                let a = a.simplify();
                match a.as_const() {
                    Some(c) => IntExpr::Const(c.wrapping_neg()),
                    None => IntExpr::Neg(Box::new(a)),
                }
            }
            IntExpr::Not(a) => {
                let a = a.simplify();
                match a.as_const() {
                    Some(c) => IntExpr::Const(i64::from(c == 0)),
                    None => IntExpr::Not(Box::new(a)),
                }
            }
            IntExpr::Abs(a) => {
                let a = a.simplify();
                match a.as_const() {
                    Some(c) => IntExpr::Const(c.wrapping_abs()),
                    None => IntExpr::Abs(Box::new(a)),
                }
            }
            IntExpr::Ternary(c, t, f) => {
                let c = c.simplify();
                match c.as_const() {
                    Some(v) if v != 0 => t.simplify(),
                    Some(_) => f.simplify(),
                    None => IntExpr::Ternary(
                        Box::new(c),
                        Box::new(t.simplify()),
                        Box::new(f.simplify()),
                    ),
                }
            }
            IntExpr::Call2(b, x, y) => {
                let x = x.simplify();
                let y = y.simplify();
                if let (Some(_), Some(_)) = (x.as_const(), y.as_const()) {
                    let e = IntExpr::Call2(b, Box::new(x.clone()), Box::new(y.clone()));
                    if let Ok(v) = e.eval(&[]) {
                        return IntExpr::Const(v);
                    }
                    return e;
                }
                IntExpr::Call2(b, Box::new(x), Box::new(y))
            }
            IntExpr::Bin(op, a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                if let (Some(_), Some(_)) = (a.as_const(), b.as_const()) {
                    let e = IntExpr::Bin(op, Box::new(a.clone()), Box::new(b.clone()));
                    if let Ok(v) = e.eval(&[]) {
                        return IntExpr::Const(v);
                    }
                    return e;
                }
                // Identities.
                match (op, a.as_const(), b.as_const()) {
                    (IntBinOp::Add, Some(0), _) => return b,
                    (IntBinOp::Add, _, Some(0)) => return a,
                    (IntBinOp::Sub, _, Some(0)) => return a,
                    (IntBinOp::Mul, Some(1), _) => return b,
                    (IntBinOp::Mul, _, Some(1)) => return a,
                    (IntBinOp::Mul, Some(0), _) | (IntBinOp::Mul, _, Some(0)) => {
                        return IntExpr::Const(0)
                    }
                    (IntBinOp::Div, _, Some(1)) | (IntBinOp::FloorDiv, _, Some(1)) => {
                        return a
                    }
                    (IntBinOp::And, Some(0), _) => return IntExpr::Const(0),
                    (IntBinOp::And, Some(_), _) => {
                        return IntExpr::Bin(
                            IntBinOp::Ne,
                            Box::new(b),
                            Box::new(IntExpr::Const(0)),
                        )
                        .simplify()
                    }
                    (IntBinOp::Or, Some(0), _) => {
                        return IntExpr::Bin(
                            IntBinOp::Ne,
                            Box::new(b),
                            Box::new(IntExpr::Const(0)),
                        )
                        .simplify()
                    }
                    (IntBinOp::Or, Some(_), _) => return IntExpr::Const(1),
                    _ => {}
                }
                IntExpr::Bin(op, Box::new(a), Box::new(b))
            }
        }
    }

    /// Render in C syntax with slot names substituted (used by codegen).
    pub fn render_c(&self, names: &[Arc<str>]) -> String {
        match self {
            IntExpr::Const(c) => c.to_string(),
            IntExpr::Slot(s) => names[*s as usize].to_string(),
            IntExpr::Neg(a) => format!("(-{})", a.render_c(names)),
            IntExpr::Not(a) => format!("(!{})", a.render_c(names)),
            IntExpr::Ternary(c, t, f) => format!(
                "({} ? {} : {})",
                c.render_c(names),
                t.render_c(names),
                f.render_c(names)
            ),
            IntExpr::Abs(a) => format!("labs({})", a.render_c(names)),
            IntExpr::Call2(b, x, y) => format!(
                "{}({}, {})",
                b.name(),
                x.render_c(names),
                y.render_c(names)
            ),
            IntExpr::Bin(op, a, b) => {
                let tok = match op {
                    IntBinOp::Add => "+",
                    IntBinOp::Sub => "-",
                    IntBinOp::Mul => "*",
                    IntBinOp::Div | IntBinOp::FloorDiv => "/",
                    IntBinOp::Rem => "%",
                    IntBinOp::Lt => "<",
                    IntBinOp::Le => "<=",
                    IntBinOp::Gt => ">",
                    IntBinOp::Ge => ">=",
                    IntBinOp::Eq => "==",
                    IntBinOp::Ne => "!=",
                    IntBinOp::And => "&&",
                    IntBinOp::Or => "||",
                };
                format!("({} {} {})", a.render_c(names), tok, b.render_c(names))
            }
        }
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn max_slot(e: &IntExpr) -> u32 {
            match e {
                IntExpr::Const(_) => 0,
                IntExpr::Slot(s) => *s + 1,
                IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => max_slot(a),
                IntExpr::Bin(_, a, b) | IntExpr::Call2(_, a, b) => {
                    max_slot(a).max(max_slot(b))
                }
                IntExpr::Ternary(c, t, x) => {
                    max_slot(c).max(max_slot(t)).max(max_slot(x))
                }
            }
        }
        // Display with anonymous slot names.
        let names: Vec<Arc<str>> = (0..max_slot(self))
            .map(|i| Arc::from(format!("s{i}").as_str()))
            .collect();
        f.write_str(&self.render_c(&names))
    }
}

/// A lowered iterator domain.
#[derive(Debug, Clone)]
pub enum LIter {
    /// Range with lowered bound expressions.
    Range {
        /// Inclusive start.
        start: IntExpr,
        /// Exclusive stop.
        stop: IntExpr,
        /// Stride.
        step: IntExpr,
    },
    /// Explicit integer values.
    Values(Vec<i64>),
    /// Deferred/closure iterator realized through the space definition at
    /// index `iter` (opaque to source generators).
    Opaque {
        /// Iterator index in the space.
        iter: usize,
    },
}

impl LIter {
    /// True if the domain cannot be expressed in generated source.
    pub fn is_opaque(&self) -> bool {
        matches!(self, LIter::Opaque { .. })
    }
}

/// A lowered computation body: expression or opaque closure reference.
#[derive(Debug, Clone)]
pub enum LBody {
    /// Lowered expression.
    Expr(IntExpr),
    /// Opaque closure: evaluate through the space definition.
    Opaque,
}

/// A lowered plan step.
#[derive(Debug, Clone)]
pub enum LStep {
    /// Open a loop over iterator `iter`, binding slot `slot`.
    Bind {
        /// Iterator index in the space.
        iter: usize,
        /// Destination slot.
        slot: u32,
        /// Loop depth.
        depth: usize,
        /// Lowered domain.
        domain: LIter,
    },
    /// Compute derived variable `derived` into `slot`.
    Define {
        /// Derived index in the space.
        derived: usize,
        /// Destination slot.
        slot: u32,
        /// Lowered body.
        body: LBody,
    },
    /// Evaluate constraint `constraint`; nonzero ⇒ prune.
    Check {
        /// Constraint index in the space.
        constraint: usize,
        /// Lowered predicate.
        body: LBody,
    },
    /// Survivor reached.
    Visit,
}

/// A plan lowered to slots and integer expressions.
#[derive(Debug, Clone)]
pub struct LoweredPlan {
    /// The source plan.
    pub plan: Plan,
    /// Lowered steps, parallel in order to `plan.steps()`.
    pub steps: Vec<LStep>,
    /// Number of slots (iterators + derived variables).
    pub n_slots: u32,
    /// Slot index → variable name.
    pub slot_names: Vec<Arc<str>>,
}

impl LoweredPlan {
    /// Lower a plan: fold constants, assign slots, lower all expressions.
    pub fn new(plan: &Plan) -> Result<LoweredPlan, SpaceError> {
        let space = plan.space();
        let mut ctx = LowerCtx::new(space);

        let mut steps = Vec::with_capacity(plan.steps().len());
        for step in plan.steps() {
            match *step {
                Step::Bind { iter, depth } => {
                    let def = &space.iters()[iter];
                    let slot = ctx.slot(&def.name);
                    let domain = match &def.kind {
                        IterKind::Range { start, stop, step } => LIter::Range {
                            start: ctx.lower(start)?.simplify(),
                            stop: ctx.lower(stop)?.simplify(),
                            step: ctx.lower(step)?.simplify(),
                        },
                        IterKind::List(values) => {
                            let ints: Result<Vec<i64>, EvalError> =
                                values.iter().map(Value::as_int).collect();
                            match ints {
                                Ok(v) => LIter::Values(v),
                                Err(_) => {
                                    return Err(SpaceError::Lowering(format!(
                                        "iterator `{}` lists non-integer values",
                                        def.name
                                    )))
                                }
                            }
                        }
                        _ => LIter::Opaque { iter },
                    };
                    steps.push(LStep::Bind { iter, slot, depth, domain });
                }
                Step::Define { derived } => {
                    let def = &space.deriveds()[derived];
                    let slot = ctx.slot(&def.name);
                    let body = match &def.kind {
                        crate::derived::DerivedKind::Expr(e) => {
                            LBody::Expr(ctx.lower(e)?.simplify())
                        }
                        crate::derived::DerivedKind::Deferred { .. } => LBody::Opaque,
                    };
                    steps.push(LStep::Define { derived, slot, body });
                }
                Step::Check { constraint } => {
                    let def = &space.constraints()[constraint];
                    let body = match &def.kind {
                        crate::constraint::ConstraintKind::Expr(e) => {
                            LBody::Expr(ctx.lower(e)?.simplify())
                        }
                        crate::constraint::ConstraintKind::Deferred { .. } => LBody::Opaque,
                    };
                    steps.push(LStep::Check { constraint, body });
                }
                Step::Visit => steps.push(LStep::Visit),
            }
        }

        Ok(LoweredPlan {
            plan: plan.clone(),
            steps,
            n_slots: ctx.slot_names.len() as u32,
            slot_names: ctx.slot_names,
        })
    }

    /// Number of loops (`Bind` steps) in the plan.
    pub fn n_loops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, LStep::Bind { .. }))
            .count()
    }

    /// Statically-known iteration count of the loop nest *below* one value
    /// of the outermost (level-0) loop: the product of the lengths of every
    /// inner loop domain whose bounds lowered to constants.
    ///
    /// Returns `None` as soon as any inner domain depends on an outer
    /// variable or is opaque — exactly the case in which per-outer-value
    /// subtree cost is non-uniform and a parallel driver should prefer
    /// fine-grained level-0 chunks. The multithreaded engine uses this to
    /// size its work-stealing chunks; see
    /// `beast_engine::parallel::run_parallel_report`.
    pub fn static_fanout_below_outer(&self) -> Option<u128> {
        let mut fanout: u128 = 1;
        let mut binds_seen = 0usize;
        for step in &self.steps {
            if let LStep::Bind { domain, .. } = step {
                binds_seen += 1;
                if binds_seen == 1 {
                    // The outermost loop itself is the chunked dimension.
                    continue;
                }
                let len = match domain {
                    LIter::Values(v) => v.len() as u128,
                    LIter::Range { start, stop, step } => {
                        let (s, e, st) =
                            (start.as_const()?, stop.as_const()?, step.as_const()?);
                        range_len(s, e, st)? as u128
                    }
                    LIter::Opaque { .. } => return None,
                };
                fanout = fanout.saturating_mul(len);
            }
        }
        Some(fanout)
    }

    /// Lower-bound estimate of the number of points below one iteration of
    /// loop `loop_index` (0 = outermost): the product of the statically
    /// known inner domain lengths, counting dependent or opaque domains
    /// as `1`. The interval-based block pruner multiplies this by the
    /// skipped domain length to estimate how many points a subtree skip
    /// avoided.
    pub fn static_fanout_below(&self, loop_index: usize) -> u64 {
        let mut fanout: u64 = 1;
        let mut binds_seen = 0usize;
        for step in &self.steps {
            if let LStep::Bind { domain, .. } = step {
                binds_seen += 1;
                if binds_seen <= loop_index + 1 {
                    continue;
                }
                let len = match domain {
                    LIter::Values(v) => Some(v.len() as u64),
                    LIter::Range { start, stop, step } => (|| {
                        range_len(start.as_const()?, stop.as_const()?, step.as_const()?)
                    })(),
                    LIter::Opaque { .. } => None,
                };
                fanout = fanout.saturating_mul(len.unwrap_or(1));
            }
        }
        fanout
    }

    /// True if any step requires calling back into an opaque Rust closure.
    pub fn has_opaque_steps(&self) -> bool {
        self.steps.iter().any(|s| match s {
            LStep::Bind { domain, .. } => domain.is_opaque(),
            LStep::Define { body, .. } | LStep::Check { body, .. } => {
                matches!(body, LBody::Opaque)
            }
            LStep::Visit => false,
        })
    }
}

/// Python-range length of `start..stop` by `step`; `None` for a zero step.
fn range_len(start: i64, stop: i64, step: i64) -> Option<u64> {
    if step > 0 {
        Some(((stop.saturating_sub(start)).max(0) as u64).div_ceil(step as u64))
    } else if step < 0 {
        Some(((start.saturating_sub(stop)).max(0) as u64).div_ceil(step.unsigned_abs()))
    } else {
        None
    }
}

/// Lowering context: constant table + slot assignment.
struct LowerCtx {
    consts: HashMap<Arc<str>, Value>,
    slots: HashMap<Arc<str>, u32>,
    slot_names: Vec<Arc<str>>,
}

impl LowerCtx {
    fn new(space: &Space) -> LowerCtx {
        let consts: HashMap<Arc<str>, Value> =
            space.consts().iter().cloned().collect();
        let mut ctx =
            LowerCtx { consts, slots: HashMap::new(), slot_names: Vec::new() };
        // Pre-assign slots in a stable order: iterators then deriveds.
        for d in space.iters() {
            ctx.slot(&d.name);
        }
        for d in space.deriveds() {
            ctx.slot(&d.name);
        }
        ctx
    }

    fn slot(&mut self, name: &Arc<str>) -> u32 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.slot_names.len() as u32;
        self.slots.insert(name.clone(), s);
        self.slot_names.push(name.clone());
        s
    }

    /// Evaluate an expression statically using only the constant table.
    fn static_eval(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Const(v) => Some(v.clone()),
            Expr::Var(n) => self.consts.get(n).cloned(),
            Expr::Unary(op, a) => {
                let v = self.static_eval(a)?;
                match op {
                    UnOp::Neg => v.neg().ok(),
                    UnOp::Not => Some(Value::Bool(!v.truthy())),
                }
            }
            Expr::Binary(op, a, b) => {
                // Reuse the dynamic evaluator over an empty env by
                // substituting resolved children; easiest is to evaluate both
                // and apply. Short-circuit folds only if the left side folds.
                let va = self.static_eval(a)?;
                match op {
                    BinOp::And if !va.truthy() => return Some(Value::Bool(false)),
                    BinOp::Or if va.truthy() => return Some(Value::Bool(true)),
                    _ => {}
                }
                let vb = self.static_eval(b)?;
                match op {
                    BinOp::Add => va.add(&vb).ok(),
                    BinOp::Sub => va.sub(&vb).ok(),
                    BinOp::Mul => va.mul(&vb).ok(),
                    BinOp::Div => va.div(&vb).ok(),
                    BinOp::FloorDiv => va.floor_div(&vb).ok(),
                    BinOp::Rem => va.rem(&vb).ok(),
                    BinOp::Eq => Some(Value::Bool(va.value_eq(&vb))),
                    BinOp::Ne => Some(Value::Bool(!va.value_eq(&vb))),
                    BinOp::Lt => va.compare(&vb).ok().map(|o| Value::Bool(o.is_lt())),
                    BinOp::Le => va.compare(&vb).ok().map(|o| Value::Bool(o.is_le())),
                    BinOp::Gt => va.compare(&vb).ok().map(|o| Value::Bool(o.is_gt())),
                    BinOp::Ge => va.compare(&vb).ok().map(|o| Value::Bool(o.is_ge())),
                    BinOp::And => Some(Value::Bool(vb.truthy())),
                    BinOp::Or => Some(Value::Bool(vb.truthy())),
                }
            }
            Expr::Ternary { cond, then, otherwise } => {
                if self.static_eval(cond)?.truthy() {
                    self.static_eval(then)
                } else {
                    self.static_eval(otherwise)
                }
            }
            Expr::Call(_, _) => {
                // Builtins over static args: evaluate via the generic path.
                use crate::expr::NoBindings;
                if e.deps().iter().all(|n| self.consts.contains_key(n)) {
                    // Substitute constants by evaluating with a const view.
                    struct V<'a>(&'a HashMap<Arc<str>, Value>);
                    impl crate::expr::Bindings for V<'_> {
                        fn get(&self, name: &str) -> Option<Value> {
                            self.0.get(name).cloned()
                        }
                    }
                    if self.consts.is_empty() {
                        e.eval(&NoBindings).ok()
                    } else {
                        e.eval(&V(&self.consts)).ok()
                    }
                } else {
                    None
                }
            }
        }
    }

    fn value_to_int(v: &Value) -> Result<i64, SpaceError> {
        v.as_int().map_err(|_| {
            SpaceError::Lowering(format!(
                "value {v} of type {} does not lower to an integer",
                v.type_name()
            ))
        })
    }

    fn lower(&mut self, e: &Expr) -> Result<IntExpr, SpaceError> {
        // Try full static folding first — this is where string settings
        // disappear: `precision == "double"` folds to a boolean constant.
        if let Some(v) = self.static_eval(e) {
            return Ok(IntExpr::Const(Self::value_to_int(&v)?));
        }
        match e {
            Expr::Const(v) => Ok(IntExpr::Const(Self::value_to_int(v)?)),
            Expr::Var(n) => {
                if let Some(v) = self.consts.get(n) {
                    let v = v.clone();
                    return Ok(IntExpr::Const(Self::value_to_int(&v)?));
                }
                if self.slots.contains_key(n) {
                    Ok(IntExpr::Slot(self.slot(&n.clone())))
                } else {
                    Err(SpaceError::Lowering(format!("unknown variable `{n}`")))
                }
            }
            Expr::Unary(op, a) => {
                let a = self.lower(a)?;
                Ok(match op {
                    UnOp::Neg => IntExpr::Neg(Box::new(a)),
                    UnOp::Not => IntExpr::Not(Box::new(a)),
                })
            }
            Expr::Binary(op, a, b) => {
                let iop = match op {
                    BinOp::Add => IntBinOp::Add,
                    BinOp::Sub => IntBinOp::Sub,
                    BinOp::Mul => IntBinOp::Mul,
                    BinOp::Div => IntBinOp::Div,
                    BinOp::FloorDiv => IntBinOp::FloorDiv,
                    BinOp::Rem => IntBinOp::Rem,
                    BinOp::Lt => IntBinOp::Lt,
                    BinOp::Le => IntBinOp::Le,
                    BinOp::Gt => IntBinOp::Gt,
                    BinOp::Ge => IntBinOp::Ge,
                    BinOp::Eq => IntBinOp::Eq,
                    BinOp::Ne => IntBinOp::Ne,
                    BinOp::And => IntBinOp::And,
                    BinOp::Or => IntBinOp::Or,
                };
                Ok(IntExpr::Bin(
                    iop,
                    Box::new(self.lower(a)?),
                    Box::new(self.lower(b)?),
                ))
            }
            Expr::Ternary { cond, then, otherwise } => {
                // Fold on a static condition even when branches are dynamic —
                // this is how per-precision branches in the GEMM space become
                // straight-line code.
                if let Some(c) = self.static_eval(cond) {
                    return if c.truthy() {
                        self.lower(then)
                    } else {
                        self.lower(otherwise)
                    };
                }
                Ok(IntExpr::Ternary(
                    Box::new(self.lower(cond)?),
                    Box::new(self.lower(then)?),
                    Box::new(self.lower(otherwise)?),
                ))
            }
            Expr::Call(b, args) => match b {
                Builtin::Abs => Ok(IntExpr::Abs(Box::new(self.lower(&args[0])?))),
                _ => Ok(IntExpr::Call2(
                    *b,
                    Box::new(self.lower(&args[0])?),
                    Box::new(self.lower(&args[1])?),
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;
    use crate::expr::{ternary, var};
    use crate::plan::PlanOptions;

    fn lower_space() -> LoweredPlan {
        let s = Space::builder("lowering")
            .constant("precision", "double")
            .constant("cap", 64)
            .range("dim_m", 1, 9)
            .range_step("blk_m", var("dim_m"), 33, var("dim_m"))
            .derived(
                "regs",
                ternary(var("precision").eq("double"), var("blk_m") * 2, var("blk_m")),
            )
            .constraint("over", ConstraintClass::Hard, var("regs").gt(var("cap")))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    #[test]
    fn string_settings_fold_away() {
        let lp = lower_space();
        assert!(!lp.has_opaque_steps());
        // The `regs` define must have folded the ternary to blk_m * 2.
        let body = lp
            .steps
            .iter()
            .find_map(|s| match s {
                LStep::Define { body: LBody::Expr(e), .. } => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        let blk_m_slot = lp.slot_names.iter().position(|n| &**n == "blk_m").unwrap() as u32;
        assert_eq!(
            body,
            IntExpr::Bin(
                IntBinOp::Mul,
                Box::new(IntExpr::Slot(blk_m_slot)),
                Box::new(IntExpr::Const(2))
            )
        );
    }

    #[test]
    fn const_vars_fold_to_literals() {
        let lp = lower_space();
        let check = lp
            .steps
            .iter()
            .find_map(|s| match s {
                LStep::Check { body: LBody::Expr(e), .. } => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        // cap folded to 64.
        match check {
            IntExpr::Bin(IntBinOp::Gt, _, b) => assert_eq!(*b, IntExpr::Const(64)),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn int_expr_eval_matches_semantics() {
        let e = IntExpr::Bin(
            IntBinOp::Add,
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Const(5)),
        );
        assert_eq!(e.eval(&[37]).unwrap(), 42);
        let d = IntExpr::Bin(
            IntBinOp::Div,
            Box::new(IntExpr::Const(-7)),
            Box::new(IntExpr::Const(2)),
        );
        assert_eq!(d.eval(&[]).unwrap(), -3); // trunc toward zero
        let fd = IntExpr::Bin(
            IntBinOp::FloorDiv,
            Box::new(IntExpr::Const(-7)),
            Box::new(IntExpr::Const(2)),
        );
        assert_eq!(fd.eval(&[]).unwrap(), -4);
    }

    #[test]
    fn division_by_zero_checked() {
        let e = IntExpr::Bin(
            IntBinOp::Rem,
            Box::new(IntExpr::Const(1)),
            Box::new(IntExpr::Const(0)),
        );
        assert_eq!(e.eval(&[]), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn short_circuit_in_ir() {
        // slot0 != 0 && 10 % slot0 == 0 — must not trap when slot0 == 0.
        let e = IntExpr::Bin(
            IntBinOp::And,
            Box::new(IntExpr::Bin(
                IntBinOp::Ne,
                Box::new(IntExpr::Slot(0)),
                Box::new(IntExpr::Const(0)),
            )),
            Box::new(IntExpr::Bin(
                IntBinOp::Eq,
                Box::new(IntExpr::Bin(
                    IntBinOp::Rem,
                    Box::new(IntExpr::Const(10)),
                    Box::new(IntExpr::Slot(0)),
                )),
                Box::new(IntExpr::Const(0)),
            )),
        );
        assert_eq!(e.eval(&[0]).unwrap(), 0);
        assert_eq!(e.eval(&[5]).unwrap(), 1);
        assert_eq!(e.eval(&[3]).unwrap(), 0);
    }

    #[test]
    fn simplify_identities() {
        let x = IntExpr::Slot(0);
        let e = IntExpr::Bin(
            IntBinOp::Add,
            Box::new(x.clone()),
            Box::new(IntExpr::Const(0)),
        );
        assert_eq!(e.simplify(), x);
        let e = IntExpr::Bin(
            IntBinOp::Mul,
            Box::new(IntExpr::Const(0)),
            Box::new(IntExpr::Slot(3)),
        );
        assert_eq!(e.simplify(), IntExpr::Const(0));
        let e = IntExpr::Ternary(
            Box::new(IntExpr::Const(1)),
            Box::new(IntExpr::Slot(1)),
            Box::new(IntExpr::Slot(2)),
        );
        assert_eq!(e.simplify(), IntExpr::Slot(1));
    }

    #[test]
    fn simplify_constant_folds() {
        let e = IntExpr::Bin(
            IntBinOp::Mul,
            Box::new(IntExpr::Const(6)),
            Box::new(IntExpr::Const(7)),
        );
        assert_eq!(e.simplify(), IntExpr::Const(42));
        // Division by zero does NOT fold (kept for runtime error).
        let e = IntExpr::Bin(
            IntBinOp::Div,
            Box::new(IntExpr::Const(1)),
            Box::new(IntExpr::Const(0)),
        );
        assert!(matches!(e.simplify(), IntExpr::Bin(..)));
    }

    #[test]
    fn render_c_shape() {
        let lp = lower_space();
        let check = lp
            .steps
            .iter()
            .find_map(|s| match s {
                LStep::Check { body: LBody::Expr(e), .. } => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        let rendered = check.render_c(&lp.slot_names);
        assert_eq!(rendered, "(regs > 64)");
    }

    #[test]
    fn opaque_steps_detected() {
        let s = Space::builder("opaque")
            .range("a", 0, 4)
            .deferred_iter("b", &["a"], |env| {
                Ok(crate::iterator::Realized::Range {
                    start: 0,
                    stop: env.require_int("a")?,
                    step: 1,
                })
            })
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        assert!(lp.has_opaque_steps());
    }

    #[test]
    fn static_fanout_counts_constant_inner_loops() {
        let s = Space::builder("fanout")
            .range("a", 0, 10)
            .range("b", 0, 4)
            .list("c", [1i64, 2, 3])
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        assert_eq!(lp.n_loops(), 3);
        // 4 values of b × 3 values of c below each value of a.
        assert_eq!(lp.static_fanout_below_outer(), Some(12));
    }

    #[test]
    fn static_fanout_unknown_for_dependent_inner_loops() {
        let s = Space::builder("skewed")
            .range("a", 1, 10)
            .range_step("b", var("a"), 20, var("a"))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        assert_eq!(lp.static_fanout_below_outer(), None);
    }

    #[test]
    fn range_len_matches_python() {
        assert_eq!(range_len(0, 10, 1), Some(10));
        assert_eq!(range_len(0, 10, 3), Some(4));
        assert_eq!(range_len(10, 0, -3), Some(4));
        assert_eq!(range_len(5, 5, 1), Some(0));
        assert_eq!(range_len(5, 0, 1), Some(0));
        assert_eq!(range_len(0, 1, 0), None);
    }

    #[test]
    fn non_integer_list_fails_lowering() {
        let s = Space::builder("bad")
            .list("mode", ["fast", "slow"])
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        assert!(matches!(
            LoweredPlan::new(&plan),
            Err(SpaceError::Lowering(_))
        ));
    }
}
