//! Derived variables — named intermediate quantities computed from iterators
//! and other derived variables (Fig. 12 of the paper: `threads_per_block`,
//! `regs_per_block`, `max_blocks_by_shmem`, ...).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::expr::{Bindings, Expr};
use crate::value::Value;

/// Signature of a deferred derived-variable body.
pub type DerivedFn = dyn Fn(&dyn Bindings) -> Result<Value, EvalError> + Send + Sync;

/// How a derived variable is computed.
#[derive(Clone)]
pub enum DerivedKind {
    /// A plain expression; dependencies are extracted automatically.
    Expr(Expr),
    /// An opaque function with declared dependencies (the analog of a Python
    /// helper using statements that expressions cannot encode).
    Deferred {
        /// Declared dependencies.
        deps: Vec<Arc<str>>,
        /// The body.
        f: Arc<DerivedFn>,
    },
}

impl fmt::Debug for DerivedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivedKind::Expr(e) => write!(f, "expr({e})"),
            DerivedKind::Deferred { deps, .. } => write!(f, "deferred(deps={deps:?})"),
        }
    }
}

impl DerivedKind {
    /// Collect dependency names.
    pub fn collect_deps(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            DerivedKind::Expr(e) => e.collect_deps(out),
            DerivedKind::Deferred { deps, .. } => out.extend(deps.iter().cloned()),
        }
    }

    /// Evaluate against the bound variables.
    pub fn eval(&self, env: &dyn Bindings) -> Result<Value, EvalError> {
        match self {
            DerivedKind::Expr(e) => e.eval(env),
            DerivedKind::Deferred { f, .. } => f(env),
        }
    }

    /// True if the body is an opaque Rust closure (not translatable by the
    /// source code generators).
    pub fn is_opaque(&self) -> bool {
        matches!(self, DerivedKind::Deferred { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;
    use std::collections::HashMap;

    #[test]
    fn expr_derived_eval_and_deps() {
        let d = DerivedKind::Expr((var("dim_m") * var("dim_n")).into_expr());
        let mut deps = BTreeSet::new();
        d.collect_deps(&mut deps);
        assert_eq!(deps.len(), 2);

        let mut env: HashMap<Arc<str>, Value> = HashMap::new();
        env.insert(Arc::from("dim_m"), Value::Int(8));
        env.insert(Arc::from("dim_n"), Value::Int(4));
        assert_eq!(d.eval(&env).unwrap(), Value::Int(32));
        assert!(!d.is_opaque());
    }

    #[test]
    fn deferred_derived() {
        let d = DerivedKind::Deferred {
            deps: vec![Arc::from("x")],
            f: Arc::new(|env| Ok(Value::Int(env.require_int("x")? * 2))),
        };
        let mut env: HashMap<Arc<str>, Value> = HashMap::new();
        env.insert(Arc::from("x"), Value::Int(21));
        assert_eq!(d.eval(&env).unwrap(), Value::Int(42));
        assert!(d.is_opaque());
    }
}
