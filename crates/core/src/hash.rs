//! Structural hashing of lowered plans.
//!
//! The sweep service (`beast-engine::service`) memoizes completed sub-sweeps
//! keyed by *what was evaluated*, not by how the request was phrased. Two
//! requests that lower to the same [`LoweredPlan`] — same loop nest, same
//! folded device constants, same constraint expressions — must collide, and
//! any semantic difference (a changed bound, a different device parameter
//! folded into a constant, a reordered check) must separate them.
//!
//! [`LoweredPlan::structural_hash`] provides that identity: a 64-bit FNV-1a
//! digest over the lowered step sequence with every node kind tagged by a
//! distinct byte, so `Neg(x)` and `Not(x)` (or `Values([2])` and a range that
//! happens to enumerate `[2]`) cannot alias byte-wise. Because lowering folds
//! constants (including string settings and device properties) into
//! [`IntExpr::Const`] leaves, device parameters are part of the hash for
//! free — the service layers an explicit scope string on top only as
//! belt-and-suspenders.
//!
//! The hash deliberately covers the *lowered* form, not the source `Space`:
//! opaque (closure-backed) steps have no stable byte representation, so
//! plans containing them are flagged by [`LoweredPlan::has_opaque_steps`]
//! and never cached.

use std::sync::Arc;

use crate::expr::Builtin;
use crate::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};

/// Streaming 64-bit FNV-1a hasher.
///
/// Used instead of `std::hash::DefaultHasher` because the digest is persisted
/// (cache files, checkpoint headers) and must be stable across Rust versions
/// and platforms; `DefaultHasher`'s algorithm is explicitly unspecified.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Absorb a 64-bit value, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb a signed 64-bit value, little-endian two's complement.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorb a length-prefixed byte string (prefix prevents concatenation
    /// ambiguity between adjacent variable-length fields).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

// Node-kind tags. Every variant absorbed into the digest is preceded by one
// of these so that structurally different trees cannot serialize to the same
// byte stream. Values are arbitrary but frozen: changing them invalidates
// every persisted cache file.
const TAG_CONST: u8 = 0x01;
const TAG_SLOT: u8 = 0x02;
const TAG_BIN: u8 = 0x03;
const TAG_NEG: u8 = 0x04;
const TAG_NOT: u8 = 0x05;
const TAG_TERNARY: u8 = 0x06;
const TAG_CALL2: u8 = 0x07;
const TAG_ABS: u8 = 0x08;

const TAG_ITER_RANGE: u8 = 0x10;
const TAG_ITER_VALUES: u8 = 0x11;
const TAG_ITER_OPAQUE: u8 = 0x12;

const TAG_BODY_EXPR: u8 = 0x18;
const TAG_BODY_OPAQUE: u8 = 0x19;

const TAG_STEP_BIND: u8 = 0x20;
const TAG_STEP_DEFINE: u8 = 0x21;
const TAG_STEP_CHECK: u8 = 0x22;
const TAG_STEP_VISIT: u8 = 0x23;

fn bin_op_tag(op: IntBinOp) -> u8 {
    match op {
        IntBinOp::Add => 0x40,
        IntBinOp::Sub => 0x41,
        IntBinOp::Mul => 0x42,
        IntBinOp::Div => 0x43,
        IntBinOp::FloorDiv => 0x44,
        IntBinOp::Rem => 0x45,
        IntBinOp::Lt => 0x46,
        IntBinOp::Le => 0x47,
        IntBinOp::Gt => 0x48,
        IntBinOp::Ge => 0x49,
        IntBinOp::Eq => 0x4a,
        IntBinOp::Ne => 0x4b,
        IntBinOp::And => 0x4c,
        IntBinOp::Or => 0x4d,
    }
}

fn builtin_tag(b: Builtin) -> u8 {
    match b {
        Builtin::Min => 0x50,
        Builtin::Max => 0x51,
        Builtin::Abs => 0x52,
        Builtin::DivCeil => 0x53,
        Builtin::Gcd => 0x54,
        Builtin::RoundUp => 0x55,
    }
}

/// Absorb an expression tree, prefix order with kind tags.
pub fn hash_int_expr(h: &mut Fnv1a, e: &IntExpr) {
    match e {
        IntExpr::Const(c) => {
            h.write_u8(TAG_CONST);
            h.write_i64(*c);
        }
        IntExpr::Slot(s) => {
            h.write_u8(TAG_SLOT);
            h.write_u64(u64::from(*s));
        }
        IntExpr::Bin(op, a, b) => {
            h.write_u8(TAG_BIN);
            h.write_u8(bin_op_tag(*op));
            hash_int_expr(h, a);
            hash_int_expr(h, b);
        }
        IntExpr::Neg(a) => {
            h.write_u8(TAG_NEG);
            hash_int_expr(h, a);
        }
        IntExpr::Not(a) => {
            h.write_u8(TAG_NOT);
            hash_int_expr(h, a);
        }
        IntExpr::Ternary(c, t, f) => {
            h.write_u8(TAG_TERNARY);
            hash_int_expr(h, c);
            hash_int_expr(h, t);
            hash_int_expr(h, f);
        }
        IntExpr::Call2(b, x, y) => {
            h.write_u8(TAG_CALL2);
            h.write_u8(builtin_tag(*b));
            hash_int_expr(h, x);
            hash_int_expr(h, y);
        }
        IntExpr::Abs(a) => {
            h.write_u8(TAG_ABS);
            hash_int_expr(h, a);
        }
    }
}

fn hash_iter(h: &mut Fnv1a, domain: &LIter) {
    match domain {
        LIter::Range { start, stop, step } => {
            h.write_u8(TAG_ITER_RANGE);
            hash_int_expr(h, start);
            hash_int_expr(h, stop);
            hash_int_expr(h, step);
        }
        LIter::Values(v) => {
            h.write_u8(TAG_ITER_VALUES);
            h.write_u64(v.len() as u64);
            for &x in v {
                h.write_i64(x);
            }
        }
        LIter::Opaque { iter } => {
            h.write_u8(TAG_ITER_OPAQUE);
            h.write_u64(*iter as u64);
        }
    }
}

fn hash_body(h: &mut Fnv1a, body: &LBody) {
    match body {
        LBody::Expr(e) => {
            h.write_u8(TAG_BODY_EXPR);
            hash_int_expr(h, e);
        }
        LBody::Opaque => h.write_u8(TAG_BODY_OPAQUE),
    }
}

fn hash_names(h: &mut Fnv1a, names: &[Arc<str>]) {
    h.write_u64(names.len() as u64);
    for n in names {
        h.write_bytes(n.as_bytes());
    }
}

impl LoweredPlan {
    /// 64-bit structural digest of the lowered plan.
    ///
    /// Covers the step sequence (loop structure, domains, folded constants,
    /// derived bodies, constraint predicates, hoisting depths), the slot
    /// count, and the slot names. Two plans hash equal iff the compiled
    /// engine would execute byte-identical programs over identically-named
    /// slots; any change to a bound, constant, operator, or step order
    /// changes the digest.
    ///
    /// Opaque (closure-backed) steps are absorbed only by their space index,
    /// which does not pin the closure's behavior — callers memoizing on this
    /// hash must reject plans where [`LoweredPlan::has_opaque_steps`] is
    /// true.
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.n_slots));
        hash_names(&mut h, &self.slot_names);
        h.write_u64(self.steps.len() as u64);
        for step in &self.steps {
            match step {
                LStep::Bind { iter, slot, depth, domain } => {
                    h.write_u8(TAG_STEP_BIND);
                    h.write_u64(*iter as u64);
                    h.write_u64(u64::from(*slot));
                    h.write_u64(*depth as u64);
                    hash_iter(&mut h, domain);
                }
                LStep::Define { derived, slot, body } => {
                    h.write_u8(TAG_STEP_DEFINE);
                    h.write_u64(*derived as u64);
                    h.write_u64(u64::from(*slot));
                    hash_body(&mut h, body);
                }
                LStep::Check { constraint, body } => {
                    h.write_u8(TAG_STEP_CHECK);
                    h.write_u64(*constraint as u64);
                    hash_body(&mut h, body);
                }
                LStep::Visit => h.write_u8(TAG_STEP_VISIT),
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;
    use crate::expr::var;
    use crate::plan::{Plan, PlanOptions};
    use crate::space::Space;

    fn lowered(cap: i64, hi: i64) -> LoweredPlan {
        let s = Space::builder("hash")
            .constant("cap", cap)
            .range("a", 1, hi)
            .range("b", 1, 9)
            .derived("t", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("t").gt(var("cap")))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    #[test]
    fn equal_plans_hash_equal() {
        assert_eq!(lowered(16, 9).structural_hash(), lowered(16, 9).structural_hash());
    }

    #[test]
    fn changed_constant_changes_hash() {
        // `cap` folds into the Check body as a literal — this is exactly how
        // device parameters distinguish cache keys.
        assert_ne!(lowered(16, 9).structural_hash(), lowered(32, 9).structural_hash());
    }

    #[test]
    fn changed_bound_changes_hash() {
        assert_ne!(lowered(16, 9).structural_hash(), lowered(16, 17).structural_hash());
    }

    #[test]
    fn operator_and_shape_do_not_alias() {
        let mut a = Fnv1a::new();
        hash_int_expr(&mut a, &IntExpr::Neg(Box::new(IntExpr::Slot(0))));
        let mut b = Fnv1a::new();
        hash_int_expr(&mut b, &IntExpr::Not(Box::new(IntExpr::Slot(0))));
        assert_ne!(a.finish(), b.finish());

        let add = IntExpr::Bin(
            IntBinOp::Add,
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Slot(1)),
        );
        let sub = IntExpr::Bin(
            IntBinOp::Sub,
            Box::new(IntExpr::Slot(0)),
            Box::new(IntExpr::Slot(1)),
        );
        let mut ha = Fnv1a::new();
        hash_int_expr(&mut ha, &add);
        let mut hs = Fnv1a::new();
        hash_int_expr(&mut hs, &sub);
        assert_ne!(ha.finish(), hs.finish());
    }

    #[test]
    fn fnv_primitives_are_pinned() {
        // The digest is persisted in cache files, so the byte-level FNV-1a
        // behavior must stay frozen. Reference value: FNV-1a("a") from the
        // published test vectors.
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fnv_bytes_are_length_prefixed() {
        let mut a = Fnv1a::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv1a::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
