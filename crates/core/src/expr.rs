//! Expression AST for iterator bounds, derived variables and constraints.
//!
//! This is the Rust analog of the paper's *expression* forms (Section V and
//! VIII): Python expressions over iterator variables with overloaded
//! arithmetic, relational and logical operators plus overloaded builtins such
//! as `min`. Here the overloading lives on the [`E`] wrapper type, which
//! builds an [`Expr`] tree; dependencies are extracted automatically from the
//! tree exactly as the paper's translator reads them off the Python AST.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::value::Value;

/// Read-only view of the currently bound variables.
///
/// All evaluation backends (hash-map walker, bytecode VM, compiled slots)
/// provide this view so that deferred iterators and constraints — opaque Rust
/// closures, the analog of the paper's `@iterator`/`@condition` functions —
/// can run against any of them.
pub trait Bindings {
    /// Look up a variable by name; `None` if it is not bound yet.
    fn get(&self, name: &str) -> Option<Value>;

    /// Look up a variable, erroring like Python's `NameError` if unbound.
    fn require(&self, name: &str) -> Result<Value, EvalError> {
        self.get(name).ok_or_else(|| EvalError::Unbound(name.to_string()))
    }

    /// Look up a variable and coerce it to an integer.
    fn require_int(&self, name: &str) -> Result<i64, EvalError> {
        self.require(name)?.as_int()
    }
}

/// An empty binding set (useful for evaluating constant expressions).
pub struct NoBindings;

impl Bindings for NoBindings {
    fn get(&self, _name: &str) -> Option<Value> {
        None
    }
}

impl Bindings for std::collections::HashMap<Arc<str>, Value> {
    fn get(&self, name: &str) -> Option<Value> {
        std::collections::HashMap::get(self, name).cloned()
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b` with C trunc-toward-zero semantics on integers.
    Div,
    /// `a // b`, Python floor division.
    FloorDiv,
    /// `a % b` with C remainder semantics.
    Rem,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// Short-circuiting logical and.
    And,
    /// Short-circuiting logical or.
    Or,
}

impl BinOp {
    /// True for the six relational operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// The operator token in C-like syntax (used by code generators).
    pub fn c_token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div | BinOp::FloorDiv => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Overloaded builtin functions (the paper overloads Python's `min`, `max`
/// and friends for iterator expressions; Section VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Absolute value.
    Abs,
    /// `ceil(a / b)` for positive integers.
    DivCeil,
    /// Greatest common divisor.
    Gcd,
    /// Round `a` up to the next multiple of `b`.
    RoundUp,
}

impl Builtin {
    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Abs => 1,
            _ => 2,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Abs => "abs",
            Builtin::DivCeil => "div_ceil",
            Builtin::Gcd => "gcd",
            Builtin::RoundUp => "round_up",
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// A variable reference by name; resolved against the active bindings at
    /// evaluation time, or against slots after lowering.
    Var(Arc<str>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation. `And`/`Or` short-circuit.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `if cond { then } else { other }` — the paper notes Python's ternary
    /// cannot be overloaded and supports it specially; we make it a node.
    Ternary {
        /// The condition.
        cond: Box<Expr>,
        /// Value if the condition is truthy.
        then: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
    /// A builtin call.
    Call(Builtin, Vec<Expr>),
}

impl Expr {
    /// Evaluate the expression against the given bindings.
    pub fn eval(&self, env: &dyn Bindings) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => env.require(name),
            Expr::Unary(op, a) => {
                let v = a.eval(env)?;
                match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logical operators first: the paper calls out
                // short-circuiting as an important pruning optimization
                // (Section VIII-A).
                match op {
                    BinOp::And => {
                        let va = a.eval(env)?;
                        if !va.truthy() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(b.eval(env)?.truthy()));
                    }
                    BinOp::Or => {
                        let va = a.eval(env)?;
                        if va.truthy() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(b.eval(env)?.truthy()));
                    }
                    _ => {}
                }
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                match op {
                    BinOp::Add => va.add(&vb),
                    BinOp::Sub => va.sub(&vb),
                    BinOp::Mul => va.mul(&vb),
                    BinOp::Div => va.div(&vb),
                    BinOp::FloorDiv => va.floor_div(&vb),
                    BinOp::Rem => va.rem(&vb),
                    BinOp::Eq => Ok(Value::Bool(va.value_eq(&vb))),
                    BinOp::Ne => Ok(Value::Bool(!va.value_eq(&vb))),
                    BinOp::Lt => Ok(Value::Bool(va.compare(&vb)?.is_lt())),
                    BinOp::Le => Ok(Value::Bool(va.compare(&vb)?.is_le())),
                    BinOp::Gt => Ok(Value::Bool(va.compare(&vb)?.is_gt())),
                    BinOp::Ge => Ok(Value::Bool(va.compare(&vb)?.is_ge())),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Expr::Ternary { cond, then, otherwise } => {
                if cond.eval(env)?.truthy() {
                    then.eval(env)
                } else {
                    otherwise.eval(env)
                }
            }
            Expr::Call(b, args) => {
                debug_assert_eq!(args.len(), b.arity());
                match b {
                    Builtin::Abs => {
                        let v = args[0].eval(env)?;
                        match v {
                            Value::Float(f) => Ok(Value::Float(f.abs())),
                            other => other
                                .as_int()?
                                .checked_abs()
                                .map(Value::Int)
                                .ok_or(EvalError::Overflow),
                        }
                    }
                    Builtin::Min | Builtin::Max => {
                        let a = args[0].eval(env)?;
                        let b2 = args[1].eval(env)?;
                        let ord = a.compare(&b2)?;
                        let take_a = match b {
                            Builtin::Min => ord.is_le(),
                            _ => ord.is_ge(),
                        };
                        Ok(if take_a { a } else { b2 })
                    }
                    Builtin::DivCeil => {
                        let a = args[0].eval(env)?.as_int()?;
                        let d = args[1].eval(env)?.as_int()?;
                        if d == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        // Positive-operand ceil division.
                        Ok(Value::Int((a + d - 1).div_euclid(d)))
                    }
                    Builtin::Gcd => {
                        let mut a = args[0].eval(env)?.as_int()?.unsigned_abs();
                        let mut b2 = args[1].eval(env)?.as_int()?.unsigned_abs();
                        while b2 != 0 {
                            let t = a % b2;
                            a = b2;
                            b2 = t;
                        }
                        Ok(Value::Int(a as i64))
                    }
                    Builtin::RoundUp => {
                        let a = args[0].eval(env)?.as_int()?;
                        let m = args[1].eval(env)?.as_int()?;
                        if m == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        Ok(Value::Int((a + m - 1).div_euclid(m) * m))
                    }
                }
            }
        }
    }

    /// Collect the free variable names this expression references.
    pub fn collect_deps(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(name) => {
                out.insert(Arc::clone(name));
            }
            Expr::Unary(_, a) => a.collect_deps(out),
            Expr::Binary(_, a, b) => {
                a.collect_deps(out);
                b.collect_deps(out);
            }
            Expr::Ternary { cond, then, otherwise } => {
                cond.collect_deps(out);
                then.collect_deps(out);
                otherwise.collect_deps(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_deps(out);
                }
            }
        }
    }

    /// The set of free variables, as a fresh set.
    pub fn deps(&self) -> BTreeSet<Arc<str>> {
        let mut s = BTreeSet::new();
        self.collect_deps(&mut s);
        s
    }

    /// Number of nodes in the tree (used by planners as a cost hint).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::Ternary { cond, then, otherwise } => {
                1 + cond.size() + then.size() + otherwise.size()
            }
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Unary(UnOp::Neg, a) => write!(f, "(-{a})"),
            Expr::Unary(UnOp::Not, a) => write!(f, "(!{a})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.c_token()),
            Expr::Ternary { cond, then, otherwise } => {
                write!(f, "({cond} ? {then} : {otherwise})")
            }
            Expr::Call(b, args) => {
                write!(f, "{}(", b.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ergonomic builder: the `E` wrapper with operator overloading.
// ---------------------------------------------------------------------------

/// Expression builder with overloaded operators, the Rust stand-in for the
/// paper's overloaded Python operators on iterator objects.
///
/// ```
/// use beast_core::expr::{var, lit, E};
/// let threads: E = var("dim_m") * var("dim_n");
/// let over = threads.clone().gt(lit(1024));
/// assert_eq!(over.expr().deps().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct E(pub Expr);

/// Build a variable reference.
pub fn var(name: &str) -> E {
    E(Expr::Var(Arc::from(name)))
}

/// Build a literal.
pub fn lit(v: impl Into<Value>) -> E {
    E(Expr::Const(v.into()))
}

/// Ternary expression `if cond then a else b`.
pub fn ternary(cond: E, then: E, otherwise: E) -> E {
    E(Expr::Ternary {
        cond: Box::new(cond.0),
        then: Box::new(then.0),
        otherwise: Box::new(otherwise.0),
    })
}

/// Two-argument minimum, mirroring the paper's overloaded `min` builtin.
pub fn min2(a: impl Into<E>, b: impl Into<E>) -> E {
    E(Expr::Call(Builtin::Min, vec![a.into().0, b.into().0]))
}

/// Two-argument maximum.
pub fn max2(a: impl Into<E>, b: impl Into<E>) -> E {
    E(Expr::Call(Builtin::Max, vec![a.into().0, b.into().0]))
}

impl E {
    /// Unwrap into the raw [`Expr`].
    pub fn into_expr(self) -> Expr {
        self.0
    }

    /// Borrow the raw [`Expr`].
    pub fn expr(&self) -> &Expr {
        &self.0
    }

    fn bin(op: BinOp, a: E, b: E) -> E {
        E(Expr::Binary(op, Box::new(a.0), Box::new(b.0)))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Lt, self, rhs.into())
    }

    /// `self <= rhs`
    pub fn le(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Le, self, rhs.into())
    }

    /// `self > rhs`
    pub fn gt(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Gt, self, rhs.into())
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Ge, self, rhs.into())
    }

    /// `self == rhs`
    pub fn eq(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Eq, self, rhs.into())
    }

    /// `self != rhs`
    pub fn ne(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Ne, self, rhs.into())
    }

    /// Short-circuiting `self && rhs`.
    pub fn and(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::And, self, rhs.into())
    }

    /// Short-circuiting `self || rhs`.
    pub fn or(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Or, self, rhs.into())
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> E {
        E(Expr::Unary(UnOp::Not, Box::new(self.0)))
    }

    /// Python floor division `self // rhs`.
    pub fn floor_div(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::FloorDiv, self, rhs.into())
    }

    /// Remainder `self % rhs` (also available via the `%` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Rem, self, rhs.into())
    }
}

impl From<Expr> for E {
    fn from(e: Expr) -> Self {
        E(e)
    }
}

impl From<i64> for E {
    fn from(i: i64) -> Self {
        lit(i)
    }
}

impl From<i32> for E {
    fn from(i: i32) -> Self {
        lit(i64::from(i))
    }
}

impl From<&str> for E {
    fn from(s: &str) -> Self {
        lit(s)
    }
}

impl From<bool> for E {
    fn from(b: bool) -> Self {
        lit(b)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<E>> std::ops::$trait<R> for E {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                E::bin($op, self, rhs.into())
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);

impl std::ops::Neg for E {
    type Output = E;
    fn neg(self) -> E {
        E(Expr::Unary(UnOp::Neg, Box::new(self.0)))
    }
}

/// A `Copy` reference to a variable by name, so that the [`crate::space!`]
/// macro can introduce each declared name as a reusable binding (an `E` would
/// be moved on first use). Participates in the same operator overloading as
/// [`E`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarRef(pub &'static str);

impl VarRef {
    /// Convert to an expression.
    pub fn e(self) -> E {
        var(self.0)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: impl Into<E>) -> E {
        self.e().lt(rhs)
    }

    /// `self <= rhs`
    pub fn le(self, rhs: impl Into<E>) -> E {
        self.e().le(rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: impl Into<E>) -> E {
        self.e().gt(rhs)
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: impl Into<E>) -> E {
        self.e().ge(rhs)
    }

    /// `self == rhs`
    pub fn eq(self, rhs: impl Into<E>) -> E {
        self.e().eq(rhs)
    }

    /// `self != rhs`
    pub fn ne(self, rhs: impl Into<E>) -> E {
        self.e().ne(rhs)
    }

    /// Short-circuiting and.
    pub fn and(self, rhs: impl Into<E>) -> E {
        self.e().and(rhs)
    }

    /// Short-circuiting or.
    pub fn or(self, rhs: impl Into<E>) -> E {
        self.e().or(rhs)
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> E {
        self.e().not()
    }

    /// Python floor division.
    pub fn floor_div(self, rhs: impl Into<E>) -> E {
        self.e().floor_div(rhs)
    }
}

impl From<VarRef> for E {
    fn from(v: VarRef) -> E {
        v.e()
    }
}

macro_rules! impl_varref_binop {
    ($trait:ident, $method:ident) => {
        impl<R: Into<E>> std::ops::$trait<R> for VarRef {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                std::ops::$trait::$method(self.e(), rhs)
            }
        }
    };
}

impl_varref_binop!(Add, add);
impl_varref_binop!(Sub, sub);
impl_varref_binop!(Mul, mul);
impl_varref_binop!(Div, div);
impl_varref_binop!(Rem, rem);

impl std::ops::Neg for VarRef {
    type Output = E;
    fn neg(self) -> E {
        -self.e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, i64)]) -> HashMap<Arc<str>, Value> {
        pairs
            .iter()
            .map(|(k, v)| (Arc::<str>::from(*k), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn arithmetic_builder_and_eval() {
        let e = (var("a") * 3 + var("b")) / 2;
        let env = env(&[("a", 5), ("b", 1)]);
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Int(8));
    }

    #[test]
    fn unbound_variable_errors_like_nameerror() {
        let e = var("missing") + 1;
        assert_eq!(
            e.expr().eval(&NoBindings),
            Err(EvalError::Unbound("missing".into()))
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let env = env(&[("x", 4)]);
        let e = var("x").gt(2).and(var("x").lt(10));
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(true));
        let e = var("x").gt(5).or(var("x").eq(4));
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // `x != 0 && 10 % x == 0` must not divide by zero when x == 0.
        let env = env(&[("x", 0)]);
        let e = var("x").ne(0).and((lit(10) % var("x")).eq(0));
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(false));
        // Or-side short circuit.
        let e = var("x").eq(0).or((lit(10) % var("x")).eq(0));
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn ternary_selects_branch() {
        let env = env(&[("trans_a", 0), ("blk_m", 32), ("blk_k", 8)]);
        let e = ternary(var("trans_a").ne(0), var("blk_m"), var("blk_k"));
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Int(8));
    }

    #[test]
    fn builtins() {
        let env = env(&[("a", 7), ("b", 3)]);
        assert_eq!(
            min2(var("a"), var("b")).expr().eval(&env).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            max2(var("a"), var("b")).expr().eval(&env).unwrap(),
            Value::Int(7)
        );
        let dc = E(Expr::Call(Builtin::DivCeil, vec![var("a").0, var("b").0]));
        assert_eq!(dc.expr().eval(&env).unwrap(), Value::Int(3));
        let g = E(Expr::Call(Builtin::Gcd, vec![lit(12).0, lit(18).0]));
        assert_eq!(g.expr().eval(&NoBindings).unwrap(), Value::Int(6));
        let r = E(Expr::Call(Builtin::RoundUp, vec![lit(33).0, lit(32).0]));
        assert_eq!(r.expr().eval(&NoBindings).unwrap(), Value::Int(64));
    }

    #[test]
    fn dependency_extraction() {
        let e = (var("dim_m") * var("dim_n")).gt(var("max_threads"));
        let deps = e.expr().deps();
        let names: Vec<&str> = deps.iter().map(|s| &**s).collect();
        assert_eq!(names, vec!["dim_m", "dim_n", "max_threads"]);
    }

    #[test]
    fn string_settings_in_expressions() {
        let mut env: HashMap<Arc<str>, Value> = HashMap::new();
        env.insert(Arc::from("precision"), Value::from("double"));
        let e = var("precision").eq("double");
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(true));
        let e = var("precision").eq("single");
        assert_eq!(e.expr().eval(&env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = (var("a") + 1) * var("b");
        assert_eq!(e.expr().to_string(), "((a + 1) * b)");
        let t = ternary(var("c").ne(0), lit(1), lit(2));
        assert_eq!(t.expr().to_string(), "((c != 0) ? 1 : 2)");
    }

    #[test]
    fn size_counts_nodes() {
        let e = (var("a") + 1) * var("b");
        assert_eq!(e.expr().size(), 5);
    }
}
