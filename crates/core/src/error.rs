//! Error types for space construction, planning and evaluation.

use std::fmt;

/// Errors raised while evaluating expressions, iterators or constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An operation received a value of the wrong type.
    TypeError {
        /// What the operation required.
        expected: &'static str,
        /// What it actually got.
        got: &'static str,
    },
    /// Integer or float division by zero.
    DivisionByZero,
    /// Integer overflow in checked arithmetic.
    Overflow,
    /// Comparison involving a NaN float.
    NanComparison,
    /// A variable was read before any enclosing loop bound it. The paper's
    /// expression iterators raise `NameError`/`UnboundLocalError` in the same
    /// situation (Section V).
    Unbound(String),
    /// A deferred iterator/constraint closure reported a domain error.
    Custom(String),
}

impl EvalError {
    /// Convenience constructor for [`EvalError::TypeError`].
    pub fn type_error(expected: &'static str, got: &'static str) -> Self {
        EvalError::TypeError { expected, got }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeError { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "integer overflow"),
            EvalError::NanComparison => write!(f, "comparison with NaN"),
            EvalError::Unbound(name) => write!(f, "unbound variable `{name}`"),
            EvalError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors raised while building a [`crate::space::Space`] or planning it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// Two definitions share a name.
    DuplicateName(String),
    /// A definition references a name that is never defined.
    UnknownName {
        /// The referencing definition.
        referrer: String,
        /// The missing dependency.
        missing: String,
    },
    /// The dependency graph contains a cycle; the names form the cycle in
    /// order.
    Cycle(Vec<String>),
    /// A name is not a valid identifier for code generation.
    InvalidName(String),
    /// The space has no iterators; there is nothing to enumerate.
    Empty,
    /// Lowering to the integer IR failed (e.g. a non-constant string var).
    Lowering(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateName(n) => write!(f, "duplicate definition of `{n}`"),
            SpaceError::UnknownName { referrer, missing } => {
                write!(f, "`{referrer}` references unknown name `{missing}`")
            }
            SpaceError::Cycle(names) => {
                write!(f, "dependency cycle: {}", names.join(" -> "))
            }
            SpaceError::InvalidName(n) => write!(f, "invalid identifier `{n}`"),
            SpaceError::Empty => write!(f, "search space has no iterators"),
            SpaceError::Lowering(msg) => write!(f, "lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EvalError::type_error("int", "str").to_string(),
            "type error: expected int, got str"
        );
        assert_eq!(
            SpaceError::Cycle(vec!["a".into(), "b".into(), "a".into()]).to_string(),
            "dependency cycle: a -> b -> a"
        );
        assert_eq!(
            SpaceError::UnknownName {
                referrer: "blk_m".into(),
                missing: "dim_q".into()
            }
            .to_string(),
            "`blk_m` references unknown name `dim_q`"
        );
    }
}
