//! Error types for space construction, planning and evaluation.

use std::fmt;

/// Errors raised while evaluating expressions, iterators or constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An operation received a value of the wrong type.
    TypeError {
        /// What the operation required.
        expected: &'static str,
        /// What it actually got.
        got: &'static str,
    },
    /// Integer or float division by zero.
    DivisionByZero,
    /// Integer overflow in checked arithmetic.
    Overflow,
    /// Comparison involving a NaN float.
    NanComparison,
    /// A variable was read before any enclosing loop bound it. The paper's
    /// expression iterators raise `NameError`/`UnboundLocalError` in the same
    /// situation (Section V).
    Unbound(String),
    /// A deferred iterator/constraint closure reported a domain error.
    Custom(String),
    /// Evaluation was interrupted by a cooperative cancel token or a
    /// wall-clock deadline. This is a control signal, not a data error: the
    /// sweep supervisor converts it into a partial result instead of a fault.
    Cancelled,
    /// An error annotated with the point at which it occurred: the failing
    /// constraint/define name and the values of the iterators bound at the
    /// time. Produced by the compiled engine so a fault deep inside a
    /// multi-hour sweep is actionable without re-running it.
    AtPoint {
        /// The underlying error.
        source: Box<EvalError>,
        /// Where in the space it happened.
        context: Box<PointContext>,
    },
}

/// Location of an [`EvalError`] inside a search space: which expression was
/// being evaluated and which iterator/define values were in scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointContext {
    /// Name of the failing constraint, define or iterator.
    pub site: String,
    /// `(name, value)` pairs for every slot bound when the error fired, in
    /// declaration order.
    pub bindings: Vec<(String, i64)>,
}

impl PointContext {
    /// Render the bindings as `a=1, b=2`.
    pub fn bindings_display(&self) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.bindings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }
}

impl EvalError {
    /// Convenience constructor for [`EvalError::TypeError`].
    pub fn type_error(expected: &'static str, got: &'static str) -> Self {
        EvalError::TypeError { expected, got }
    }

    /// Attach point context to an error. No-op for errors that already carry
    /// context (the innermost location wins) and for [`EvalError::Cancelled`],
    /// which is a control signal rather than a point fault.
    pub fn with_point(self, site: impl Into<String>, bindings: Vec<(String, i64)>) -> Self {
        match self {
            EvalError::AtPoint { .. } | EvalError::Cancelled => self,
            other => EvalError::AtPoint {
                source: Box::new(other),
                context: Box::new(PointContext {
                    site: site.into(),
                    bindings,
                }),
            },
        }
    }

    /// The underlying error with any [`EvalError::AtPoint`] wrapper stripped.
    pub fn root(&self) -> &EvalError {
        match self {
            EvalError::AtPoint { source, .. } => source.root(),
            other => other,
        }
    }

    /// The point context, if this error carries one.
    pub fn point_context(&self) -> Option<&PointContext> {
        match self {
            EvalError::AtPoint { context, .. } => Some(context),
            _ => None,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeError { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "integer overflow"),
            EvalError::NanComparison => write!(f, "comparison with NaN"),
            EvalError::Unbound(name) => write!(f, "unbound variable `{name}`"),
            EvalError::Custom(msg) => write!(f, "{msg}"),
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::AtPoint { source, context } => {
                write!(f, "{source} while evaluating `{}`", context.site)?;
                if !context.bindings.is_empty() {
                    write!(f, " at {}", context.bindings_display())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors raised while building a [`crate::space::Space`] or planning it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// Two definitions share a name.
    DuplicateName(String),
    /// A definition references a name that is never defined.
    UnknownName {
        /// The referencing definition.
        referrer: String,
        /// The missing dependency.
        missing: String,
    },
    /// The dependency graph contains a cycle; the names form the cycle in
    /// order.
    Cycle(Vec<String>),
    /// A name is not a valid identifier for code generation.
    InvalidName(String),
    /// The space has no iterators; there is nothing to enumerate.
    Empty,
    /// Lowering to the integer IR failed (e.g. a non-constant string var).
    Lowering(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateName(n) => write!(f, "duplicate definition of `{n}`"),
            SpaceError::UnknownName { referrer, missing } => {
                write!(f, "`{referrer}` references unknown name `{missing}`")
            }
            SpaceError::Cycle(names) => {
                write!(f, "dependency cycle: {}", names.join(" -> "))
            }
            SpaceError::InvalidName(n) => write!(f, "invalid identifier `{n}`"),
            SpaceError::Empty => write!(f, "search space has no iterators"),
            SpaceError::Lowering(msg) => write!(f, "lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EvalError::type_error("int", "str").to_string(),
            "type error: expected int, got str"
        );
        assert_eq!(
            SpaceError::Cycle(vec!["a".into(), "b".into(), "a".into()]).to_string(),
            "dependency cycle: a -> b -> a"
        );
        assert_eq!(
            SpaceError::UnknownName {
                referrer: "blk_m".into(),
                missing: "dim_q".into()
            }
            .to_string(),
            "`blk_m` references unknown name `dim_q`"
        );
    }

    #[test]
    fn point_context_wraps_once_and_roots() {
        let e = EvalError::DivisionByZero
            .with_point("tpb", vec![("a".into(), 1), ("b".into(), 32)])
            .with_point("outer", vec![]);
        assert_eq!(e.root(), &EvalError::DivisionByZero);
        let ctx = e.point_context().expect("context");
        assert_eq!(ctx.site, "tpb");
        assert_eq!(
            e.to_string(),
            "division by zero while evaluating `tpb` at a=1, b=32"
        );
    }

    #[test]
    fn cancelled_takes_no_context() {
        let e = EvalError::Cancelled.with_point("x", vec![]);
        assert_eq!(e, EvalError::Cancelled);
        assert!(e.point_context().is_none());
    }
}
