//! Dependency DAG over iterators, derived variables and constraints —
//! the theoretical framework of Section X of the paper.
//!
//! Vertices are the user's definitions (`V = I ∪ C`, plus derived variables
//! which the paper folds into expressions); there is an edge `(v, w)` when
//! `v` is used to express `w`. The *level sets* of the DAG — `level(v) = 0`
//! for dependency-free vertices, otherwise `1 + max(level of deps)` — induce
//! the weak order used to generate loop nests: loops may be reordered freely
//! within a level, and outer levels (near `L0`) are the parallelization
//! points.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::SpaceError;

/// What a DAG vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A search-space dimension (blue circle in Fig. 16).
    Iter,
    /// A derived variable (intermediate box).
    Derived,
    /// A pruning constraint (red octagon in Fig. 16).
    Constraint,
}

/// The dependency DAG. Node ids are dense indices assigned by the
/// [`crate::space::Space`] builder: iterators first, then derived variables,
/// then constraints.
#[derive(Debug, Clone)]
pub struct Dag {
    names: Vec<Arc<str>>,
    kinds: Vec<NodeKind>,
    /// `deps[v]` = nodes that `v` depends on (edges into `v`).
    deps: Vec<Vec<usize>>,
    /// `rdeps[v]` = nodes that depend on `v`.
    rdeps: Vec<Vec<usize>>,
    /// Longest-path level of each node.
    levels: Vec<usize>,
    /// A topological order (stable: by level, then definition index).
    topo: Vec<usize>,
}

impl Dag {
    /// Build a DAG from per-node dependency lists; checks for cycles.
    pub fn new(
        names: Vec<Arc<str>>,
        kinds: Vec<NodeKind>,
        deps: Vec<Vec<usize>>,
    ) -> Result<Dag, SpaceError> {
        let n = names.len();
        debug_assert_eq!(kinds.len(), n);
        debug_assert_eq!(deps.len(), n);

        let mut rdeps = vec![Vec::new(); n];
        for (v, ds) in deps.iter().enumerate() {
            for &d in ds {
                rdeps[d].push(v);
            }
        }

        // Kahn's algorithm for cycle detection + a topological order.
        let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        ready.sort_unstable();
        let mut topo = Vec::with_capacity(n);
        let mut levels = vec![0usize; n];
        while !ready.is_empty() {
            // Pop the smallest ready node for determinism.
            ready.sort_unstable();
            let v = ready.remove(0);
            topo.push(v);
            for &w in &rdeps[v] {
                levels[w] = levels[w].max(levels[v] + 1);
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    ready.push(w);
                }
            }
        }

        if topo.len() != n {
            // A cycle exists among the unprocessed nodes; walk it for the
            // error message.
            let in_topo: Vec<bool> = {
                let mut b = vec![false; n];
                for &v in &topo {
                    b[v] = true;
                }
                b
            };
            let start = (0..n).find(|&v| !in_topo[v]).expect("cycle node");
            let mut path = vec![start];
            let mut seen = HashMap::new();
            seen.insert(start, 0usize);
            let mut cur = start;
            loop {
                let next = deps[cur]
                    .iter()
                    .copied()
                    .find(|&d| !in_topo[d])
                    .expect("cycle must continue among unprocessed nodes");
                if let Some(&pos) = seen.get(&next) {
                    let mut cycle: Vec<String> =
                        path[pos..].iter().map(|&v| names[v].to_string()).collect();
                    cycle.push(names[next].to_string());
                    return Err(SpaceError::Cycle(cycle));
                }
                seen.insert(next, path.len());
                path.push(next);
                cur = next;
            }
        }

        // Re-sort topo stably by (level, index) to get the canonical order.
        let mut topo: Vec<usize> = (0..n).collect();
        topo.sort_by_key(|&v| (levels[v], v));

        Ok(Dag { names, kinds, deps, rdeps, levels, topo })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The node's name.
    pub fn name(&self, v: usize) -> &Arc<str> {
        &self.names[v]
    }

    /// The node's kind.
    pub fn kind(&self, v: usize) -> NodeKind {
        self.kinds[v]
    }

    /// Direct dependencies of `v`.
    pub fn deps(&self, v: usize) -> &[usize] {
        &self.deps[v]
    }

    /// Direct dependents of `v`.
    pub fn dependents(&self, v: usize) -> &[usize] {
        &self.rdeps[v]
    }

    /// Longest-path level of `v` (level sets of Section X-B).
    pub fn level(&self, v: usize) -> usize {
        self.levels[v]
    }

    /// Canonical topological order: by (level, definition index).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// The level sets `L0, L1, ...`: nodes grouped by level.
    pub fn level_sets(&self) -> Vec<Vec<usize>> {
        let max = self.levels.iter().copied().max().unwrap_or(0);
        let mut sets = vec![Vec::new(); max + 1];
        for v in &self.topo {
            sets[self.levels[*v]].push(*v);
        }
        sets
    }

    /// Transitive closure of dependencies of `v` (not including `v`).
    pub fn transitive_deps(&self, v: usize) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.deps[v].to_vec();
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            out.push(u);
            stack.extend_from_slice(&self.deps[u]);
        }
        out.sort_unstable();
        out
    }

    /// `v ⪰ w` in the weak order: true if there is a dependency path from
    /// `w` to `v` (i.e. `v` transitively depends on `w`).
    pub fn succeeds(&self, v: usize, w: usize) -> bool {
        self.transitive_deps(v).binary_search(&w).is_ok()
    }

    /// Render the DAG in Graphviz DOT, in the style of Fig. 16: iterators as
    /// blue circles, constraints as red octagons, derived variables as gray
    /// boxes.
    pub fn to_dot(&self, title: &str) -> String {
        let mut s = String::new();
        s.push_str("digraph \"");
        s.push_str(title);
        s.push_str("\" {\n  rankdir=TB;\n");
        for v in 0..self.len() {
            let (shape, color) = match self.kinds[v] {
                NodeKind::Iter => ("ellipse", "lightblue"),
                NodeKind::Derived => ("box", "lightgray"),
                NodeKind::Constraint => ("octagon", "lightcoral"),
            };
            s.push_str(&format!(
                "  \"{}\" [shape={shape}, style=filled, fillcolor={color}, label=\"{}\\nL{}\"];\n",
                self.names[v], self.names[v], self.levels[v]
            ));
        }
        for v in 0..self.len() {
            for &d in &self.deps[v] {
                s.push_str(&format!("  \"{}\" -> \"{}\";\n", self.names[d], self.names[v]));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    /// dim_m -> blk_m -> check, dim_n independent.
    fn diamond() -> Dag {
        Dag::new(
            vec![name("dim_m"), name("dim_n"), name("blk_m"), name("check")],
            vec![
                NodeKind::Iter,
                NodeKind::Iter,
                NodeKind::Iter,
                NodeKind::Constraint,
            ],
            vec![vec![], vec![], vec![0], vec![1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn levels_and_topo() {
        let d = diamond();
        assert_eq!(d.level(0), 0);
        assert_eq!(d.level(1), 0);
        assert_eq!(d.level(2), 1);
        assert_eq!(d.level(3), 2);
        assert_eq!(d.topo_order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn level_sets_group_by_level() {
        let d = diamond();
        let sets = d.level_sets();
        assert_eq!(sets, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn transitive_deps_and_weak_order() {
        let d = diamond();
        assert_eq!(d.transitive_deps(3), vec![0, 1, 2]);
        assert!(d.succeeds(3, 0));
        assert!(d.succeeds(2, 0));
        assert!(!d.succeeds(0, 3));
        assert!(!d.succeeds(1, 0));
    }

    #[test]
    fn cycle_detection_reports_names() {
        let err = Dag::new(
            vec![name("a"), name("b"), name("c")],
            vec![NodeKind::Iter; 3],
            vec![vec![2], vec![0], vec![1]], // a <- c <- b <- a
        )
        .unwrap_err();
        match err {
            SpaceError::Cycle(names) => {
                assert!(names.len() >= 3);
                assert_eq!(names.first(), names.last());
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let err = Dag::new(
            vec![name("a")],
            vec![NodeKind::Iter],
            vec![vec![0]],
        )
        .unwrap_err();
        assert!(matches!(err, SpaceError::Cycle(_)));
    }

    #[test]
    fn dot_contains_shapes() {
        let d = diamond();
        let dot = d.to_dot("test");
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=octagon"));
        assert!(dot.contains("\"dim_m\" -> \"blk_m\""));
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn empty_dag() {
        let d = Dag::new(vec![], vec![], vec![]).unwrap();
        assert!(d.is_empty());
        assert!(d.level_sets().len() <= 1);
    }

    #[test]
    fn dependents_are_reverse_edges() {
        let d = diamond();
        assert_eq!(d.dependents(0), &[2]);
        assert_eq!(d.dependents(2), &[3]);
        assert!(d.dependents(3).is_empty());
    }
}
