//! Loop-nest planning: turning a [`Space`] into an ordered evaluation recipe.
//!
//! The plan realizes the paper's code-generation strategy (Section X): loops
//! are ordered by the DAG's weak order (level, then definition order), and —
//! the key "DAG-based pruning" optimization — every derived variable and
//! constraint is *hoisted* to the shallowest loop depth at which all of its
//! transitive iterator dependencies are bound, so that a violated constraint
//! prunes an entire subtree of the search space instead of single points.

use std::sync::Arc;

use crate::constraint::ConstraintClass;
use crate::dag::NodeKind;
use crate::error::SpaceError;
use crate::space::{NodeTarget, Space};

/// How loops are ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum LoopOrder {
    /// DAG level first, then definition order (the canonical weak order).
    #[default]
    Definition,
    /// An explicit iterator-name order; must still respect the DAG (checked).
    /// Within the constraints of the DAG this realizes the paper's
    /// "loops may be interchanged within each level".
    Explicit(Vec<String>),
    /// Within each DAG level, order iterators by descending statically
    /// realizable domain size — the paper's §X-B interchange "to introduce
    /// parallelization ... at the outermost loop nests": a wide level-0 loop
    /// maximizes the parallel driver's chunking grain. Domains that cannot
    /// be realized from constants alone keep their definition order.
    WidestOuter,
}

/// Options controlling plan construction.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Hoist derived variables and constraints to the shallowest depth where
    /// their inputs are bound (`true`, the paper's approach), or evaluate
    /// everything at the innermost loop (`false`, the naive baseline used in
    /// the ablation benchmarks).
    pub hoist: bool,
    /// Loop ordering policy.
    pub order: LoopOrder,
    /// Constraint classes to skip entirely (ablations; e.g. drop soft
    /// constraints to measure their pruning contribution).
    pub disabled_classes: Vec<ConstraintClass>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { hoist: true, order: LoopOrder::Definition, disabled_classes: Vec::new() }
    }
}

impl PlanOptions {
    /// The naive (non-hoisted) configuration: everything checked innermost.
    pub fn unhoisted() -> Self {
        PlanOptions { hoist: false, ..Self::default() }
    }
}

/// One step of the evaluation recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Open a loop over iterator `iter` (index into [`Space::iters`]);
    /// `depth` is the loop nesting depth, starting at 0.
    Bind {
        /// Iterator index.
        iter: usize,
        /// Loop depth.
        depth: usize,
    },
    /// Compute derived variable `derived` (index into [`Space::deriveds`]).
    Define {
        /// Derived-variable index.
        derived: usize,
    },
    /// Evaluate constraint `constraint`; if it rejects, skip to the next
    /// value of the enclosing loop.
    Check {
        /// Constraint index.
        constraint: usize,
    },
    /// All constraints passed: the current bindings form a surviving point.
    Visit,
}

/// An ordered evaluation recipe over a [`Space`].
#[derive(Debug, Clone)]
pub struct Plan {
    space: Arc<Space>,
    steps: Vec<Step>,
    loop_iters: Vec<usize>,
    options: PlanOptions,
}

impl Plan {
    /// Build a plan for the space with the given options.
    pub fn new(space: &Arc<Space>, options: PlanOptions) -> Result<Plan, SpaceError> {
        let dag = space.dag();
        let n_iters = space.iters().len();

        // ------------------------------------------------------------------
        // 1. Choose the loop order.
        // ------------------------------------------------------------------
        let loop_iters: Vec<usize> = match &options.order {
            LoopOrder::Definition => {
                let mut order: Vec<usize> = (0..n_iters).collect();
                order.sort_by_key(|&i| (dag.level(space.iter_node(i)), i));
                order
            }
            LoopOrder::WidestOuter => {
                let consts = crate::space::ConstBindings(space.consts());
                let width = |i: usize| -> i64 {
                    // Only constants-realizable domains have a static width;
                    // everything else sorts as width 0 (keeps definition
                    // order among themselves via the index tie-break).
                    space.iters()[i]
                        .kind
                        .realize(&consts)
                        .map(|r| r.len() as i64)
                        .unwrap_or(0)
                };
                let mut order: Vec<usize> = (0..n_iters).collect();
                order.sort_by_key(|&i| (dag.level(space.iter_node(i)), -width(i), i));
                order
            }
            LoopOrder::Explicit(names) => {
                let mut order = Vec::with_capacity(n_iters);
                for name in names {
                    let idx = space
                        .iters()
                        .iter()
                        .position(|d| &*d.name == name.as_str())
                        .ok_or_else(|| SpaceError::UnknownName {
                            referrer: "plan loop order".into(),
                            missing: name.clone(),
                        })?;
                    order.push(idx);
                }
                if order.len() != n_iters {
                    return Err(SpaceError::Lowering(format!(
                        "explicit loop order names {} of {} iterators",
                        order.len(),
                        n_iters
                    )));
                }
                // Validate: every iterator's iterator-deps appear earlier.
                let mut pos = vec![usize::MAX; n_iters];
                for (p, &i) in order.iter().enumerate() {
                    pos[i] = p;
                }
                for &i in &order {
                    // Transitive deps catch iterator -> derived -> iterator
                    // chains, whose loops must still open in order.
                    for &dep in &dag.transitive_deps(space.iter_node(i)) {
                        if let NodeTarget::Iter(j) = space.node_target(dep) {
                            if pos[j] > pos[i] {
                                return Err(SpaceError::Lowering(format!(
                                    "loop order places `{}` before its dependency `{}`",
                                    space.iters()[i].name,
                                    space.iters()[j].name
                                )));
                            }
                        }
                    }
                }
                order
            }
        };

        let mut loop_pos = vec![usize::MAX; n_iters];
        for (p, &i) in loop_iters.iter().enumerate() {
            loop_pos[i] = p;
        }

        // ------------------------------------------------------------------
        // 2. Compute each node's bind depth: the loop position after which
        //    all of its transitive iterator deps are bound. Depth usize::MAX
        //    is a sentinel replaced below; preamble nodes get depth 0 slot
        //    *before* the first loop, encoded as None.
        // ------------------------------------------------------------------
        let n_nodes = dag.len();
        // depth[node] = Option<usize>: None = computable in the preamble.
        let mut depth: Vec<Option<usize>> = vec![None; n_nodes];
        for &v in dag.topo_order() {
            let mut d: Option<usize> = None;
            for &dep in dag.deps(v) {
                let dep_depth = match space.node_target(dep) {
                    NodeTarget::Iter(i) => Some(loop_pos[i]),
                    _ => depth[dep],
                };
                d = match (d, dep_depth) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            }
            if let NodeTarget::Iter(i) = space.node_target(v) {
                // An iterator's own loop lives at its position; its *bounds*
                // need deps bound strictly before, which the order guarantees.
                depth[v] = Some(loop_pos[i]);
            } else {
                depth[v] = d;
            }
        }

        // ------------------------------------------------------------------
        // 3. Emit steps. For each depth d (None = preamble, Some(p) = after
        //    binding loop p), emit Defines/Checks in a greedy topological
        //    order that prefers constraints (prune before computing values
        //    nobody will use), then derived variables.
        // ------------------------------------------------------------------
        let innermost = loop_iters.len() - 1;
        let disabled =
            |class: ConstraintClass| options.disabled_classes.contains(&class);

        // Collect, per slot (0 = preamble, p+1 = after loop p), the non-iter
        // nodes assigned there.
        let n_slots = loop_iters.len() + 1;
        let mut slot_nodes: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
        for (v, &vdepth) in depth.iter().enumerate() {
            let target = space.node_target(v);
            if matches!(target, NodeTarget::Iter(_)) {
                continue;
            }
            if let NodeTarget::Constraint(c) = target {
                if disabled(space.constraints()[c].class) {
                    continue;
                }
            }
            let slot = if options.hoist {
                match vdepth {
                    None => 0,
                    Some(p) => p + 1,
                }
            } else {
                innermost + 1
            };
            slot_nodes[slot].push(v);
        }

        // Greedy topo order within each slot, preferring Check over Define
        // when both are ready. "Ready" means every dependency is either an
        // iterator/constant (bound by construction) or a derived variable
        // already emitted.
        let mut emitted = vec![false; n_nodes];
        let order_slot = |nodes: &[usize], emitted: &mut Vec<bool>| -> Vec<usize> {
            let mut remaining: Vec<usize> = nodes.to_vec();
            let mut out = Vec::with_capacity(remaining.len());
            while !remaining.is_empty() {
                let ready_idx = remaining
                    .iter()
                    .position(|&v| {
                        dag.deps(v).iter().all(|&dep| match space.node_target(dep) {
                            NodeTarget::Derived(_) => emitted[dep],
                            _ => true,
                        }) && dag.kind(v) == NodeKind::Constraint
                    })
                    .or_else(|| {
                        remaining.iter().position(|&v| {
                            dag.deps(v).iter().all(|&dep| {
                                match space.node_target(dep) {
                                    NodeTarget::Derived(_) => emitted[dep],
                                    _ => true,
                                }
                            })
                        })
                    })
                    .expect("topological order exists within a slot");
                let v = remaining.remove(ready_idx);
                emitted[v] = true;
                out.push(v);
            }
            out
        };

        let mut steps = Vec::new();
        // Slot 0: preamble (constants-only nodes).
        for v in order_slot(&slot_nodes[0], &mut emitted) {
            match space.node_target(v) {
                NodeTarget::Derived(d) => steps.push(Step::Define { derived: d }),
                NodeTarget::Constraint(c) => steps.push(Step::Check { constraint: c }),
                NodeTarget::Iter(_) => unreachable!(),
            }
        }
        for (p, &i) in loop_iters.iter().enumerate() {
            steps.push(Step::Bind { iter: i, depth: p });
            for v in order_slot(&slot_nodes[p + 1], &mut emitted) {
                match space.node_target(v) {
                    NodeTarget::Derived(d) => steps.push(Step::Define { derived: d }),
                    NodeTarget::Constraint(c) => steps.push(Step::Check { constraint: c }),
                    NodeTarget::Iter(_) => unreachable!(),
                }
            }
        }
        steps.push(Step::Visit);

        Ok(Plan { space: Arc::clone(space), steps, loop_iters, options })
    }

    /// The space this plan evaluates.
    pub fn space(&self) -> &Arc<Space> {
        &self.space
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Iterator indices in loop order, outermost first.
    pub fn loop_iters(&self) -> &[usize] {
        &self.loop_iters
    }

    /// The options the plan was built with.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// Pretty-print the plan as an indented pseudo-loop-nest (used in docs,
    /// examples and the `repro` binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut indent = 0usize;
        for step in &self.steps {
            match step {
                Step::Bind { iter, depth } => {
                    indent = *depth;
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!(
                        "for {} in {:?}:\n",
                        self.space.iters()[*iter].name,
                        self.space.iters()[*iter].kind
                    ));
                    indent += 1;
                }
                Step::Define { derived } => {
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!(
                        "{} = {:?}\n",
                        self.space.deriveds()[*derived].name,
                        self.space.deriveds()[*derived].kind
                    ));
                }
                Step::Check { constraint } => {
                    let c = &self.space.constraints()[*constraint];
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!("if {} [{}]: continue\n", c.name, c.class));
                }
                Step::Visit => {
                    out.push_str(&"  ".repeat(indent));
                    out.push_str("visit(point)\n");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;
    use crate::expr::var;

    fn space() -> Arc<Space> {
        Space::builder("planner")
            .constant("cap", 16)
            .range("a", 1, 5)
            .range("b", 1, 5)
            .range_step("c", var("a"), 17, var("a"))
            .derived("ab", var("a") * var("b"))
            .derived("abc", var("ab") * var("c"))
            .constraint("too_big", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .constraint("odd_c", ConstraintClass::Soft, (var("c") % 2).ne(0))
            .build()
            .unwrap()
    }

    fn step_names(plan: &Plan) -> Vec<String> {
        plan.steps()
            .iter()
            .map(|s| match s {
                Step::Bind { iter, .. } => format!("for:{}", plan.space().iters()[*iter].name),
                Step::Define { derived } => {
                    format!("def:{}", plan.space().deriveds()[*derived].name)
                }
                Step::Check { constraint } => {
                    format!("chk:{}", plan.space().constraints()[*constraint].name)
                }
                Step::Visit => "visit".to_string(),
            })
            .collect()
    }

    #[test]
    fn hoisted_plan_checks_early() {
        let plan = Plan::new(&space(), PlanOptions::default()).unwrap();
        let names = step_names(&plan);
        // `ab` and `too_big` must appear right after `b` is bound, before the
        // `c` loop opens.
        let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
        assert!(pos("def:ab") < pos("for:c"));
        assert!(pos("chk:too_big") < pos("for:c"));
        assert!(pos("chk:odd_c") > pos("for:c"));
        assert_eq!(names.last().unwrap(), "visit");
    }

    #[test]
    fn unhoisted_plan_checks_innermost() {
        let plan = Plan::new(&space(), PlanOptions::unhoisted()).unwrap();
        let names = step_names(&plan);
        let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
        assert!(pos("def:ab") > pos("for:c"));
        assert!(pos("chk:too_big") > pos("for:c"));
    }

    #[test]
    fn constraints_checked_before_unneeded_defines() {
        // Within a slot, a ready Check is emitted before a ready Define.
        let plan = Plan::new(&space(), PlanOptions::default()).unwrap();
        let names = step_names(&plan);
        let pos = |n: &str| names.iter().position(|x| x == n).unwrap();
        // odd_c (depends only on c) should be checked before abc is defined.
        assert!(pos("chk:odd_c") < pos("def:abc"));
    }

    #[test]
    fn loop_order_respects_dag() {
        let plan = Plan::new(&space(), PlanOptions::default()).unwrap();
        let order: Vec<&str> = plan
            .loop_iters()
            .iter()
            .map(|&i| &*plan.space().iters()[i].name)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn widest_outer_reorders_within_level_only() {
        // b (range 0..100) is wider than a (1..5); both level 0. c depends
        // on a and must stay innermost regardless.
        let s = Space::builder("widest")
            .range("a", 1, 5)
            .range("b", 0, 100)
            .range_step("c", var("a"), 17, var("a"))
            .build()
            .unwrap();
        let opts = PlanOptions { order: LoopOrder::WidestOuter, ..PlanOptions::default() };
        let plan = Plan::new(&s, opts).unwrap();
        let order: Vec<&str> = plan
            .loop_iters()
            .iter()
            .map(|&i| &*plan.space().iters()[i].name)
            .collect();
        assert_eq!(order, vec!["b", "a", "c"]);
        // Same survivors as the default order (cross-checked cheaply by the
        // number of steps: both plans cover all three loops + visit).
        let default_plan = Plan::new(&s, PlanOptions::default()).unwrap();
        assert_eq!(plan.steps().len(), default_plan.steps().len());
    }

    #[test]
    fn explicit_order_allows_interchange_within_level() {
        let opts = PlanOptions {
            order: LoopOrder::Explicit(vec!["b".into(), "a".into(), "c".into()]),
            ..PlanOptions::default()
        };
        let plan = Plan::new(&space(), opts).unwrap();
        let order: Vec<&str> = plan
            .loop_iters()
            .iter()
            .map(|&i| &*plan.space().iters()[i].name)
            .collect();
        assert_eq!(order, vec!["b", "a", "c"]);
    }

    #[test]
    fn explicit_order_rejecting_dag_violations() {
        let opts = PlanOptions {
            order: LoopOrder::Explicit(vec!["c".into(), "a".into(), "b".into()]),
            ..PlanOptions::default()
        };
        assert!(Plan::new(&space(), opts).is_err());
    }

    #[test]
    fn explicit_order_must_name_all_iterators() {
        let opts = PlanOptions {
            order: LoopOrder::Explicit(vec!["a".into()]),
            ..PlanOptions::default()
        };
        assert!(Plan::new(&space(), opts).is_err());
    }

    #[test]
    fn disabled_classes_are_skipped() {
        let opts = PlanOptions {
            disabled_classes: vec![ConstraintClass::Soft],
            ..PlanOptions::default()
        };
        let plan = Plan::new(&space(), opts).unwrap();
        let names = step_names(&plan);
        assert!(!names.contains(&"chk:odd_c".to_string()));
        assert!(names.contains(&"chk:too_big".to_string()));
    }

    #[test]
    fn render_is_indented() {
        let plan = Plan::new(&space(), PlanOptions::default()).unwrap();
        let text = plan.render();
        assert!(text.contains("for a in"));
        assert!(text.contains("visit(point)"));
    }

    #[test]
    fn preamble_nodes_before_first_loop() {
        let s = Space::builder("pre")
            .constant("n", 10)
            .derived("n2", var("n") * 2)
            .range("x", 0, var("n2"))
            .constraint("never", ConstraintClass::Generic, var("n2").lt(0))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let names = step_names(&plan);
        assert_eq!(names[0], "def:n2");
        assert_eq!(names[1], "chk:never");
        assert_eq!(names[2], "for:x");
    }
}
