//! Profile-guided constraint scheduling: in what *order* should the checks
//! hoisted to one loop level run?
//!
//! The paper's DAG construction (Section X) decides *where* each constraint
//! is evaluated — the shallowest loop at which its inputs are bound — but is
//! silent on the order of checks sharing a level, and measured kill rates at
//! one level routinely span 0 % to 98 % (see `BENCH_sweep.json`). Since the
//! checks of a level form a pure conjunction over already-bound slots,
//! *any* order yields the same survivors in the same emission order; cost,
//! however, differs wildly: the cheapest-deadliest check first means most
//! points die after one evaluation.
//!
//! This module provides the **static** half of that scheduling decision:
//!
//! * [`check_regions`] — the maximal runs of reorder-safe steps: in-loop
//!   checks *and the derived definitions interleaved between them*, all
//!   provably [infallible over the subtree's intervals](infallible_in) so
//!   error semantics are bit-for-bit preserved. Within a region each check
//!   forms a *unit* with the transitive closure of region defines it reads;
//!   units may run in any order as long as a unit's defines precede its
//!   check, and defines no executed unit needed run before control leaves
//!   the region (survivors must carry every derived value). Killing early
//!   therefore skips not just the remaining *checks* but their entire
//!   define chains — on the GEMM space that is 9 defines (divisions
//!   included) per point killed by the one deadly check of the level;
//! * [`CostModel`] — per-constraint cost (IR op count, a proxy for the
//!   engines' postfix program length) and a *kill prior* estimated by
//!   pushing the domain bounds through the interval analysis of
//!   [`crate::interval`];
//! * [`static_schedule`] — linearizes each region by ascending
//!   expected-cost-to-kill (unit cost / prior) in the lowered plan itself,
//!   so every consumer — interpreters, the threaded-code engine, and the
//!   C/Rust source generators — inherits the schedule for free.
//!
//! The *online* half (epoch-based re-sorting by observed kill rate per op)
//! lives in the engines; it starts from the static order produced here.

use std::cmp::Ordering;

use crate::interval::{interval_of, range_value_hull, Interval};
use crate::expr::Builtin;
use crate::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};

/// How an engine orders the checks within one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// The declared plan order (the paper's behaviour): checks run in the
    /// order the planner emitted them.
    #[default]
    Declared,
    /// Cost-model order: each reorder-safe group sorted by ascending
    /// expected-cost-to-kill at plan-lowering time ([`static_schedule`]).
    Static,
    /// Static order as the starting point, then periodic re-sorting by the
    /// kill rates actually observed while sweeping (worker-local, so results
    /// stay deterministic at any thread count).
    Adaptive,
}

impl ScheduleMode {
    /// Stable lower-case name (used by telemetry JSON and CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleMode::Declared => "declared",
            ScheduleMode::Static => "static",
            ScheduleMode::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for ScheduleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ScheduleMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ScheduleMode, String> {
        match s {
            "declared" => Ok(ScheduleMode::Declared),
            "static" => Ok(ScheduleMode::Static),
            "adaptive" => Ok(ScheduleMode::Adaptive),
            other => Err(format!(
                "unknown schedule mode `{other}` (expected declared, static or adaptive)"
            )),
        }
    }
}

/// Cost and kill prior for one lowered constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckScore {
    /// IR op count of the predicate — proportional to what one evaluation
    /// costs in every backend.
    pub cost: u32,
    /// Estimated probability that the predicate rejects a point, from
    /// interval analysis of the domain bounds (0 = never kills, 1 = always).
    pub kill_prior: f64,
}

impl CheckScore {
    /// Expected evaluations-worth of work spent per killed point: checks
    /// with the lowest value should run first. A floor on the prior keeps
    /// never-killing checks finitely ranked (they simply sort last).
    pub fn expected_cost_to_kill(&self) -> f64 {
        self.cost as f64 / self.kill_prior.max(1e-4)
    }
}

/// Per-constraint [`CheckScore`]s for one lowered plan, indexed by
/// constraint index (`None` for opaque constraints, which have no lowered
/// expression to score).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Constraint index → score.
    pub scores: Vec<Option<CheckScore>>,
}

impl CostModel {
    /// Score every expression constraint of a lowered plan.
    ///
    /// The plan's steps are walked once, maintaining a per-slot interval
    /// environment: range binds contribute the hull of their bound
    /// intervals, value-list binds their min/max, defines the interval of
    /// their expression, and opaque steps ⊤. Each check is then scored
    /// against the environment at its own position, i.e. with exactly the
    /// slots it can read bound.
    pub fn of(lp: &LoweredPlan) -> CostModel {
        let n = lp.plan.space().constraints().len();
        let mut scores: Vec<Option<CheckScore>> = vec![None; n];
        let mut env = vec![Interval::TOP; lp.n_slots as usize];
        for step in &lp.steps {
            if let LStep::Check { constraint, body: LBody::Expr(e) } = step {
                scores[*constraint] = Some(CheckScore {
                    cost: e.op_count(),
                    kill_prior: p_true(e, &env),
                });
            }
            env_step(step, &mut env);
        }
        CostModel { scores }
    }
}

/// Advance the per-slot interval environment across one lowered step: range
/// binds write the hull of the bound intervals, value-list binds their
/// min/max, defines the interval of their expression, and opaque steps ⊤.
fn env_step(step: &LStep, env: &mut [Interval]) {
    match step {
        LStep::Bind { slot, domain, .. } => {
            env[*slot as usize] = match domain {
                LIter::Range { start, stop, step } => {
                    let sa = interval_of(start, env).iv;
                    let so = interval_of(stop, env).iv;
                    // A constant-sign stride bounds executed iterations on
                    // the start side: `start ..< stop` ascending never goes
                    // below `start`, descending (exclusive stop) never
                    // above it. `range_value_hull` must stay conservative
                    // for unknown strides; empty ranges never run their
                    // body, so clamping `hi >= lo` is safe.
                    match step.as_const() {
                        Some(k) if k > 0 => Interval {
                            lo: sa.lo,
                            hi: so.hi.saturating_sub(1).max(sa.lo),
                        },
                        Some(k) if k < 0 => Interval {
                            lo: so.lo.saturating_add(1).min(sa.hi),
                            hi: sa.hi,
                        },
                        _ => range_value_hull(sa, so),
                    }
                }
                LIter::Values(v) => Interval {
                    lo: v.iter().copied().min().unwrap_or(0),
                    hi: v.iter().copied().max().unwrap_or(0),
                },
                LIter::Opaque { .. } => Interval::TOP,
            };
        }
        LStep::Define { slot, body, .. } => {
            env[*slot as usize] = match body {
                LBody::Expr(e) => interval_of(e, env).iv,
                LBody::Opaque => Interval::TOP,
            };
        }
        LStep::Check { .. } | LStep::Visit => {}
    }
}

/// Interval-aware infallibility: can evaluating `e` raise an error or panic
/// for *any* point of the subtree, judged against the interval environment?
///
/// Strictly more permissive than the syntactic [`IntExpr::infallible`]
/// (const-divisor only): a division is safe here whenever the divisor's
/// interval excludes 0 — e.g. `x % (a * b)` with positive loop iterators
/// `a`, `b`, the shape of the GEMM reshape constraints. The `i64::MIN / -1`
/// corner is excluded intervalically too, since backends disagree on it
/// (wrap vs. overflow error vs. panic). `div_ceil`/`round_up` additionally
/// need a provably positive divisor and `a + c - 1` provably in range
/// (their evaluation uses plain arithmetic that may panic in debug builds).
pub fn infallible_in(e: &IntExpr, env: &[Interval]) -> bool {
    match e {
        IntExpr::Const(_) | IntExpr::Slot(_) => true,
        IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => infallible_in(a, env),
        IntExpr::Bin(IntBinOp::Div | IntBinOp::FloorDiv | IntBinOp::Rem, a, b) => {
            infallible_in(a, env) && infallible_in(b, env) && {
                let ia = interval_of(a, env).iv;
                let ib = interval_of(b, env).iv;
                !(ib.contains(0) || (ib.contains(-1) && ia.contains(i64::MIN)))
            }
        }
        IntExpr::Bin(_, a, b) => infallible_in(a, env) && infallible_in(b, env),
        IntExpr::Call2(Builtin::Min | Builtin::Max | Builtin::Gcd, a, b) => {
            infallible_in(a, env) && infallible_in(b, env)
        }
        IntExpr::Call2(Builtin::DivCeil | Builtin::RoundUp, a, c) => {
            infallible_in(a, env) && infallible_in(c, env) && {
                let ia = interval_of(a, env).iv;
                let ic = interval_of(c, env).iv;
                ic.lo >= 1
                    && ia.lo as i128 + ic.lo as i128 > i64::MIN as i128
                    && ia.hi as i128 + ic.hi as i128 - 1 <= i64::MAX as i128
            }
        }
        IntExpr::Call2(_, _, _) => false,
        IntExpr::Ternary(c, t, f) => {
            infallible_in(c, env) && infallible_in(t, env) && infallible_in(f, env)
        }
    }
}

/// Interval widths past this are treated as "unknown" rather than as a
/// genuine uniform distribution — deriving a near-certain probability from a
/// ⊤-ish operand would be false confidence.
const HUGE_WIDTH: f64 = (1u64 << 32) as f64;

/// Estimated probability that `e` evaluates nonzero (i.e. *rejects*, since
/// lowered constraint bodies are rejection conditions) when each slot is
/// drawn uniformly from its interval in `env`.
///
/// Logical structure is followed exactly (`and` → product, assuming
/// independence; `or` → inclusion–exclusion; `not` → complement);
/// comparisons get a geometric overlap estimate; anything else degrades to
/// 1 / 0 / 0.5 by whether its interval excludes 0, is exactly `[0,0]`, or
/// straddles.
fn p_true(e: &IntExpr, env: &[Interval]) -> f64 {
    let p = match e {
        IntExpr::Bin(IntBinOp::And, a, b) => p_true(a, env) * p_true(b, env),
        IntExpr::Bin(IntBinOp::Or, a, b) => {
            let (pa, pb) = (p_true(a, env), p_true(b, env));
            pa + pb - pa * pb
        }
        IntExpr::Not(a) => 1.0 - p_true(a, env),
        IntExpr::Bin(
            op @ (IntBinOp::Lt | IntBinOp::Le | IntBinOp::Gt | IntBinOp::Ge),
            a,
            b,
        ) => {
            let (ia, ib) = (interval_of(a, env).iv, interval_of(b, env).iv);
            match op {
                IntBinOp::Lt => p_less(ia, ib, 0),
                IntBinOp::Le => p_less(ia, ib, 1),
                IntBinOp::Gt => p_less(ib, ia, 0),
                IntBinOp::Ge => p_less(ib, ia, 1),
                _ => unreachable!("matched comparison"),
            }
        }
        IntExpr::Bin(IntBinOp::Eq, a, b) => {
            p_eq(interval_of(a, env).iv, interval_of(b, env).iv)
        }
        IntExpr::Bin(IntBinOp::Ne, a, b) => {
            1.0 - p_eq(interval_of(a, env).iv, interval_of(b, env).iv)
        }
        other => {
            let iv = interval_of(other, env).iv;
            if !iv.contains(0) {
                1.0
            } else if iv == Interval::point(0) {
                0.0
            } else {
                0.5
            }
        }
    };
    p.clamp(0.0, 1.0)
}

/// `P(x < y + slack)` for `x` uniform over `a` and `y` uniform over `b`
/// (independent), via the continuous relaxation `x ~ U[lo, hi+1)`.
/// Statically decided comparisons return exactly 0 or 1; otherwise operands
/// wider than [`HUGE_WIDTH`] yield the uninformative 0.5.
fn p_less(a: Interval, b: Interval, slack: i64) -> f64 {
    // Exact decidedness first, in i128 so ⊤ bounds cannot overflow.
    let (al, ah) = (a.lo as i128, a.hi as i128);
    let (bl, bh) = (b.lo as i128 + slack as i128, b.hi as i128 + slack as i128);
    if ah < bl {
        return 1.0;
    }
    if al > bh {
        return 0.0;
    }
    let (a0, a1) = (al as f64, (ah + 1) as f64);
    let (b0, b1) = (bl as f64, (bh + 1) as f64);
    if a1 - a0 > HUGE_WIDTH || b1 - b0 > HUGE_WIDTH {
        return 0.5;
    }
    // P = (1 / |a|) ∫ over x in [a0, a1] of P(y + slack > x) dx, where the
    // integrand is 1 below b0, 0 above b1, and linear in between.
    let full = (a1.min(b0) - a0).max(0.0);
    let x0 = a0.max(b0);
    let x1 = a1.min(b1);
    let ramp = if x1 > x0 {
        ((b1 - x0).powi(2) - (b1 - x1).powi(2)) / (2.0 * (b1 - b0))
    } else {
        0.0
    };
    ((full + ramp) / (a1 - a0)).clamp(0.0, 1.0)
}

/// `P(x == y)` for independent uniforms over `a` and `b`: the overlap count
/// divided by the product of the widths (0.5 when an operand is huge —
/// "unknown", not "almost never").
fn p_eq(a: Interval, b: Interval) -> f64 {
    let lo = a.lo.max(b.lo) as i128;
    let hi = a.hi.min(b.hi) as i128;
    if hi < lo {
        return 0.0;
    }
    if a.is_point() && b.is_point() {
        return 1.0;
    }
    let wa = (a.hi as i128 - a.lo as i128 + 1) as f64;
    let wb = (b.hi as i128 - b.lo as i128 + 1) as f64;
    if wa > HUGE_WIDTH || wb > HUGE_WIDTH {
        return 0.5;
    }
    (((hi - lo + 1) as f64) / (wa * wb)).clamp(0.0, 1.0)
}

/// A maximal reorder-safe run of lowered steps: ≥ 2 checks plus the derived
/// definitions interleaved among them, all provably infallible over the
/// subtree's intervals (see [`check_regions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First step index of the region (a check or a define).
    pub start: usize,
    /// One past the region's last check (trailing defines are excluded —
    /// they run after every check in declared order already).
    pub end: usize,
    /// Step indices of the region's checks, in declared order (≥ 2).
    pub checks: Vec<usize>,
    /// Step indices of the region's defines, in declared (= dependency)
    /// order. At most 64, so engines can track execution in one bitmask.
    pub defines: Vec<usize>,
    /// Per check (parallel to `checks`): ascending indices into `defines`
    /// forming the transitive closure of region defines the check reads.
    /// Ascending index order is dependency order, so executing a closure
    /// front-to-back is always safe.
    pub deps: Vec<Vec<usize>>,
}

/// Collect the slots an expression reads.
fn expr_slots(e: &IntExpr, out: &mut Vec<u32>) {
    match e {
        IntExpr::Const(_) => {}
        IntExpr::Slot(s) => out.push(*s),
        IntExpr::Neg(a) | IntExpr::Not(a) | IntExpr::Abs(a) => expr_slots(a, out),
        IntExpr::Bin(_, a, b) | IntExpr::Call2(_, a, b) => {
            expr_slots(a, out);
            expr_slots(b, out);
        }
        IntExpr::Ternary(c, t, f) => {
            expr_slots(c, out);
            expr_slots(t, out);
            expr_slots(f, out);
        }
    }
}

/// The maximal reorder-safe regions of a lowered plan.
///
/// A step joins the current region only if it is inside at least one loop
/// (preamble checks gate the whole space and stay put) and is either a
/// check or a define whose body is a lowered expression [infallible over
/// the subtree's intervals](infallible_in). A fallible or opaque step, a
/// bind, or a visit *breaks* the run: moving work across it could turn an
/// evaluation error into a silent rejection or vice versa (and binds open
/// a new scope). Defines must be infallible too — scheduling a unit first
/// executes its define chain on points an earlier declared check might
/// have rejected before they ran.
///
/// Within a region the checks form a pure conjunction and the defines are
/// pure functions of bound slots, so any unit linearization — each check
/// preceded by its not-yet-run closure, all remaining defines before the
/// region exits downward — preserves survivors, emission order (survivor
/// points carry every derived slot), and error behaviour.
pub fn check_regions(lp: &LoweredPlan) -> Vec<Region> {
    let mut regions: Vec<Region> = Vec::new();
    let mut run: Vec<usize> = Vec::new(); // step indices of the current run
    let mut in_loop = false;
    let mut env = vec![Interval::TOP; lp.n_slots as usize];
    let mut flush = |run: &mut Vec<usize>, lp: &LoweredPlan| {
        // Trim trailing defines: the region ends at its last check.
        while matches!(run.last().map(|&i| &lp.steps[i]), Some(LStep::Define { .. })) {
            run.pop();
        }
        let checks: Vec<usize> = run
            .iter()
            .copied()
            .filter(|&i| matches!(lp.steps[i], LStep::Check { .. }))
            .collect();
        if checks.len() >= 2 {
            let defines: Vec<usize> = run
                .iter()
                .copied()
                .filter(|&i| matches!(lp.steps[i], LStep::Define { .. }))
                .collect();
            regions.push(build_region(lp, checks, defines));
        }
        run.clear();
    };
    for (i, step) in lp.steps.iter().enumerate() {
        let joins = in_loop
            && match step {
                LStep::Check { body: LBody::Expr(e), .. } => infallible_in(e, &env),
                LStep::Define { body: LBody::Expr(e), .. } => {
                    // One bitmask tracks define execution in the engines.
                    run.iter()
                        .filter(|&&j| matches!(lp.steps[j], LStep::Define { .. }))
                        .count()
                        < 64
                        && infallible_in(e, &env)
                }
                _ => false,
            };
        env_step(step, &mut env);
        if joins {
            run.push(i);
            continue;
        }
        flush(&mut run, lp);
        if matches!(step, LStep::Bind { .. }) {
            in_loop = true;
        }
    }
    flush(&mut run, lp);
    regions
}

/// Assemble a [`Region`] from its check and define step indices: compute
/// each check's transitive define closure by walking read slots backwards
/// through the region's define bodies.
fn build_region(lp: &LoweredPlan, checks: Vec<usize>, defines: Vec<usize>) -> Region {
    let start = checks
        .first()
        .copied()
        .unwrap_or(usize::MAX)
        .min(defines.first().copied().unwrap_or(usize::MAX));
    let end = checks.last().copied().unwrap_or(0) + 1;
    // Slot written by each region define, and its body's read slots.
    let def_slot: Vec<u32> = defines
        .iter()
        .map(|&i| match &lp.steps[i] {
            LStep::Define { slot, .. } => *slot,
            other => unreachable!("region define list holds {other:?}"),
        })
        .collect();
    let body_of = |i: usize| match &lp.steps[i] {
        LStep::Define { body: LBody::Expr(e), .. }
        | LStep::Check { body: LBody::Expr(e), .. } => e,
        other => unreachable!("region step has no expression body: {other:?}"),
    };
    let deps: Vec<Vec<usize>> = checks
        .iter()
        .map(|&c| {
            let mut want: Vec<u32> = Vec::new();
            expr_slots(body_of(c), &mut want);
            let mut closure = vec![false; defines.len()];
            while let Some(slot) = want.pop() {
                if let Some(d) = def_slot.iter().position(|&s| s == slot) {
                    if !closure[d] {
                        closure[d] = true;
                        expr_slots(body_of(defines[d]), &mut want);
                    }
                }
            }
            (0..defines.len()).filter(|&d| closure[d]).collect()
        })
        .collect();
    Region { start, end, checks, defines, deps }
}

/// The reorder-safe check groups — each region's checks as step-index
/// groups (each `Vec` holds ≥ 2 ascending indices into `lp.steps`). The
/// check-only view of [`check_regions`], used by telemetry and tests.
pub fn check_groups(lp: &LoweredPlan) -> Vec<Vec<usize>> {
    check_regions(lp).into_iter().map(|r| r.checks).collect()
}

/// Loop level of a group: the number of `Bind` steps before its first check,
/// minus one (level 0 = directly under the outermost loop — the same scale
/// as the constraint DAG levels reported in telemetry).
pub fn group_level(lp: &LoweredPlan, group: &[usize]) -> usize {
    let first = group.first().copied().unwrap_or(0);
    lp.steps[..first]
        .iter()
        .filter(|s| matches!(s, LStep::Bind { .. }))
        .count()
        .saturating_sub(1)
}

/// Constraint index → rank of its check in the flattened plan order (the
/// position among all `Check` steps). Reported as `schedule_rank` in
/// telemetry so a reordered plan is observable.
pub fn check_ranks(lp: &LoweredPlan) -> Vec<usize> {
    let n = lp.plan.space().constraints().len();
    let mut ranks = vec![0usize; n];
    let mut rank = 0usize;
    for step in &lp.steps {
        if let LStep::Check { constraint, .. } = step {
            if let Some(r) = ranks.get_mut(*constraint) {
                *r = rank;
            }
            rank += 1;
        }
    }
    ranks
}

/// Linearize a region so its checks run in `order` (a permutation of
/// `region.checks`, given as the step indices to place first, second, …):
/// each check is preceded by the not-yet-emitted defines of its closure,
/// and the defines no check needed come last — exactly the execution
/// discipline [`check_regions`] proves safe. Used by [`static_schedule`]
/// and by the permutation property tests.
///
/// # Panics
/// If `order` is not a permutation of `region.checks`.
pub fn apply_order(lp: &mut LoweredPlan, region: &Region, order: &[usize]) {
    assert_eq!(region.checks.len(), order.len(), "order must permute the checks");
    let mut check = order.to_vec();
    check.sort_unstable();
    assert_eq!(check, region.checks, "order must permute the checks");
    let mut emitted = vec![false; region.defines.len()];
    let mut steps: Vec<LStep> = Vec::with_capacity(region.end - region.start);
    for &c in order {
        let k = region.checks.iter().position(|&i| i == c).expect("member");
        for &d in &region.deps[k] {
            if !emitted[d] {
                emitted[d] = true;
                steps.push(lp.steps[region.defines[d]].clone());
            }
        }
        steps.push(lp.steps[c].clone());
    }
    for (d, &di) in region.defines.iter().enumerate() {
        if !emitted[d] {
            steps.push(lp.steps[di].clone());
        }
    }
    debug_assert_eq!(steps.len(), region.end - region.start);
    lp.steps[region.start..region.end].clone_from_slice(&steps);
}

/// A check's scheduling cost within its region: its own op count plus the
/// op counts of every define in its closure — the price of running its
/// unit first on a fresh point.
fn unit_cost(lp: &LoweredPlan, region: &Region, k: usize, check_cost: u32) -> u32 {
    region.deps[k]
        .iter()
        .map(|&d| match &lp.steps[region.defines[d]] {
            LStep::Define { body: LBody::Expr(e), .. } => e.op_count(),
            _ => 0,
        })
        .sum::<u32>()
        + check_cost
}

/// Reorder every reorder-safe region of `lp` by ascending
/// expected-cost-to-kill — cheapest-deadliest unit first, where a unit's
/// cost includes its define closure — and return the cost model used. Ties
/// keep the declared order, so the transformation is deterministic.
///
/// Because the order is rewritten in the lowered plan itself, every
/// downstream consumer (the threaded-code engine, the register VM, and the
/// C/Rust source generators) emits the scheduled order with no further
/// cooperation: a kill in the emitted order skips the remaining units'
/// defines via the loop `continue`, with no dispatch at all.
pub fn static_schedule(lp: &mut LoweredPlan) -> CostModel {
    let model = CostModel::of(lp);
    for region in check_regions(lp) {
        let mut order: Vec<(f64, usize)> = region
            .checks
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let key = match &lp.steps[i] {
                    LStep::Check { constraint, .. } => model.scores[*constraint]
                        .map(|s| {
                            let cost = unit_cost(lp, &region, k, s.cost);
                            CheckScore { cost, ..s }.expected_cost_to_kill()
                        })
                        .unwrap_or(f64::INFINITY),
                    _ => f64::INFINITY,
                };
                (key, i)
            })
            .collect();
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal).then(a.1.cmp(&b.1))
        });
        let order: Vec<usize> = order.into_iter().map(|(_, i)| i).collect();
        apply_order(lp, &region, &order);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;
    use crate::expr::var;
    use crate::plan::{Plan, PlanOptions};
    use crate::space::Space;

    fn lower(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    /// Two same-level constraints: `never` (kill prior ~0) is declared
    /// before `always` (kill prior 1); the static schedule must swap them.
    fn swap_space() -> std::sync::Arc<Space> {
        Space::builder("sched")
            .range("a", 1, 10)
            .range("b", 1, 10)
            .derived("ab", var("a") * var("b"))
            .constraint("never", ConstraintClass::Soft, var("ab").gt(1000))
            .constraint("always", ConstraintClass::Hard, var("ab").ge(0))
            .build()
            .unwrap()
    }

    fn check_names(lp: &LoweredPlan) -> Vec<String> {
        let space = lp.plan.space();
        lp.steps
            .iter()
            .filter_map(|s| match s {
                LStep::Check { constraint, .. } => {
                    Some(space.constraints()[*constraint].name.to_string())
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn static_schedule_puts_deadly_checks_first() {
        let mut lp = lower(&swap_space());
        assert_eq!(check_names(&lp), ["never", "always"]);
        let model = static_schedule(&mut lp);
        assert_eq!(check_names(&lp), ["always", "never"]);
        let never = model.scores[0].unwrap();
        let always = model.scores[1].unwrap();
        assert!(never.kill_prior < 0.05, "ab <= 100 can never exceed 1000");
        assert!((always.kill_prior - 1.0).abs() < 1e-9, "ab >= 0 always rejects");
        assert!(always.expected_cost_to_kill() < never.expected_cost_to_kill());
    }

    #[test]
    fn groups_require_adjacency_and_infallibility() {
        // `mid` (fallible: its divisor `b - 5` straddles 0) splits the run
        // of five same-level checks into two flanking pairs.
        let space = Space::builder("split")
            .range("a", 1, 10)
            .range("b", 0, 10)
            .constraint("l1", ConstraintClass::Soft, var("a").gt(var("b")))
            .constraint("l2", ConstraintClass::Soft, (var("a") + var("b")).gt(3))
            .constraint("mid", ConstraintClass::Soft, (var("a") / (var("b") - 5)).gt(3))
            .constraint("r1", ConstraintClass::Soft, var("b").gt(5))
            .constraint("r2", ConstraintClass::Soft, (var("b") * var("a")).gt(8))
            .build()
            .unwrap();
        let lp = lower(&space);
        let mid_step = lp
            .steps
            .iter()
            .position(|s| matches!(s, LStep::Check { constraint: 2, .. }))
            .unwrap();
        let groups = check_groups(&lp);
        assert_eq!(groups.len(), 2, "expected two flanking pairs, got {groups:?}");
        for group in &groups {
            assert_eq!(group.len(), 2);
            for w in group.windows(2) {
                assert_eq!(w[1], w[0] + 1, "group steps must be adjacent");
            }
            assert!(!group.contains(&mid_step), "fallible check joined a group");
        }
    }

    #[test]
    fn interval_proven_divisors_are_reorder_safe() {
        // Same shape, but the divisor's interval ([1, 9] × [1, 9] → ≥ 1)
        // provably excludes 0, so all three checks form one group even
        // though the divisor is not a constant.
        let space = Space::builder("divsafe")
            .range("a", 1, 10)
            .range("b", 1, 10)
            .constraint("left", ConstraintClass::Soft, var("a").gt(var("b")))
            .constraint("mid", ConstraintClass::Soft, (var("a") % (var("b") * var("a"))).ne(0))
            .constraint("right", ConstraintClass::Soft, (var("b") + var("a")).gt(5))
            .build()
            .unwrap();
        let lp = lower(&space);
        let groups = check_groups(&lp);
        assert_eq!(groups.len(), 1, "expected one group, got {groups:?}");
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn preamble_checks_never_group() {
        let space = Space::builder("pre")
            .constant("k", 3)
            .range("x", 0, 10)
            .constraint("c1", ConstraintClass::Generic, var("k").gt(10))
            .constraint("c2", ConstraintClass::Generic, var("k").gt(20))
            .build()
            .unwrap();
        let lp = lower(&space);
        // Both checks fold to constants and precede the loop: no group may
        // contain a step before the first bind.
        let first_bind = lp
            .steps
            .iter()
            .position(|s| matches!(s, LStep::Bind { .. }))
            .unwrap();
        for group in check_groups(&lp) {
            assert!(group.iter().all(|&i| i > first_bind));
        }
    }

    #[test]
    fn kill_priors_track_geometry() {
        // a in [1,10]: P(a > 8) = 2/10 discretely; the continuous
        // relaxation lands near it (a prior needs ranking power, not
        // calibration, so we only bracket it).
        let space = Space::builder("geom")
            .range("a", 1, 11)
            .range("b", 1, 11)
            .constraint("high", ConstraintClass::Soft, var("a").gt(8))
            .constraint("any", ConstraintClass::Soft, var("b").ge(1))
            .build()
            .unwrap();
        let model = CostModel::of(&lower(&space));
        let high = model.scores[0].unwrap();
        assert!(
            high.kill_prior > 0.1 && high.kill_prior < 0.45,
            "got {}",
            high.kill_prior
        );
        let any = model.scores[1].unwrap();
        assert!((any.kill_prior - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_helpers_are_sane() {
        let iv = |lo, hi| Interval { lo, hi };
        assert_eq!(p_less(iv(0, 4), iv(10, 20), 0), 1.0);
        assert_eq!(p_less(iv(10, 20), iv(0, 4), 0), 0.0);
        // Symmetric overlap: P(x < y) + P(y < x) + P(x == y) = 1.
        let (a, b) = (iv(0, 9), iv(0, 9));
        let total = p_less(a, b, 0) + p_less(b, a, 0) + p_eq(a, b);
        assert!((total - 1.0).abs() < 0.11, "got {total}");
        // Unknown-width operands stay uninformative.
        assert_eq!(p_less(Interval::TOP, Interval::TOP, 0), 0.5);
        assert_eq!(p_eq(Interval::TOP, iv(0, 1)), 0.5);
        assert_eq!(p_eq(iv(0, 4), iv(10, 12)), 0.0);
    }

    #[test]
    fn apply_order_permutes_and_ranks_follow() {
        let mut lp = lower(&swap_space());
        let regions = check_regions(&lp);
        assert_eq!(regions.len(), 1);
        let region = regions[0].clone();
        let reversed: Vec<usize> = region.checks.iter().rev().copied().collect();
        let before = check_ranks(&lp);
        apply_order(&mut lp, &region, &reversed);
        let after = check_ranks(&lp);
        assert_ne!(before, after);
        assert_eq!(check_names(&lp), ["always", "never"]);
    }

    #[test]
    fn regions_span_defines_and_closures_are_transitive() {
        // d1 = a * b, d2 = d1 + a; `late` reads d2 so its closure must pull
        // in both defines transitively; `early` reads only bound slots.
        let space = Space::builder("region")
            .range("a", 1, 10)
            .range("b", 1, 10)
            .derived("d1", var("a") * var("b"))
            .derived("d2", var("d1") + var("a"))
            .constraint("early", ConstraintClass::Soft, var("a").gt(var("b")))
            .constraint("late", ConstraintClass::Soft, var("d2").gt(50))
            .build()
            .unwrap();
        let mut lp = lower(&space);
        let regions = check_regions(&lp);
        assert_eq!(regions.len(), 1, "got {regions:?}");
        let r = regions[0].clone();
        assert_eq!(r.checks.len(), 2);
        assert_eq!(r.defines.len(), 2);
        let early = 0; // declared first
        let late = 1;
        assert!(r.deps[early].is_empty(), "early reads no defines");
        assert_eq!(r.deps[late], [0, 1], "late's closure is transitive");
        // Putting `late` first must hoist both defines ahead of it while
        // keeping the region the same length.
        let order = vec![r.checks[late], r.checks[early]];
        apply_order(&mut lp, &r, &order);
        let names = check_names(&lp);
        assert_eq!(names, ["late", "early"]);
        // Re-deriving regions on the transformed plan still works and the
        // new declared order is the applied one.
        let again = check_regions(&lp);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].checks.len(), 2);
    }
}
