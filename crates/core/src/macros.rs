//! The `space!` declarative macro — the closest Rust analog of the paper's
//! Python-embedded surface syntax.
//!
//! Each declared name is introduced as a [`crate::expr::VarRef`] binding in
//! the remainder of the block, so later definitions reference earlier ones
//! directly, mirroring the paper's global lexical scope (Fig. 4):
//!
//! ```
//! use beast_core::space;
//! use beast_core::expr::lit;
//!
//! let s = space! {
//!     "mini";
//!     const max_threads = 64;
//!     const warp = 32;
//!     iter dim_m = range(1, 9);
//!     iter dim_n = range(1, 9);
//!     iter blk_m = range(dim_m, 33, dim_m);
//!     derived threads = dim_m * dim_n;
//!     constraint(hard) over_max = threads.gt(max_threads);
//!     constraint(soft) partial_warps = (threads % warp).ne(0);
//! }
//! .unwrap();
//! assert_eq!(s.iters().len(), 3);
//! ```

/// Map a class keyword to a [`crate::constraint::ConstraintClass`].
#[macro_export]
#[doc(hidden)]
macro_rules! __space_class {
    (hard) => {
        $crate::constraint::ConstraintClass::Hard
    };
    (soft) => {
        $crate::constraint::ConstraintClass::Soft
    };
    (correctness) => {
        $crate::constraint::ConstraintClass::Correctness
    };
    (generic) => {
        $crate::constraint::ConstraintClass::Generic
    };
}

/// Declarative search-space definition; see the module docs for an example.
///
/// Supported declarations, each terminated by `;`:
///
/// * `const NAME = value;`
/// * `iter NAME = range(start, stop);` / `range(start, stop, step);`
/// * `iter NAME = list(v1, v2, ...);`
/// * `derived NAME = expression;`
/// * `constraint(hard|soft|correctness|generic) NAME = expression;`
///
/// Expressions are ordinary Rust expressions producing
/// [`crate::expr::E`]; previously declared names are in scope as
/// [`crate::expr::VarRef`] values with overloaded operators.
#[macro_export]
macro_rules! space {
    ($name:literal ; $($body:tt)*) => {{
        let builder = $crate::space::Space::builder($name);
        $crate::__space_body!(builder; $($body)*)
    }};
}

#[macro_export]
#[doc(hidden)]
macro_rules! __space_body {
    ($b:ident;) => { $b.build() };

    ($b:ident; const $n:ident = $v:expr; $($rest:tt)*) => {{
        let $b = $b.constant(stringify!($n), $v);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    ($b:ident; iter $n:ident = range($start:expr, $stop:expr, $step:expr); $($rest:tt)*) => {{
        let $b = $b.range_step(stringify!($n), $start, $stop, $step);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    ($b:ident; iter $n:ident = range($start:expr, $stop:expr); $($rest:tt)*) => {{
        let $b = $b.range(stringify!($n), $start, $stop);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    ($b:ident; iter $n:ident = list($($v:expr),+ $(,)?); $($rest:tt)*) => {{
        let $b = $b.list(stringify!($n), [$($v),+]);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    // Deferred iterator: `iter name(dep1, dep2) = |env| { ... };` — the
    // analog of the paper's `@iterator` function with a parameter list.
    ($b:ident; iter $n:ident($($dep:ident),* $(,)?) = $f:expr; $($rest:tt)*) => {{
        let $b = $b.deferred_iter(stringify!($n), &[$(stringify!($dep)),*], $f);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    // Closure (generator) iterator: `closure name(deps) = |env| iterator;`.
    ($b:ident; closure $n:ident($($dep:ident),* $(,)?) = $f:expr; $($rest:tt)*) => {{
        let $b = $b.closure_iter(stringify!($n), &[$(stringify!($dep)),*], $f);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    // Deferred derived variable: `derived name(deps) = |env| { ... };`.
    ($b:ident; derived $n:ident($($dep:ident),* $(,)?) = $f:expr; $($rest:tt)*) => {{
        let $b = $b.derived_fn(stringify!($n), &[$(stringify!($dep)),*], $f);
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    // Deferred constraint: `constraint(class) name(deps) = |env| { ... };`.
    ($b:ident; constraint($class:ident) $n:ident($($dep:ident),* $(,)?) = $f:expr; $($rest:tt)*) => {{
        let $b = $b.constraint_fn(
            stringify!($n),
            $crate::__space_class!($class),
            &[$(stringify!($dep)),*],
            $f,
        );
        $crate::__space_body!($b; $($rest)*)
    }};

    ($b:ident; derived $n:ident = $e:expr; $($rest:tt)*) => {{
        let $b = $b.derived(stringify!($n), ::core::convert::Into::into($e));
        #[allow(unused_variables)]
        let $n = $crate::expr::VarRef(stringify!($n));
        $crate::__space_body!($b; $($rest)*)
    }};

    ($b:ident; constraint($class:ident) $n:ident = $e:expr; $($rest:tt)*) => {{
        let $b = $b.constraint(
            stringify!($n),
            $crate::__space_class!($class),
            ::core::convert::Into::into($e),
        );
        $crate::__space_body!($b; $($rest)*)
    }};
}

#[cfg(test)]
mod tests {
    use crate::constraint::ConstraintClass;

    #[test]
    fn macro_builds_full_space() {
        let s = space! {
            "macro_test";
            const cap = 100;
            iter a = range(1, 11);
            iter b = range(a, 101, a);
            iter mode = list(0, 1);
            derived ab = a * b + mode;
            constraint(hard) too_big = ab.gt(cap);
            constraint(correctness) not_divisible = (b % a).ne(0);
        }
        .unwrap();
        assert_eq!(s.name(), "macro_test");
        assert_eq!(s.consts().len(), 1);
        assert_eq!(s.iters().len(), 3);
        assert_eq!(s.deriveds().len(), 1);
        assert_eq!(s.constraints().len(), 2);
        assert_eq!(s.constraints()[0].class, ConstraintClass::Hard);
        assert_eq!(s.constraints()[1].class, ConstraintClass::Correctness);
    }

    #[test]
    fn macro_vars_are_reusable() {
        // `a` used in three later declarations — VarRef is Copy.
        let s = space! {
            "reuse";
            iter a = range(1, 5);
            derived d1 = a * 2;
            derived d2 = a * 3;
            constraint(generic) c = a.gt(3);
        }
        .unwrap();
        assert_eq!(s.deriveds().len(), 2);
    }

    #[test]
    fn macro_deferred_and_closure_forms() {
        use crate::iterator::Realized;
        use crate::value::Value;
        let s = space! {
            "deferred_macro";
            const max = 20;
            iter n = range(1, 5);
            // Deferred iterator with a declared dependency list.
            iter countdown(n) = |env| {
                Ok(Realized::Range { start: env.require_int("n")?, stop: 0, step: -1 })
            };
            // Stateful closure iterator (Fig. 3 style).
            closure fib(max) = |env| {
                let max = env.require_int("max").unwrap_or(0);
                let (mut k, mut v) = (1i64, 1i64);
                std::iter::from_fn(move || {
                    if v > max {
                        return None;
                    }
                    let out = v;
                    let next = v + k;
                    k = v;
                    v = next;
                    Some(Value::Int(out))
                })
            };
            // Deferred derived + deferred constraint.
            derived product(countdown, fib) = |env| {
                Ok(Value::Int(env.require_int("countdown")? * env.require_int("fib")?))
            };
            constraint(soft) big(product) = |env| Ok(env.require_int("product")? > 12);
        }
        .unwrap();
        assert_eq!(s.iters().len(), 3);
        assert_eq!(s.deriveds().len(), 1);
        assert_eq!(s.constraints().len(), 1);
        assert!(s.has_opaque_nodes());
        // DAG: countdown depends on n, product on both iterators.
        let cd = s.iters().iter().position(|d| &*d.name == "countdown").unwrap();
        assert_eq!(s.dag().level(s.iter_node(cd)), 1);
    }

    #[test]
    fn macro_dependency_dag_matches_builder() {
        let s = space! {
            "dag";
            iter outer = range(0, 100);
            iter inner = range(0, outer);
        }
        .unwrap();
        assert_eq!(s.dag().level(s.iter_node(0)), 0);
        assert_eq!(s.dag().level(s.iter_node(1)), 1);
    }
}
