//! Parameter iterators: the three classes of the BEAST language (Section V)
//! plus the iterator algebra of Section VIII.
//!
//! * **Expression iterators** — `range(start, stop, step)` where the bounds
//!   are [`Expr`]s over previously bound iterators, explicit value lists, and
//!   singletons. Dependencies are extracted automatically from the bound
//!   expressions.
//! * **Deferred iterators** — opaque functions of other iterators that return
//!   a realized domain; they may use arbitrary control flow (`if/elif/else`)
//!   and can be defined in any order. Dependencies are declared, mirroring
//!   how the paper reads them off the Python function's parameter list.
//! * **Closure iterators** — generator-style functions that yield a stream of
//!   values and may hold internal state (the paper's prime and Fibonacci
//!   examples, Figs. 3 and 6).
//!
//! The set-algebra combinators (union, intersection, difference, concat)
//! correspond to the paper's "iterator algebra".

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::expr::{Bindings, Expr, E};
use crate::value::Value;

/// A realized (concrete) iteration domain, produced once all dependencies of
/// an iterator are bound.
#[derive(Debug, Clone, PartialEq)]
pub enum Realized {
    /// Half-open integer range `start..stop` advancing by `step` (which may
    /// be negative, like Python's `range`). `step == 0` is a domain error.
    Range {
        /// Inclusive start.
        start: i64,
        /// Exclusive stop.
        stop: i64,
        /// Stride; negative counts down.
        step: i64,
    },
    /// An explicit list of values.
    Values(Vec<Value>),
}

impl Realized {
    /// Realized empty domain.
    pub fn empty() -> Realized {
        Realized::Values(Vec::new())
    }

    /// Number of points in the domain.
    pub fn len(&self) -> usize {
        match self {
            Realized::Range { start, stop, step } => {
                if *step == 0 {
                    return 0;
                }
                let (lo, hi, s) = if *step > 0 {
                    (*start, *stop, *step)
                } else {
                    (*stop, *start, -*step)
                };
                if hi <= lo {
                    0
                } else {
                    ((hi - lo) as u64).div_ceil(s as u64) as usize
                }
            }
            Realized::Values(v) => v.len(),
        }
    }

    /// True if the domain has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th value of the domain (`None` past the end). O(1) for
    /// ranges.
    pub fn nth_value(&self, idx: usize) -> Option<Value> {
        match self {
            Realized::Range { start, step, .. } => {
                if idx < self.len() {
                    Some(Value::Int(
                        start.wrapping_add((idx as i64).wrapping_mul(*step)),
                    ))
                } else {
                    None
                }
            }
            Realized::Values(v) => v.get(idx).cloned(),
        }
    }

    /// Membership test for an integer value. O(1) for ranges.
    pub fn contains_int(&self, v: i64) -> bool {
        match self {
            Realized::Range { start, stop, step } => {
                if *step == 0 {
                    return false;
                }
                let in_range = if *step > 0 {
                    *start <= v && v < *stop
                } else {
                    *stop < v && v <= *start
                };
                in_range && (v - start) % step == 0
            }
            Realized::Values(values) => {
                values.iter().any(|x| matches!(x, Value::Int(i) if *i == v))
            }
        }
    }

    /// Position of an integer value within the domain, if present.
    pub fn position_of(&self, v: i64) -> Option<usize> {
        match self {
            Realized::Range { start, step, .. } => {
                if self.contains_int(v) {
                    Some(((v - start) / step) as usize)
                } else {
                    None
                }
            }
            Realized::Values(values) => values
                .iter()
                .position(|x| matches!(x, Value::Int(i) if *i == v)),
        }
    }

    /// Iterate the domain's values in order.
    pub fn iter(&self) -> RealizedIter<'_> {
        match self {
            Realized::Range { start, stop, step } => RealizedIter::Range {
                next: *start,
                stop: *stop,
                step: *step,
                done: *step == 0,
            },
            Realized::Values(v) => RealizedIter::Values(v.iter()),
        }
    }

    /// Materialize into a vector (models Python 2's `range()` list).
    pub fn to_values(&self) -> Vec<Value> {
        self.iter().collect()
    }

    /// Set union (sorted, deduplicated); values must be integers.
    pub fn union(&self, other: &Realized) -> Result<Realized, EvalError> {
        let mut set: BTreeSet<i64> = BTreeSet::new();
        for v in self.iter().chain(other.iter()) {
            set.insert(v.as_int()?);
        }
        Ok(Realized::Values(set.into_iter().map(Value::Int).collect()))
    }

    /// Set intersection (sorted); values must be integers.
    pub fn intersect(&self, other: &Realized) -> Result<Realized, EvalError> {
        let a: BTreeSet<i64> = self.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?;
        let b: BTreeSet<i64> = other.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?;
        Ok(Realized::Values(
            a.intersection(&b).map(|&i| Value::Int(i)).collect(),
        ))
    }

    /// Set difference `self \ other` (sorted); values must be integers.
    pub fn difference(&self, other: &Realized) -> Result<Realized, EvalError> {
        let a: BTreeSet<i64> = self.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?;
        let b: BTreeSet<i64> = other.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?;
        Ok(Realized::Values(
            a.difference(&b).map(|&i| Value::Int(i)).collect(),
        ))
    }

    /// Concatenation preserving order and duplicates.
    pub fn concat(&self, other: &Realized) -> Realized {
        let mut v = self.to_values();
        v.extend(other.iter());
        Realized::Values(v)
    }
}

/// Iterator over a [`Realized`] domain.
pub enum RealizedIter<'a> {
    /// Range cursor.
    Range {
        /// Next value to yield.
        next: i64,
        /// Exclusive stop.
        stop: i64,
        /// Stride.
        step: i64,
        /// Exhausted flag.
        done: bool,
    },
    /// Slice cursor.
    Values(std::slice::Iter<'a, Value>),
}

impl Iterator for RealizedIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        match self {
            RealizedIter::Range { next, stop, step, done } => {
                if *done {
                    return None;
                }
                let in_range = if *step > 0 { *next < *stop } else { *next > *stop };
                if !in_range {
                    *done = true;
                    return None;
                }
                let v = *next;
                match next.checked_add(*step) {
                    Some(n) => *next = n,
                    None => *done = true,
                }
                Some(Value::Int(v))
            }
            RealizedIter::Values(it) => it.next().cloned(),
        }
    }
}

/// Signature of a deferred iterator body: given the bound variables, produce
/// the realized domain.
pub type DeferredFn = dyn Fn(&dyn Bindings) -> Result<Realized, EvalError> + Send + Sync;

/// Signature of a closure (generator) iterator body: given the bound
/// variables, produce a fresh stream of values. The stream may hold internal
/// state, like the paper's prime generator.
pub type ClosureFn =
    dyn Fn(&dyn Bindings) -> Box<dyn Iterator<Item = Value> + Send> + Send + Sync;

/// The definition of one search-space dimension.
#[derive(Clone)]
pub enum IterKind {
    /// `range(start, stop, step)` with expression bounds.
    Range {
        /// Inclusive start expression.
        start: Expr,
        /// Exclusive stop expression.
        stop: Expr,
        /// Stride expression.
        step: Expr,
    },
    /// An explicit list of constant values.
    List(Vec<Value>),
    /// A deferred iterator (opaque function with declared dependencies).
    Deferred {
        /// Declared dependencies (the analog of the Python parameter list).
        deps: Vec<Arc<str>>,
        /// The body.
        f: Arc<DeferredFn>,
    },
    /// A generator-based closure iterator with internal state.
    Closure {
        /// Declared dependencies.
        deps: Vec<Arc<str>>,
        /// The body; called once per realization, yielding the stream.
        f: Arc<ClosureFn>,
    },
    /// Set union of two iterators.
    Union(Box<IterKind>, Box<IterKind>),
    /// Set intersection of two iterators.
    Intersect(Box<IterKind>, Box<IterKind>),
    /// Set difference of two iterators.
    Difference(Box<IterKind>, Box<IterKind>),
    /// Order-preserving concatenation of two iterators.
    Concat(Box<IterKind>, Box<IterKind>),
}

impl fmt::Debug for IterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IterKind::Range { start, stop, step } => {
                write!(f, "range({start}, {stop}, {step})")
            }
            IterKind::List(v) => write!(f, "list({} values)", v.len()),
            IterKind::Deferred { deps, .. } => write!(f, "deferred(deps={deps:?})"),
            IterKind::Closure { deps, .. } => write!(f, "closure(deps={deps:?})"),
            IterKind::Union(a, b) => write!(f, "union({a:?}, {b:?})"),
            IterKind::Intersect(a, b) => write!(f, "intersect({a:?}, {b:?})"),
            IterKind::Difference(a, b) => write!(f, "difference({a:?}, {b:?})"),
            IterKind::Concat(a, b) => write!(f, "concat({a:?}, {b:?})"),
        }
    }
}

impl IterKind {
    /// Collect dependency names: automatic for expression forms, declared for
    /// deferred/closure forms.
    pub fn collect_deps(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            IterKind::Range { start, stop, step } => {
                start.collect_deps(out);
                stop.collect_deps(out);
                step.collect_deps(out);
            }
            IterKind::List(_) => {}
            IterKind::Deferred { deps, .. } | IterKind::Closure { deps, .. } => {
                out.extend(deps.iter().cloned());
            }
            IterKind::Union(a, b)
            | IterKind::Intersect(a, b)
            | IterKind::Difference(a, b)
            | IterKind::Concat(a, b) => {
                a.collect_deps(out);
                b.collect_deps(out);
            }
        }
    }

    /// Realize the domain given the currently bound variables.
    ///
    /// Closure iterators are drained into a value list here;
    /// engines realize each closure realization eagerly.
    pub fn realize(&self, env: &dyn Bindings) -> Result<Realized, EvalError> {
        match self {
            IterKind::Range { start, stop, step } => Ok(Realized::Range {
                start: start.eval(env)?.as_int()?,
                stop: stop.eval(env)?.as_int()?,
                step: step.eval(env)?.as_int()?,
            }),
            IterKind::List(v) => Ok(Realized::Values(v.clone())),
            IterKind::Deferred { f, .. } => f(env),
            IterKind::Closure { f, .. } => Ok(Realized::Values(f(env).collect())),
            IterKind::Union(a, b) => a.realize(env)?.union(&b.realize(env)?),
            IterKind::Intersect(a, b) => a.realize(env)?.intersect(&b.realize(env)?),
            IterKind::Difference(a, b) => a.realize(env)?.difference(&b.realize(env)?),
            IterKind::Concat(a, b) => Ok(a.realize(env)?.concat(&b.realize(env)?)),
        }
    }

    /// True if the kind contains an opaque Rust closure anywhere — such
    /// spaces cannot be translated by the source-code generators.
    pub fn is_opaque(&self) -> bool {
        match self {
            IterKind::Range { .. } | IterKind::List(_) => false,
            IterKind::Deferred { .. } | IterKind::Closure { .. } => true,
            IterKind::Union(a, b)
            | IterKind::Intersect(a, b)
            | IterKind::Difference(a, b)
            | IterKind::Concat(a, b) => a.is_opaque() || b.is_opaque(),
        }
    }
}

/// Convenience constructors mirroring the paper's surface syntax.
///
/// `range(a, b)` and `range_step(a, b, s)` build expression iterators; the
/// one-argument Python form `range(n)` is [`build::range0`].
pub mod build {
    use super::*;

    /// `range(start, stop)` with unit step.
    pub fn range(start: impl Into<E>, stop: impl Into<E>) -> IterKind {
        range_step(start, stop, 1)
    }

    /// `range(stop)` starting at zero, Python's one-argument form.
    pub fn range0(stop: impl Into<E>) -> IterKind {
        range_step(0, stop, 1)
    }

    /// `range(start, stop, step)`.
    pub fn range_step(
        start: impl Into<E>,
        stop: impl Into<E>,
        step: impl Into<E>,
    ) -> IterKind {
        IterKind::Range {
            start: start.into().into_expr(),
            stop: stop.into().into_expr(),
            step: step.into().into_expr(),
        }
    }

    /// An explicit list of values (the paper's `Iterator([1, 1, 2, 3, ...])`).
    pub fn list<V: Into<Value>>(values: impl IntoIterator<Item = V>) -> IterKind {
        IterKind::List(values.into_iter().map(Into::into).collect())
    }

    /// A deferred iterator with declared dependencies.
    pub fn deferred<F>(deps: &[&str], f: F) -> IterKind
    where
        F: Fn(&dyn Bindings) -> Result<Realized, EvalError> + Send + Sync + 'static,
    {
        IterKind::Deferred {
            deps: deps.iter().map(|s| Arc::from(*s)).collect(),
            f: Arc::new(f),
        }
    }

    /// A closure (generator) iterator with declared dependencies.
    pub fn closure<F, I>(deps: &[&str], f: F) -> IterKind
    where
        F: Fn(&dyn Bindings) -> I + Send + Sync + 'static,
        I: Iterator<Item = Value> + Send + 'static,
    {
        IterKind::Closure {
            deps: deps.iter().map(|s| Arc::from(*s)).collect(),
            f: Arc::new(move |env| Box::new(f(env))),
        }
    }

    /// Set union of two iterators.
    pub fn union(a: IterKind, b: IterKind) -> IterKind {
        IterKind::Union(Box::new(a), Box::new(b))
    }

    /// Set intersection of two iterators.
    pub fn intersect(a: IterKind, b: IterKind) -> IterKind {
        IterKind::Intersect(Box::new(a), Box::new(b))
    }

    /// Set difference of two iterators.
    pub fn difference(a: IterKind, b: IterKind) -> IterKind {
        IterKind::Difference(Box::new(a), Box::new(b))
    }

    /// Concatenation of two iterators.
    pub fn concat(a: IterKind, b: IterKind) -> IterKind {
        IterKind::Concat(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::expr::{var, NoBindings};
    use std::collections::HashMap;

    fn env(pairs: &[(&str, i64)]) -> HashMap<Arc<str>, Value> {
        pairs
            .iter()
            .map(|(k, v)| (Arc::<str>::from(*k), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn realized_range_len_and_iter() {
        let r = Realized::Range { start: 1, stop: 10, step: 3 };
        assert_eq!(r.len(), 3);
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 4, 7]);
    }

    #[test]
    fn realized_negative_step() {
        // The paper's blk_n_a example: range(x, 0, -1).
        let r = Realized::Range { start: 4, stop: 0, step: -1 };
        assert_eq!(r.len(), 4);
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![4, 3, 2, 1]);
    }

    #[test]
    fn realized_empty_cases() {
        assert!(Realized::Range { start: 5, stop: 5, step: 1 }.is_empty());
        assert!(Realized::Range { start: 5, stop: 1, step: 1 }.is_empty());
        assert!(Realized::Range { start: 1, stop: 5, step: -1 }.is_empty());
        assert!(Realized::Range { start: 1, stop: 5, step: 0 }.is_empty());
        assert!(Realized::empty().is_empty());
    }

    #[test]
    fn dependent_range_realization() {
        // blk_m = range(dim_m, 33, dim_m) — Fig. 4 of the paper.
        let it = range_step(var("dim_m"), 33, var("dim_m"));
        let env = env(&[("dim_m", 8)]);
        let r = it.realize(&env).unwrap();
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![8, 16, 24, 32]);
        let deps = {
            let mut s = BTreeSet::new();
            it.collect_deps(&mut s);
            s
        };
        assert_eq!(deps.len(), 1);
        assert!(deps.contains("dim_m"));
    }

    #[test]
    fn deferred_iterator_with_branching() {
        // Fig. 5: direction depends on trans_a.
        let it = deferred(&["trans_a", "blk_m", "blk_k"], |env| {
            let x = if env.require_int("trans_a")? != 0 {
                env.require_int("blk_m")?
            } else {
                env.require_int("blk_k")?
            };
            Ok(Realized::Range { start: x, stop: 0, step: -1 })
        });
        let r = it.realize(&env(&[("trans_a", 0), ("blk_m", 9), ("blk_k", 3)])).unwrap();
        assert_eq!(r.len(), 3);
        assert!(it.is_opaque());
    }

    #[test]
    fn closure_iterator_primes() {
        // Fig. 3: primes up to MAX via a stateful generator.
        let it = closure(&["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let mut old_primes: Vec<i64> = Vec::new();
            let mut n = 1i64;
            std::iter::from_fn(move || loop {
                n += 1;
                if n > max {
                    return None;
                }
                if old_primes.iter().all(|p| n % p != 0) {
                    old_primes.push(n);
                    return Some(Value::Int(n));
                }
            })
        });
        let r = it.realize(&env(&[("max", 20)])).unwrap();
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![2, 3, 5, 7, 11, 13, 17, 19]);
    }

    #[test]
    fn closure_iterator_fibonacci() {
        // Fig. 6: Fibonacci numbers up to and including MAX.
        let it = closure(&["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let (mut k, mut n) = (1i64, 1i64);
            std::iter::from_fn(move || {
                if n > max {
                    return None;
                }
                let out = n;
                let next = n + k;
                k = n;
                n = next;
                Some(Value::Int(out))
            })
        });
        let vals: Vec<i64> = it
            .realize(&env(&[("max", 13)]))
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        // Fig. 6 initializes k = n = 1, so the sequence has a single leading 1.
        assert_eq!(vals, vec![1, 2, 3, 5, 8, 13]);
    }

    #[test]
    fn iterator_algebra() {
        let a = list([1i64, 2, 3, 4]);
        let b = range(3, 7); // 3,4,5,6
        let u = union(a.clone(), b.clone()).realize(&NoBindings).unwrap();
        assert_eq!(u.len(), 6);
        let i = intersect(a.clone(), b.clone()).realize(&NoBindings).unwrap();
        let vals: Vec<i64> = i.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![3, 4]);
        let d = difference(a.clone(), b.clone()).realize(&NoBindings).unwrap();
        let vals: Vec<i64> = d.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2]);
        let c = concat(a, b).realize(&NoBindings).unwrap();
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn range0_matches_python() {
        let r = range0(4).realize(&NoBindings).unwrap();
        let vals: Vec<i64> = r.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nth_value_and_membership() {
        let r = Realized::Range { start: 1, stop: 20, step: 3 }; // 1,4,7,10,13,16,19
        assert_eq!(r.nth_value(0), Some(Value::Int(1)));
        assert_eq!(r.nth_value(3), Some(Value::Int(10)));
        assert_eq!(r.nth_value(7), None);
        assert!(r.contains_int(13));
        assert!(!r.contains_int(14));
        assert!(!r.contains_int(22));
        assert_eq!(r.position_of(16), Some(5));
        assert_eq!(r.position_of(2), None);

        let down = Realized::Range { start: 9, stop: 0, step: -3 }; // 9,6,3
        assert!(down.contains_int(6));
        assert!(!down.contains_int(0));
        assert_eq!(down.position_of(3), Some(2));
        assert_eq!(down.nth_value(2), Some(Value::Int(3)));

        let vals = Realized::Values(vec![Value::Int(5), Value::Int(2)]);
        assert!(vals.contains_int(2));
        assert_eq!(vals.position_of(5), Some(0));
        assert_eq!(vals.nth_value(1), Some(Value::Int(2)));
    }

    #[test]
    fn huge_range_len_does_not_overflow() {
        let r = Realized::Range { start: i64::MIN / 2, stop: i64::MAX / 2, step: 1 };
        assert_eq!(r.len(), i64::MAX as usize);
    }
}
