//! Runtime values flowing through search-space expressions.
//!
//! The BEAST language of the paper is embedded in Python, where iterator and
//! constraint expressions operate on integers, booleans and the occasional
//! string-valued setting (`precision = "double"`). This module provides the
//! equivalent dynamically-typed value for the interpreted evaluation paths;
//! the compiled paths lower everything to `i64` (see [`crate::ir`]).

use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;

/// A dynamically-typed value.
///
/// Integers are the workhorse: every tuning parameter in the paper's spaces
/// is an integer. Booleans appear as constraint results and as 0/1 switches,
/// floats support derived performance estimates, and strings support settings
/// such as `precision` and `arithmetic` (Fig. 10 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A signed 64-bit integer.
    Int(i64),
    /// A boolean (constraint results; also usable as a 0/1 parameter).
    Bool(bool),
    /// A double-precision float (derived performance estimates).
    Float(f64),
    /// An immutable string (settings such as `"double"`, `"real"`).
    Str(Arc<str>),
}

impl Value {
    /// Human-readable name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Numeric coercion used by arithmetic: booleans count as 0/1 just as in
    /// Python, the paper's host language.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(i64::from(*b)),
            other => Err(EvalError::type_error("int", other.type_name())),
        }
    }

    /// Coerce to a float; ints and booleans widen.
    pub fn as_float(&self) -> Result<f64, EvalError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Bool(b) => Ok(f64::from(u8::from(*b))),
            other => Err(EvalError::type_error("float", other.type_name())),
        }
    }

    /// Truthiness, following Python semantics for the supported types.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Bool(b) => *b,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// True if either operand is a float, in which case arithmetic promotes.
    fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }

    /// Checked addition with int/float promotion.
    pub fn add(&self, rhs: &Value) -> Result<Value, EvalError> {
        if self.is_float() || rhs.is_float() {
            return Ok(Value::Float(self.as_float()? + rhs.as_float()?));
        }
        self.as_int()?
            .checked_add(rhs.as_int()?)
            .map(Value::Int)
            .ok_or(EvalError::Overflow)
    }

    /// Checked subtraction with int/float promotion.
    pub fn sub(&self, rhs: &Value) -> Result<Value, EvalError> {
        if self.is_float() || rhs.is_float() {
            return Ok(Value::Float(self.as_float()? - rhs.as_float()?));
        }
        self.as_int()?
            .checked_sub(rhs.as_int()?)
            .map(Value::Int)
            .ok_or(EvalError::Overflow)
    }

    /// Checked multiplication with int/float promotion.
    pub fn mul(&self, rhs: &Value) -> Result<Value, EvalError> {
        if self.is_float() || rhs.is_float() {
            return Ok(Value::Float(self.as_float()? * rhs.as_float()?));
        }
        self.as_int()?
            .checked_mul(rhs.as_int()?)
            .map(Value::Int)
            .ok_or(EvalError::Overflow)
    }

    /// Integer division truncating toward zero (C semantics, matching the
    /// generated-C backend of the paper); floats divide exactly.
    ///
    /// All divisions in the paper's spaces have nonnegative operands, for
    /// which trunc and floor division agree; [`Value::floor_div`] is provided
    /// for explicit Python-style semantics.
    pub fn div(&self, rhs: &Value) -> Result<Value, EvalError> {
        if self.is_float() || rhs.is_float() {
            let d = rhs.as_float()?;
            if d == 0.0 {
                return Err(EvalError::DivisionByZero);
            }
            return Ok(Value::Float(self.as_float()? / d));
        }
        let d = rhs.as_int()?;
        if d == 0 {
            return Err(EvalError::DivisionByZero);
        }
        self.as_int()?
            .checked_div(d)
            .map(Value::Int)
            .ok_or(EvalError::Overflow)
    }

    /// Python-style floor division.
    pub fn floor_div(&self, rhs: &Value) -> Result<Value, EvalError> {
        let d = rhs.as_int()?;
        if d == 0 {
            return Err(EvalError::DivisionByZero);
        }
        let n = self.as_int()?;
        let q = n.checked_div(d).ok_or(EvalError::Overflow)?;
        let r = n % d;
        Ok(Value::Int(if r != 0 && (r < 0) != (d < 0) { q - 1 } else { q }))
    }

    /// Remainder with C semantics (sign of the dividend).
    pub fn rem(&self, rhs: &Value) -> Result<Value, EvalError> {
        let d = rhs.as_int()?;
        if d == 0 {
            return Err(EvalError::DivisionByZero);
        }
        let n = self.as_int()?;
        n.checked_rem(d).map(Value::Int).ok_or(EvalError::Overflow)
    }

    /// Unary negation.
    pub fn neg(&self) -> Result<Value, EvalError> {
        match self {
            Value::Float(f) => Ok(Value::Float(-f)),
            other => other
                .as_int()?
                .checked_neg()
                .map(Value::Int)
                .ok_or(EvalError::Overflow),
        }
    }

    /// Three-way comparison; errors on mixed string/number comparisons.
    pub fn compare(&self, rhs: &Value) -> Result<std::cmp::Ordering, EvalError> {
        match (self, rhs) {
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Str(_), other) | (other, Value::Str(_)) => {
                Err(EvalError::type_error("comparable values", other.type_name()))
            }
            (a, b) if a.is_float() || b.is_float() => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                x.partial_cmp(&y).ok_or(EvalError::NanComparison)
            }
            (a, b) => Ok(a.as_int()?.cmp(&b.as_int()?)),
        }
    }

    /// Equality usable across types: strings compare to strings, numbers to
    /// numbers; a string never equals a number (result `false`, not an error),
    /// matching Python's `==`.
    pub fn value_eq(&self, rhs: &Value) -> bool {
        match (self, rhs) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Str(_), _) | (_, Value::Str(_)) => false,
            (a, b) => match (a.as_float(), b.as_float()) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        let a = Value::Int(7);
        let b = Value::Int(3);
        assert_eq!(a.add(&b).unwrap(), Value::Int(10));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(4));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(21));
        assert_eq!(a.div(&b).unwrap(), Value::Int(2));
        assert_eq!(a.rem(&b).unwrap(), Value::Int(1));
    }

    #[test]
    fn bool_coerces_to_int() {
        assert_eq!(Value::Bool(true).add(&Value::Int(1)).unwrap(), Value::Int(2));
        assert_eq!(Value::Bool(false).as_int().unwrap(), 0);
    }

    #[test]
    fn float_promotion() {
        let v = Value::Int(1).add(&Value::Float(0.5)).unwrap();
        assert_eq!(v, Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(EvalError::DivisionByZero)
        ));
        assert!(matches!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(EvalError::DivisionByZero)
        ));
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(matches!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Err(EvalError::Overflow)
        ));
        assert!(matches!(
            Value::Int(i64::MIN).neg(),
            Err(EvalError::Overflow)
        ));
    }

    #[test]
    fn trunc_vs_floor_division() {
        // Nonnegative operands: agree (the case in all paper spaces).
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).floor_div(&Value::Int(2)).unwrap(), Value::Int(3));
        // Negative dividend: trunc toward zero vs floor.
        assert_eq!(Value::Int(-7).div(&Value::Int(2)).unwrap(), Value::Int(-3));
        assert_eq!(Value::Int(-7).floor_div(&Value::Int(2)).unwrap(), Value::Int(-4));
    }

    #[test]
    fn string_equality_and_errors() {
        let s = Value::from("double");
        assert!(s.value_eq(&Value::from("double")));
        assert!(!s.value_eq(&Value::from("single")));
        assert!(!s.value_eq(&Value::Int(1)));
        assert!(s.as_int().is_err());
        assert!(s.compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)).unwrap(),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Value::from("a").compare(&Value::from("b")).unwrap(),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(3).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::from("x").truthy());
        assert!(!Value::from("").truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::from("d").to_string(), "\"d\"");
    }
}
