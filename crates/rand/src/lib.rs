//! Vendored, std-only stand-in for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! crate can never resolve; this crate provides source-compatible
//! replacements for exactly the surface the workspace calls:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded with
//!   SplitMix64 (not the real `StdRng`'s ChaCha12, but the workspace only
//!   relies on determinism-per-seed, never on a specific stream);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen_range`] over half-open integer and float ranges;
//! * [`Rng::gen`] for the primitive types the workspace samples;
//! * [`Rng::gen_bool`].
//!
//! Sampling quality notes: integer ranges use a widening-multiply bound
//! (Lemire's method without the rejection step — bias is below 2⁻³² for
//! every range the workspace uses); floats use the standard 53-bit mantissa
//! construction yielding values in `[0, 1)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type from its full uniform
    /// distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range. Panics if the range is
    /// empty, matching `rand` 0.8.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 — the canonical
    /// convenience constructor used throughout the workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander (public-domain algorithm by Sebastiano Vigna).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256** under the
    /// hood). Source-compatible with `rand::rngs::StdRng` for the usage in
    /// this workspace; the stream differs from upstream's ChaCha12, which no
    /// caller depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Types samplable from their "natural" uniform distribution by
/// [`Rng::gen`] (the analog of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw one value from `range`. Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Map a uniform `u64` onto `[0, span)` with a widening multiply.
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(bounded(rng.next_u64(), span) as i64) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..16).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_rng(&mut rng);
        // And via reborrowed trait-object-free generic call chains.
        let r = &mut rng;
        let _ = takes_rng(r);
    }
}
