//! The GEMM kernel configuration: the 15 tunable parameters of the paper's
//! search space (Fig. 11) plus the global settings (Fig. 10), and the
//! derived resource quantities of Fig. 12.

use beast_cuda::DeviceProps;

/// Arithmetic precision (the four standard LAPACK precisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Single real (SGEMM).
    Single,
    /// Double real (DGEMM).
    Double,
    /// Single complex (CGEMM).
    SingleComplex,
    /// Double complex (ZGEMM).
    DoubleComplex,
}

impl Precision {
    /// `"single"` / `"double"` — the paper's `precision` setting.
    pub fn precision_str(self) -> &'static str {
        match self {
            Precision::Single | Precision::SingleComplex => "single",
            Precision::Double | Precision::DoubleComplex => "double",
        }
    }

    /// `"real"` / `"complex"` — the paper's `arithmetic` setting.
    pub fn arithmetic_str(self) -> &'static str {
        match self {
            Precision::Single | Precision::Double => "real",
            Precision::SingleComplex | Precision::DoubleComplex => "complex",
        }
    }

    /// Element size in bytes.
    pub fn element_bytes(self) -> i64 {
        match self {
            Precision::Single => 4,
            Precision::Double | Precision::SingleComplex => 8,
            Precision::DoubleComplex => 16,
        }
    }

    /// BLAS-style one-letter prefix.
    pub fn blas_letter(self) -> char {
        match self {
            Precision::Single => 's',
            Precision::Double => 'd',
            Precision::SingleComplex => 'c',
            Precision::DoubleComplex => 'z',
        }
    }

    /// All four precisions.
    pub fn all() -> [Precision; 4] {
        [
            Precision::Single,
            Precision::Double,
            Precision::SingleComplex,
            Precision::DoubleComplex,
        ]
    }
}

/// Transposition settings for the two input operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transpose {
    /// `trans_a != 0`: A is stored transposed (k × m).
    pub a: bool,
    /// `trans_b != 0`: B is stored transposed (n × k).
    pub b: bool,
}

impl Transpose {
    /// The four standard cases NN, NT, TN, TT.
    pub fn all() -> [Transpose; 4] {
        [
            Transpose { a: false, b: false },
            Transpose { a: false, b: true },
            Transpose { a: true, b: false },
            Transpose { a: true, b: true },
        ]
    }

    /// BLAS-style two-letter suffix, e.g. `"nn"`.
    pub fn suffix(self) -> &'static str {
        match (self.a, self.b) {
            (false, false) => "nn",
            (false, true) => "nt",
            (true, false) => "tn",
            (true, true) => "tt",
        }
    }
}

/// One point of the GEMM search space: the 15 iterators of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    /// Vertical dimension of the compute thread grid.
    pub dim_m: i64,
    /// Horizontal dimension of the compute thread grid.
    pub dim_n: i64,
    /// Vertical size of the block's C tile.
    pub blk_m: i64,
    /// Horizontal size of the block's C tile.
    pub blk_n: i64,
    /// Width of the A stripe / height of the B stripe.
    pub blk_k: i64,
    /// Vector width (elements) used for device→shared loads.
    pub dim_vec: i64,
    /// Whether the multiply reads shared memory with vector types.
    pub vec_mul: bool,
    /// Vertical dimension of the A read grid.
    pub dim_m_a: i64,
    /// Horizontal dimension of the A read grid.
    pub dim_n_a: i64,
    /// Vertical dimension of the B read grid.
    pub dim_m_b: i64,
    /// Horizontal dimension of the B read grid.
    pub dim_n_b: i64,
    /// Texture reads for A.
    pub tex_a: bool,
    /// Texture reads for B.
    pub tex_b: bool,
    /// Prefer shared memory over L1 (cudaFuncSetCacheConfig).
    pub shmem_l1: bool,
    /// 8-byte shared memory banks (cudaDeviceSetSharedMemConfig).
    pub shmem_banks: bool,
}

/// The derived resource quantities of Fig. 12, computed for one
/// configuration under given settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedVars {
    /// Threads per block (`dim_m * dim_n`).
    pub threads_per_block: i64,
    /// C rows per thread.
    pub thr_m: i64,
    /// C columns per thread.
    pub thr_n: i64,
    /// 32-bit registers per thread for the C accumulator.
    pub regs_per_thread: i64,
    /// 32-bit registers per block for the C accumulator.
    pub regs_per_block: i64,
    /// Shared memory per block, bytes, for the A and B stripes.
    pub shmem_per_block: i64,
    /// Max resident blocks by register demand.
    pub max_blocks_by_regs: i64,
    /// Max resident threads by register demand.
    pub max_threads_by_regs: i64,
    /// Max resident blocks by shared-memory demand.
    pub max_blocks_by_shmem: i64,
    /// Max resident threads by shared-memory demand.
    pub max_threads_by_shmem: i64,
    /// Shared→register load instructions per block per stripe.
    pub loads_per_block: i64,
    /// FMA instructions per block per stripe.
    pub fmas_per_block: i64,
}

impl GemmConfig {
    /// Compute the derived variables of Fig. 12 under the given device,
    /// compute-capability limits, and precision — arithmetic identical to
    /// the paper's listing (integer division included).
    pub fn derived(
        &self,
        device: &DeviceProps,
        max_blocks_per_mp: i64,
        precision: Precision,
    ) -> DerivedVars {
        let threads_per_block = self.dim_m * self.dim_n;
        let thr_m = self.blk_m / self.dim_m;
        let thr_n = self.blk_n / self.dim_n;

        let mut regs_per_thread = thr_m * thr_n;
        if precision.precision_str() == "double" {
            regs_per_thread *= 2;
        }
        if precision.arithmetic_str() == "complex" {
            regs_per_thread *= 2;
        }
        let regs_per_block = regs_per_thread * threads_per_block;

        let mut shmem_per_block = self.blk_k * (self.blk_m + self.blk_n) * device.float_size;
        if precision.precision_str() == "double" {
            shmem_per_block *= 2;
        }
        if precision.arithmetic_str() == "complex" {
            shmem_per_block *= 2;
        }

        let max_blocks_by_regs = if regs_per_block > 0 {
            (device.max_registers_per_multi_processor / regs_per_block).min(max_blocks_per_mp)
        } else {
            max_blocks_per_mp
        };
        let max_threads_by_regs = max_blocks_by_regs * threads_per_block;

        let max_blocks_by_shmem = if shmem_per_block > 0 {
            (device.max_shmem_per_multi_processor / shmem_per_block).min(max_blocks_per_mp)
        } else {
            max_blocks_per_mp
        };
        let max_threads_by_shmem = max_blocks_by_shmem * threads_per_block;

        let loads_per_thread = (thr_m + thr_n) * self.blk_k / self.dim_vec;
        let mut loads_per_block = loads_per_thread * threads_per_block;
        if precision.arithmetic_str() == "complex" {
            loads_per_block *= 2;
        }

        let fmas_per_thread = thr_m * thr_n * self.blk_k;
        let mut fmas_per_block = fmas_per_thread * threads_per_block;
        if precision.arithmetic_str() == "complex" {
            fmas_per_block *= 4;
        }

        DerivedVars {
            threads_per_block,
            thr_m,
            thr_n,
            regs_per_thread,
            regs_per_block,
            shmem_per_block,
            max_blocks_by_regs,
            max_threads_by_regs,
            max_blocks_by_shmem,
            max_threads_by_shmem,
            loads_per_block,
            fmas_per_block,
        }
    }

    /// A well-known good Kepler DGEMM-style configuration, used as a test
    /// fixture and example seed.
    pub fn kepler_dgemm_reference() -> GemmConfig {
        GemmConfig {
            dim_m: 16,
            dim_n: 16,
            blk_m: 64,
            blk_n: 64,
            blk_k: 16,
            dim_vec: 1,
            vec_mul: false,
            dim_m_a: 16,
            dim_n_a: 16,
            dim_m_b: 16,
            dim_n_b: 16,
            tex_a: false,
            tex_b: false,
            shmem_l1: true,
            shmem_banks: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_strings_match_fig10() {
        assert_eq!(Precision::Double.precision_str(), "double");
        assert_eq!(Precision::Double.arithmetic_str(), "real");
        assert_eq!(Precision::SingleComplex.precision_str(), "single");
        assert_eq!(Precision::SingleComplex.arithmetic_str(), "complex");
        assert_eq!(Precision::Double.blas_letter(), 'd');
    }

    #[test]
    fn transpose_suffixes() {
        let all = Transpose::all();
        let suffixes: Vec<&str> = all.iter().map(|t| t.suffix()).collect();
        assert_eq!(suffixes, vec!["nn", "nt", "tn", "tt"]);
    }

    #[test]
    fn derived_vars_match_fig12_arithmetic() {
        let device = DeviceProps::tesla_k40c();
        let cfg = GemmConfig::kepler_dgemm_reference();
        let d = cfg.derived(&device, 16, Precision::Double);
        assert_eq!(d.threads_per_block, 256);
        assert_eq!(d.thr_m, 4);
        assert_eq!(d.thr_n, 4);
        // double real: 4*4 * 2 = 32 regs/thread.
        assert_eq!(d.regs_per_thread, 32);
        assert_eq!(d.regs_per_block, 8192);
        // 16 * (64+64) * 4 * 2 = 16384 bytes.
        assert_eq!(d.shmem_per_block, 16384);
        // 65536/8192 = 8 blocks by regs.
        assert_eq!(d.max_blocks_by_regs, 8);
        assert_eq!(d.max_threads_by_regs, 2048);
        // 49152/16384 = 3 blocks by shmem.
        assert_eq!(d.max_blocks_by_shmem, 3);
        assert_eq!(d.max_threads_by_shmem, 768);
        // loads: (4+4)*16/1 * 256 = 32768; fmas: 4*4*16*256 = 65536.
        assert_eq!(d.loads_per_block, 32768);
        assert_eq!(d.fmas_per_block, 65536);
    }

    #[test]
    fn complex_factors() {
        let device = DeviceProps::tesla_k40c();
        let cfg = GemmConfig::kepler_dgemm_reference();
        let d = cfg.derived(&device, 16, Precision::DoubleComplex);
        // regs: 16 * 2(double) * 2(complex) = 64.
        assert_eq!(d.regs_per_thread, 64);
        // shmem: 16384 * 2 = 32768.
        assert_eq!(d.shmem_per_block, 32768);
        // loads doubled, fmas quadrupled vs real.
        assert_eq!(d.loads_per_block, 65536);
        assert_eq!(d.fmas_per_block, 262144);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(Precision::Single.element_bytes(), 4);
        assert_eq!(Precision::Double.element_bytes(), 8);
        assert_eq!(Precision::SingleComplex.element_bytes(), 8);
        assert_eq!(Precision::DoubleComplex.element_bytes(), 16);
    }
}
