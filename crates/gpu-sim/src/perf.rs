//! Analytic performance model: a deterministic stand-in for running and
//! timing kernels on real hardware.
//!
//! The paper benchmarks surviving configurations on a Tesla K40c; with no
//! GPU available, this model scores a configuration from first-order
//! architectural effects — the same quantities the paper's soft constraints
//! reason about (occupancy, FMA-per-load ratio, Fig. 14) plus the
//! vectorization, cache-configuration and bank-size switches of the search
//! space. It is *not* a cycle-accurate simulator; it is a documented,
//! monotone-in-the-right-directions objective that lets the end-to-end
//! autotuning loop (enumerate → prune → score → pick) run and reproduce the
//! paper's Table I shape ("GEMM ≈ 80% of peak").
//!
//! Model (all factors in `[0, 1]` unless noted):
//!
//! * `occ_eff` — occupancy saturates: `occ / (occ + 0.08) * 1.08`, reflecting
//!   Volkov's observation (paper reference \[17\]) that moderate occupancy
//!   suffices once per-thread ILP is high;
//! * `intensity_eff` — FMAs per shared load `r` (the soft-constraint
//!   quantity) saturating as `r / (r + 0.5)`;
//! * `ilp_eff` — register-tile ILP: rises with `thr_m × thr_n` to a sweet
//!   spot, then flattens (register pressure is already captured by
//!   occupancy);
//! * `stripe_eff` — sync overhead amortized over `blk_k`;
//! * `vec_eff` — bonus for vectorized global loads and vectorized multiply;
//! * `bank_eff` — 8-byte banks help 8-byte elements, 4-byte banks help
//!   4-byte elements;
//! * `tex_eff` — small bonus for texture-path reads of A and B;
//! * `l1_eff` — small bonus for preferring shared memory when the kernel is
//!   shared-memory-bound.

use beast_cuda::{occupancy, BlockDemand, CcLimits, DeviceProps};

use crate::config::{GemmConfig, Precision};

/// Performance estimate for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Estimated throughput in GFLOP/s.
    pub gflops: f64,
    /// Fraction of the device's model peak for this precision, in `[0, 1]`.
    pub fraction_of_peak: f64,
    /// Achieved occupancy fraction.
    pub occupancy: f64,
}

/// Peak GFLOP/s of the device for a precision (complex kernels execute the
/// same FMA pipes; peak is set by the element's component precision).
pub fn model_peak(device: &DeviceProps, precision: Precision) -> f64 {
    match precision.precision_str() {
        "double" => device.peak_dp_gflops,
        _ => device.peak_sp_gflops,
    }
}

/// Score a configuration. Configurations that cannot run (zero occupancy)
/// score zero.
pub fn estimate(
    device: &DeviceProps,
    cc: &CcLimits,
    cfg: &GemmConfig,
    precision: Precision,
) -> PerfEstimate {
    let derived = cfg.derived(device, cc.max_blocks_per_multi_processor, precision);

    let occ = occupancy(
        device,
        cc,
        &BlockDemand {
            threads_per_block: derived.threads_per_block,
            regs_per_thread: derived.regs_per_thread
                + register_overhead(cfg, precision),
            shmem_per_block: derived.shmem_per_block,
        },
    );
    if occ.blocks_per_mp == 0 || derived.loads_per_block == 0 {
        return PerfEstimate { gflops: 0.0, fraction_of_peak: 0.0, occupancy: 0.0 };
    }

    let occ_f = occ.fraction;
    let occ_eff = (occ_f / (occ_f + 0.08)) * 1.08;

    let intensity = derived.fmas_per_block as f64 / derived.loads_per_block as f64;
    let intensity_eff = intensity / (intensity + 0.5);

    let tile = (derived.thr_m * derived.thr_n) as f64;
    // Sweet spot around 16–64 accumulators; tiny tiles starve the pipeline.
    let ilp_eff = (tile / (tile + 2.0)).min(1.0);

    let blk_k = cfg.blk_k as f64;
    let stripe_eff = blk_k / (blk_k + 1.0);

    let mut vec_eff = 1.0;
    if cfg.dim_vec > 1 {
        vec_eff += 0.04 * (cfg.dim_vec as f64).log2();
    }
    if cfg.vec_mul {
        vec_eff += 0.02;
    }

    let elem = precision.element_bytes();
    let wide_banks = cfg.shmem_banks;
    let bank_eff = match (elem >= 8, wide_banks) {
        (true, true) | (false, false) => 1.0,
        _ => 0.88,
    };

    let mut tex_eff = 1.0;
    if cfg.tex_a {
        tex_eff += 0.015;
    }
    if cfg.tex_b {
        tex_eff += 0.015;
    }

    // Prefer-shared-memory helps when the kernel's shared demand is high.
    let shmem_pressure =
        derived.shmem_per_block as f64 / device.max_shared_mem_per_block as f64;
    let l1_eff = if cfg.shmem_l1 { 1.0 + 0.02 * shmem_pressure } else { 1.0 };

    // Grid-shape penalty: blocks whose warps split across C-tile rows
    // under-coalesce; mildly favor dim_m a multiple of a quarter-warp.
    let coalesce_eff = if cfg.dim_m % 8 == 0 {
        1.0
    } else if cfg.dim_m % 4 == 0 {
        0.96
    } else {
        0.88
    };

    let eff = occ_eff.min(1.0)
        * intensity_eff
        * ilp_eff
        * stripe_eff
        * bank_eff
        * coalesce_eff
        * vec_eff
        * tex_eff
        * l1_eff;

    let peak = model_peak(device, precision);
    let gflops = peak * eff;
    PerfEstimate { gflops, fraction_of_peak: eff.min(1.0), occupancy: occ_f }
}

/// Registers beyond the C accumulator: loop counters, addresses, staging for
/// the double-buffered loads; grows slightly with the vector width.
fn register_overhead(cfg: &GemmConfig, precision: Precision) -> i64 {
    let base = 16;
    let vec = 2 * cfg.dim_vec;
    let complex = if precision.arithmetic_str() == "complex" { 4 } else { 0 };
    base + vec + complex
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k40() -> (DeviceProps, CcLimits) {
        let d = DeviceProps::tesla_k40c();
        let cc = CcLimits::for_cc(d.cuda_major, d.cuda_minor).unwrap();
        (d, cc)
    }

    #[test]
    fn reference_config_scores_well() {
        let (d, cc) = k40();
        let cfg = GemmConfig::kepler_dgemm_reference();
        let est = estimate(&d, &cc, &cfg, Precision::Double);
        assert!(est.gflops > 0.0);
        assert!(
            est.fraction_of_peak > 0.5,
            "reference config should be good: {est:?}"
        );
        assert!(est.fraction_of_peak <= 1.0);
    }

    #[test]
    fn tiny_tile_scores_poorly() {
        let (d, cc) = k40();
        let mut cfg = GemmConfig::kepler_dgemm_reference();
        // 1x1 register tile: one FMA per two shared loads — the soft
        // constraint low_fmas territory.
        cfg.blk_m = 16;
        cfg.blk_n = 16;
        let weak = estimate(&d, &cc, &cfg, Precision::Double);
        let strong = estimate(&d, &cc, &GemmConfig::kepler_dgemm_reference(), Precision::Double);
        assert!(weak.gflops < strong.gflops * 0.5, "weak {weak:?} strong {strong:?}");
    }

    #[test]
    fn oversized_config_scores_zero() {
        let (d, cc) = k40();
        let mut cfg = GemmConfig::kepler_dgemm_reference();
        cfg.blk_m = 512;
        cfg.blk_n = 512; // 32x32 tile * 2 = 2048 regs/thread: impossible.
        let est = estimate(&d, &cc, &cfg, Precision::Double);
        assert_eq!(est.gflops, 0.0);
    }

    #[test]
    fn bank_size_matters_for_doubles() {
        let (d, cc) = k40();
        let mut cfg = GemmConfig::kepler_dgemm_reference();
        cfg.shmem_banks = true;
        let wide = estimate(&d, &cc, &cfg, Precision::Double);
        cfg.shmem_banks = false;
        let narrow = estimate(&d, &cc, &cfg, Precision::Double);
        assert!(wide.gflops > narrow.gflops);
        // And the reverse for single precision.
        cfg.shmem_banks = false;
        let narrow_sp = estimate(&d, &cc, &cfg, Precision::Single);
        cfg.shmem_banks = true;
        let wide_sp = estimate(&d, &cc, &cfg, Precision::Single);
        assert!(narrow_sp.gflops > wide_sp.gflops);
    }

    #[test]
    fn texture_and_vectors_give_small_bonuses() {
        let (d, cc) = k40();
        let base_cfg = GemmConfig::kepler_dgemm_reference();
        let base = estimate(&d, &cc, &base_cfg, Precision::Double);
        let mut cfg = base_cfg;
        cfg.tex_a = true;
        cfg.tex_b = true;
        let tex = estimate(&d, &cc, &cfg, Precision::Double);
        assert!(tex.gflops > base.gflops);
        assert!(tex.gflops < base.gflops * 1.1);
    }

    #[test]
    fn model_peak_by_precision() {
        let (d, _) = k40();
        assert_eq!(model_peak(&d, Precision::Double), 1430.0);
        assert_eq!(model_peak(&d, Precision::Single), 4290.0);
        assert_eq!(model_peak(&d, Precision::DoubleComplex), 1430.0);
    }

    #[test]
    fn deterministic() {
        let (d, cc) = k40();
        let cfg = GemmConfig::kepler_dgemm_reference();
        let a = estimate(&d, &cc, &cfg, Precision::Double);
        let b = estimate(&d, &cc, &cfg, Precision::Double);
        assert_eq!(a, b);
    }
}
