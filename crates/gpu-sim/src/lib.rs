//! # beast-gpu-sim
//!
//! A functional simulator and analytic performance model for the tiled GEMM
//! GPU kernel of Fig. 7 in *"Search Space Generation and Pruning System for
//! Autotuners"* (IPDPSW 2016) — the stand-in for the paper's CUDA runtime
//! and Tesla K40c hardware.
//!
//! * [`config::GemmConfig`] — one point of the 15-dimensional search space,
//!   with the derived resource arithmetic of Fig. 12;
//! * [`exec::sim_gemm`] — executes the kernel's exact data movement
//!   (reshaped read grids, vector widths, shared-memory staging, register
//!   tiles) against real matrices, so correctness constraints demonstrably
//!   separate working from broken configurations;
//! * [`perf::estimate`] — a documented analytic throughput model used as
//!   the tuning objective.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod exec;
pub mod matrix;
pub mod perf;
pub mod scalar;

pub use config::{DerivedVars, GemmConfig, Precision, Transpose};
pub use exec::{sim_gemm, workload_compatible, SimResult, SimStats};
pub use matrix::{reference_gemm, reference_gemm_trans, Matrix};
pub use perf::{estimate, model_peak, PerfEstimate};
pub use scalar::{Complex, Scalar};
