//! Functional execution of the tiled GEMM kernel of Fig. 7, parameterized by
//! a [`GemmConfig`].
//!
//! The simulator reproduces the kernel's *data movement* exactly: each thread
//! block streams `blk_m × blk_k` stripes of A and `blk_k × blk_n` stripes of
//! B through shared-memory arrays using the reshaped read grids
//! (`dim_m_a × dim_n_a`, `dim_m_b × dim_n_b`) with `dim_vec`-wide vector
//! loads, then each of the `dim_m × dim_n` compute threads accumulates its
//! `thr_m × thr_n` register tile of C.
//!
//! Because the index arithmetic is the real kernel's, configurations that
//! violate the paper's *correctness* constraints (Fig. 15) produce wrong
//! results here too: shared-memory locations that the broken read grid never
//! fills stay zero (a real kernel would read stale garbage; zero is the
//! deterministic stand-in), so the computed C diverges from the reference.
//! This is what lets the test suite demonstrate that the correctness
//! constraints separate working kernels from broken ones.

use crate::config::GemmConfig;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Instruction/traffic counters accumulated during simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Elements loaded from device (global) memory into shared memory.
    pub global_loads: u64,
    /// Shared-memory → register load operations in the multiply phase.
    pub shared_loads: u64,
    /// Fused multiply-add operations.
    pub fmas: u64,
    /// Block-level synchronizations (two per stripe).
    pub syncs: u64,
    /// Thread blocks launched.
    pub blocks: u64,
}

/// Outcome of simulating one kernel configuration on one workload.
#[derive(Debug, Clone)]
pub struct SimResult<T> {
    /// The computed C matrix.
    pub c: Matrix<T>,
    /// Operation counters.
    pub stats: SimStats,
}

/// True if the workload dimensions are compatible with the configuration's
/// tiling (the simulator, like the paper's kernel skeleton, handles full
/// tiles; callers pick workload sizes as multiples of the tile sizes).
pub fn workload_compatible(cfg: &GemmConfig, m: usize, n: usize, k: usize) -> bool {
    cfg.blk_m > 0
        && cfg.blk_n > 0
        && cfg.blk_k > 0
        && m.is_multiple_of(cfg.blk_m as usize)
        && n.is_multiple_of(cfg.blk_n as usize)
        && k.is_multiple_of(cfg.blk_k as usize)
}

/// Simulate `C = op(A) * op(B)` with the given configuration.
///
/// `A` is stored `m × k` (or `k × m` when `trans_a`); `B` is `k × n` (or
/// `n × k` when `trans_b`). Panics if the workload is not tile-compatible
/// (see [`workload_compatible`]); *configuration* defects do not panic —
/// they produce numerically wrong results, as on real hardware.
pub fn sim_gemm<T: Scalar>(
    cfg: &GemmConfig,
    a: &Matrix<T>,
    b: &Matrix<T>,
    trans_a: bool,
    trans_b: bool,
) -> SimResult<T> {
    let (m, k) = if trans_a { (a.cols(), a.rows()) } else { (a.rows(), a.cols()) };
    let (kb, n) = if trans_b { (b.cols(), b.rows()) } else { (b.rows(), b.cols()) };
    assert_eq!(k, kb, "inner dimensions must agree");
    assert!(
        workload_compatible(cfg, m, n, k),
        "workload {m}x{n}x{k} incompatible with tiling {}x{}x{}",
        cfg.blk_m,
        cfg.blk_n,
        cfg.blk_k
    );

    let blk_m = cfg.blk_m as usize;
    let blk_n = cfg.blk_n as usize;
    let blk_k = cfg.blk_k as usize;
    let dim_m = cfg.dim_m.max(1) as usize;
    let dim_n = cfg.dim_n.max(1) as usize;
    let dim_vec = cfg.dim_vec.max(1) as usize;
    let threads_per_block = dim_m * dim_n;
    let thr_m = blk_m / dim_m;
    let thr_n = blk_n / dim_n;

    let mut c = Matrix::zeros(m, n);
    let mut stats = SimStats::default();

    let mut shared_a = vec![T::zero(); blk_m * blk_k];
    let mut shared_b = vec![T::zero(); blk_k * blk_n];
    // Register accumulators for every thread of the block.
    let mut acc = vec![T::zero(); threads_per_block * thr_m * thr_n];

    for bj in 0..n / blk_n {
        for bi in 0..m / blk_m {
            stats.blocks += 1;
            acc.iter_mut().for_each(|x| *x = T::zero());

            for kk in (0..k).step_by(blk_k) {
                // Stale shared memory is modeled as zeros: deterministic,
                // and wrong wherever the read grid fails to cover a slot.
                shared_a.iter_mut().for_each(|x| *x = T::zero());
                shared_b.iter_mut().for_each(|x| *x = T::zero());

                // ---- load A stripe through the dim_m_a × dim_n_a grid ----
                //
                // The round counts are *fixed* integer quotients, modeling
                // the real kernel's compile-time-unrolled load loops: when
                // the stripe dimensions do not divide evenly by the read
                // grid (the cant_reshape_a2 condition), tail elements are
                // simply never loaded, and the result is wrong.
                let dim_m_a = cfg.dim_m_a.max(1) as usize;
                let dim_n_a = cfg.dim_n_a.max(1) as usize;
                let (a_vec_extent, a_col_extent) =
                    if trans_a { (blk_k, blk_m) } else { (blk_m, blk_k) };
                let a_rounds_i = (a_vec_extent / dim_vec) / dim_m_a;
                let a_rounds_j = a_col_extent / dim_n_a;
                for tid in 0..threads_per_block {
                    let ta = tid % dim_m_a;
                    let tb = tid / dim_m_a;
                    for rj in 0..a_rounds_j {
                        let j = tb + rj * dim_n_a;
                        if j >= a_col_extent {
                            continue;
                        }
                        for ri in 0..a_rounds_i {
                            let iv = ta + ri * dim_m_a;
                            for v in 0..dim_vec {
                                let e = iv * dim_vec + v;
                                if e >= a_vec_extent {
                                    continue;
                                }
                                if !trans_a {
                                    // Stripe blk_m × blk_k; vectors along m.
                                    shared_a[e + j * blk_m] =
                                        a.get(bi * blk_m + e, kk + j);
                                } else {
                                    // A stored k × m; vectors along k.
                                    shared_a[j + e * blk_m] =
                                        a.get(kk + e, bi * blk_m + j);
                                }
                                stats.global_loads += 1;
                            }
                        }
                    }
                }

                // ---- load B stripe through the dim_m_b × dim_n_b grid ----
                let dim_m_b = cfg.dim_m_b.max(1) as usize;
                let dim_n_b = cfg.dim_n_b.max(1) as usize;
                let (b_vec_extent, b_col_extent) =
                    if trans_b { (blk_n, blk_k) } else { (blk_k, blk_n) };
                let b_rounds_i = (b_vec_extent / dim_vec) / dim_m_b;
                let b_rounds_j = b_col_extent / dim_n_b;
                for tid in 0..threads_per_block {
                    let ta = tid % dim_m_b;
                    let tb = tid / dim_m_b;
                    for rj in 0..b_rounds_j {
                        let j = tb + rj * dim_n_b;
                        if j >= b_col_extent {
                            continue;
                        }
                        for ri in 0..b_rounds_i {
                            let iv = ta + ri * dim_m_b;
                            for v in 0..dim_vec {
                                let e = iv * dim_vec + v;
                                if e >= b_vec_extent {
                                    continue;
                                }
                                if !trans_b {
                                    // Stripe blk_k × blk_n; vectors along k.
                                    shared_b[e + j * blk_k] =
                                        b.get(kk + e, bj * blk_n + j);
                                } else {
                                    // B stored n × k; vectors along n.
                                    shared_b[j + e * blk_k] =
                                        b.get(bj * blk_n + e, kk + j);
                                }
                                stats.global_loads += 1;
                            }
                        }
                    }
                }

                stats.syncs += 2; // after loads, after multiply

                // ---- multiply: each thread's thr_m × thr_n register tile,
                // cyclic distribution over the dim_m × dim_n compute grid ----
                for ty in 0..dim_n {
                    for tx in 0..dim_m {
                        let tid = ty * dim_m + tx;
                        let base = tid * thr_m * thr_n;
                        for kr in 0..blk_k {
                            for i_n in 0..thr_n {
                                let col = ty + i_n * dim_n;
                                let bv = shared_b[kr + col * blk_k];
                                stats.shared_loads += 1;
                                for i_m in 0..thr_m {
                                    let row = tx + i_m * dim_m;
                                    let av = shared_a[row + kr * blk_m];
                                    stats.shared_loads += 1;
                                    acc[base + i_m * thr_n + i_n] += av * bv;
                                    stats.fmas += 1;
                                }
                            }
                        }
                    }
                }
            }

            // ---- write back the C tile ----
            for ty in 0..dim_n {
                for tx in 0..dim_m {
                    let tid = ty * dim_m + tx;
                    let base = tid * thr_m * thr_n;
                    for i_m in 0..thr_m {
                        let row = bi * blk_m + tx + i_m * dim_m;
                        for i_n in 0..thr_n {
                            let col = bj * blk_n + ty + i_n * dim_n;
                            if row < m && col < n {
                                *c.get_mut(row, col) = acc[base + i_m * thr_n + i_n];
                            }
                        }
                    }
                }
            }
        }
    }

    SimResult { c, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GemmConfig;
    use crate::matrix::{reference_gemm_trans, Matrix};
    use crate::scalar::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small, fully constraint-satisfying configuration.
    fn small_cfg() -> GemmConfig {
        GemmConfig {
            dim_m: 4,
            dim_n: 4,
            blk_m: 8,
            blk_n: 8,
            blk_k: 4,
            dim_vec: 1,
            vec_mul: false,
            dim_m_a: 4,
            dim_n_a: 4,
            dim_m_b: 4,
            dim_n_b: 4,
            tex_a: false,
            tex_b: false,
            shmem_l1: false,
            shmem_banks: false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_against_reference<T: crate::scalar::Scalar>(
        cfg: &GemmConfig,
        m: usize,
        n: usize,
        k: usize,
        trans_a: bool,
        trans_b: bool,
        seed: u64,
        tol: f64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix<T> = if trans_a {
            Matrix::random(k, m, &mut rng)
        } else {
            Matrix::random(m, k, &mut rng)
        };
        let b: Matrix<T> = if trans_b {
            Matrix::random(n, k, &mut rng)
        } else {
            Matrix::random(k, n, &mut rng)
        };
        let expect = reference_gemm_trans(&a, &b, trans_a, trans_b);
        let got = sim_gemm(cfg, &a, &b, trans_a, trans_b);
        let dist = got.c.max_dist(&expect);
        assert!(
            dist.is_finite(),
            "non-finite distance for cfg {cfg:?} ({trans_a}, {trans_b})"
        );
        let _ = tol;
        dist
    }

    #[test]
    fn valid_config_is_correct_all_transposes() {
        let cfg = small_cfg();
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let d = check_against_reference::<f64>(&cfg, 16, 16, 12, ta, tb, 42, 1e-12);
            assert!(d < 1e-12, "trans ({ta}, {tb}): dist {d}");
        }
    }

    #[test]
    fn vectorized_loads_are_correct() {
        let mut cfg = small_cfg();
        cfg.dim_vec = 2;
        // Read grids shrink along the vector dimension: dim_m_a covers
        // blk_m/dim_vec = 4 rows of vectors.
        cfg.dim_m_a = 4;
        cfg.dim_n_a = 4;
        cfg.dim_m_b = 2;
        cfg.dim_n_b = 8;
        let d = check_against_reference::<f64>(&cfg, 16, 16, 8, false, false, 7, 1e-12);
        assert!(d < 1e-12, "dist {d}");
    }

    #[test]
    fn single_precision_and_complex() {
        let cfg = small_cfg();
        let d = check_against_reference::<f32>(&cfg, 8, 8, 8, false, false, 1, 1e-4);
        assert!(d < 1e-4);
        let d = check_against_reference::<Complex<f64>>(&cfg, 8, 8, 8, false, false, 2, 1e-12);
        assert!(d < 1e-12);
        let d = check_against_reference::<Complex<f32>>(&cfg, 8, 8, 8, false, false, 3, 1e-3);
        assert!(d < 1e-3);
    }

    #[test]
    fn cant_reshape_a1_violation_is_wrong() {
        // Read grid has more positions than threads: 8x4 = 32 > 16 threads —
        // some stripe elements are never loaded.
        let mut cfg = small_cfg();
        cfg.dim_m_a = 8;
        cfg.dim_n_a = 4;
        let d = check_against_reference::<f64>(&cfg, 16, 16, 12, false, false, 42, 0.0);
        assert!(d > 1e-6, "expected wrong result, got dist {d}");
    }

    #[test]
    fn cant_reshape_a2_violation_is_wrong() {
        // blk_k % dim_n_a != 0: 4 % 3 != 0 — column coverage has holes.
        let mut cfg = small_cfg();
        cfg.dim_m_a = 4;
        cfg.dim_n_a = 3;
        // Keep a1 satisfied? 4*3=12 != 16 threads — violates a1 too; use a
        // thread grid that matches: dim_m=4, dim_n=3 → 12 threads.
        cfg.dim_n = 3;
        cfg.blk_n = 9;
        cfg.dim_m_b = 4;
        cfg.dim_n_b = 3;
        // dims: blk_n=9, dim_n=3 → thr_n=3. blk_k=4 % dim_n_a=3 != 0 → broken.
        let d = check_against_reference::<f64>(&cfg, 16, 18, 12, false, false, 9, 0.0);
        assert!(d > 1e-6, "expected wrong result, got dist {d}");
    }

    #[test]
    fn stats_are_plausible() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(5);
        let a: Matrix<f64> = Matrix::random(16, 8, &mut rng);
        let b: Matrix<f64> = Matrix::random(8, 16, &mut rng);
        let out = sim_gemm(&cfg, &a, &b, false, false);
        // 2x2 blocks of 8x8 tiles, 2 stripes each.
        assert_eq!(out.stats.blocks, 4);
        assert_eq!(out.stats.syncs, 4 * 2 * 2);
        // FMAs = m*n*k = 16*16*8.
        assert_eq!(out.stats.fmas, 16 * 16 * 8);
        // Global loads: every stripe element loaded exactly once per block:
        // per block per stripe: 8*4 (A) + 4*8 (B) = 64; 4 blocks * 2 stripes.
        assert_eq!(out.stats.global_loads, 4 * 2 * 64);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_workload_panics() {
        let cfg = small_cfg();
        let a: Matrix<f64> = Matrix::zeros(10, 8);
        let b: Matrix<f64> = Matrix::zeros(8, 16);
        let _ = sim_gemm(&cfg, &a, &b, false, false);
    }

    #[test]
    fn rectangular_thread_grids() {
        let cfg = GemmConfig {
            dim_m: 8,
            dim_n: 2,
            blk_m: 16,
            blk_n: 8,
            blk_k: 8,
            dim_vec: 1,
            vec_mul: false,
            dim_m_a: 2,
            dim_n_a: 8,
            dim_m_b: 8,
            dim_n_b: 2,
            tex_a: false,
            tex_b: false,
            shmem_l1: false,
            shmem_banks: false,
        };
        // a2: blk_m=16 % (2*1)=0, blk_k=8 % 8 = 0 ✓; b2: blk_k=8 % 8...
        // dim_m_b=8 covers blk_k=8, dim_n_b=2 covers blk_n=8: 8 % 2 = 0 ✓.
        let d = check_against_reference::<f64>(&cfg, 32, 16, 16, false, false, 11, 1e-12);
        assert!(d < 1e-12, "dist {d}");
    }
}
