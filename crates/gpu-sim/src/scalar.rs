//! Scalar types for the four standard LAPACK precisions the paper's kernel
//! supports (Section IX-A): single real (S), double real (D), single complex
//! (C), double complex (Z).
//!
//! A tiny hand-rolled complex type keeps the crate dependency-free; only the
//! operations the simulator needs are implemented.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Sub};

use rand::Rng;

/// Minimal complex number over `T`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T> Complex<T> {
    /// Construct from real and imaginary parts.
    pub fn new(re: T, im: T) -> Complex<T> {
        Complex { re, im }
    }
}

impl<T: Add<Output = T>> Add for Complex<T> {
    type Output = Complex<T>;
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Add<Output = T> + Copy> AddAssign for Complex<T> {
    fn add_assign(&mut self, rhs: Self) {
        self.re = self.re + rhs.re;
        self.im = self.im + rhs.im;
    }
}

impl<T: Sub<Output = T>> Sub for Complex<T> {
    type Output = Complex<T>;
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Copy + Add<Output = T> + Sub<Output = T> + Mul<Output = T>> Mul for Complex<T> {
    type Output = Complex<T>;
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Scalar element of a matrix: the operations the simulator and reference
/// implementation need, plus test utilities.
pub trait Scalar:
    Copy + Debug + PartialEq + Default + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self> + AddAssign + Send + Sync + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// A random value in a well-conditioned range.
    fn random<R: Rng>(rng: &mut R) -> Self;
    /// Max-norm distance to another scalar, for approximate comparison.
    fn dist(self, other: Self) -> f64;
    /// Element size in bytes (the paper's per-precision size factors).
    fn size_bytes() -> i64;
    /// Floating-point operations per fused multiply-add on this type
    /// (2 for real, 8 for complex), used by throughput accounting.
    fn flops_per_fma() -> i64;
}

impl Scalar for f32 {
    fn zero() -> f32 {
        0.0
    }
    fn one() -> f32 {
        1.0
    }
    fn random<R: Rng>(rng: &mut R) -> f32 {
        rng.gen_range(-1.0..1.0)
    }
    fn dist(self, other: f32) -> f64 {
        f64::from((self - other).abs())
    }
    fn size_bytes() -> i64 {
        4
    }
    fn flops_per_fma() -> i64 {
        2
    }
}

impl Scalar for f64 {
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn random<R: Rng>(rng: &mut R) -> f64 {
        rng.gen_range(-1.0..1.0)
    }
    fn dist(self, other: f64) -> f64 {
        (self - other).abs()
    }
    fn size_bytes() -> i64 {
        8
    }
    fn flops_per_fma() -> i64 {
        2
    }
}

impl Scalar for Complex<f32> {
    fn zero() -> Self {
        Complex::new(0.0, 0.0)
    }
    fn one() -> Self {
        Complex::new(1.0, 0.0)
    }
    fn random<R: Rng>(rng: &mut R) -> Self {
        Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    }
    fn dist(self, other: Self) -> f64 {
        f64::from((self.re - other.re).abs() + (self.im - other.im).abs())
    }
    fn size_bytes() -> i64 {
        8
    }
    fn flops_per_fma() -> i64 {
        8
    }
}

impl Scalar for Complex<f64> {
    fn zero() -> Self {
        Complex::new(0.0, 0.0)
    }
    fn one() -> Self {
        Complex::new(1.0, 0.0)
    }
    fn random<R: Rng>(rng: &mut R) -> Self {
        Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    }
    fn dist(self, other: Self) -> f64 {
        (self.re - other.re).abs() + (self.im - other.im).abs()
    }
    fn size_bytes() -> i64 {
        16
    }
    fn flops_per_fma() -> i64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0f64, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0)); // (1+2i)(3-i) = 5+5i
        let mut c = a;
        c += b;
        assert_eq!(c, Complex::new(4.0, 1.0));
    }

    #[test]
    fn scalar_constants() {
        assert_eq!(f64::size_bytes(), 8);
        assert_eq!(Complex::<f64>::size_bytes(), 16);
        assert_eq!(f32::flops_per_fma(), 2);
        assert_eq!(Complex::<f32>::flops_per_fma(), 8);
        assert_eq!(Complex::<f64>::one() * Complex::<f64>::one(), Complex::<f64>::one());
    }

    #[test]
    fn dist_is_metric_like() {
        assert_eq!(1.0f64.dist(1.0), 0.0);
        assert!(1.0f64.dist(2.0) > 0.0);
        assert_eq!(Complex::new(1.0, 1.0).dist(Complex::new(1.0, 1.0)), 0.0);
    }
}
