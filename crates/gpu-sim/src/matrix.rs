//! Column-major matrices and the reference GEMM, the ground truth against
//! which simulated kernel configurations are validated.

use rand::Rng;

use crate::scalar::Scalar;

/// A dense column-major matrix (BLAS convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix { rows, cols, data: vec![T::zero(); rows * cols] }
    }

    /// Random matrix with entries from the scalar's well-conditioned range.
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| T::random(rng)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (== rows for packed column-major storage).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Element (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Mutable element (i, j).
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Max-norm distance to another matrix of the same shape.
    pub fn max_dist(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.dist(*b))
            .fold(0.0, f64::max)
    }
}

/// Reference `C = A * B` (no transposes; operands pre-shaped): the textbook
/// triple loop, trusted by inspection.
pub fn reference_gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows());
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        for l in 0..k {
            let blj = b.get(l, j);
            for i in 0..m {
                *c.get_mut(i, j) += a.get(i, l) * blj;
            }
        }
    }
    c
}

/// Reference GEMM with transpose flags: computes `C = op(A) * op(B)` where
/// `op(X)` is `X` or `X^T`. `A` is stored (m × k) or (k × m), `B` (k × n) or
/// (n × k).
pub fn reference_gemm_trans<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    trans_a: bool,
    trans_b: bool,
) -> Matrix<T> {
    let (m, k) = if trans_a { (a.cols(), a.rows()) } else { (a.rows(), a.cols()) };
    let (kb, n) = if trans_b { (b.cols(), b.rows()) } else { (b.rows(), b.cols()) };
    assert_eq!(k, kb);
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        for l in 0..k {
            let blj = if trans_b { b.get(j, l) } else { b.get(l, j) };
            for i in 0..m {
                let ail = if trans_a { a.get(l, i) } else { a.get(i, l) };
                *c.get_mut(i, j) += ail * blj;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Complex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_multiplication() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Matrix<f64> = Matrix::random(4, 4, &mut rng);
        let mut eye = Matrix::zeros(4, 4);
        for i in 0..4 {
            *eye.get_mut(i, i) = 1.0;
        }
        let c = reference_gemm(&a, &eye);
        assert!(c.max_dist(&a) < 1e-15);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let mut a = Matrix::zeros(2, 2);
        *a.get_mut(0, 0) = 1.0;
        *a.get_mut(0, 1) = 2.0;
        *a.get_mut(1, 0) = 3.0;
        *a.get_mut(1, 1) = 4.0;
        let mut b = Matrix::zeros(2, 2);
        *b.get_mut(0, 0) = 5.0;
        *b.get_mut(0, 1) = 6.0;
        *b.get_mut(1, 0) = 7.0;
        *b.get_mut(1, 1) = 8.0;
        let c = reference_gemm(&a, &b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = 6;
        let n = 5;
        let k = 4;
        let a: Matrix<f64> = Matrix::random(m, k, &mut rng);
        let b: Matrix<f64> = Matrix::random(k, n, &mut rng);
        let base = reference_gemm(&a, &b);

        // Build A^T and B^T explicitly.
        let mut at = Matrix::zeros(k, m);
        for i in 0..m {
            for l in 0..k {
                *at.get_mut(l, i) = a.get(i, l);
            }
        }
        let mut bt = Matrix::zeros(n, k);
        for l in 0..k {
            for j in 0..n {
                *bt.get_mut(j, l) = b.get(l, j);
            }
        }

        assert!(reference_gemm_trans(&a, &b, false, false).max_dist(&base) < 1e-14);
        assert!(reference_gemm_trans(&at, &b, true, false).max_dist(&base) < 1e-14);
        assert!(reference_gemm_trans(&a, &bt, false, true).max_dist(&base) < 1e-14);
        assert!(reference_gemm_trans(&at, &bt, true, true).max_dist(&base) < 1e-14);
    }

    #[test]
    fn complex_gemm() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Matrix<Complex<f64>> = Matrix::random(3, 3, &mut rng);
        let b: Matrix<Complex<f64>> = Matrix::random(3, 3, &mut rng);
        let c = reference_gemm(&a, &b);
        // Spot check one element against a manual dot product.
        let mut expect = Complex::new(0.0, 0.0);
        for l in 0..3 {
            expect += a.get(1, l) * b.get(l, 2);
        }
        assert!(c.get(1, 2).dist(expect) < 1e-14);
    }
}
