//! Kernel launch validity — the checks behind the paper's *hard* constraints
//! (Fig. 13): a configuration violating them "would fail to compile due to
//! exceeding hardware limits, or would compile, but fail to launch".

use crate::cc_tables::CcLimits;
use crate::occupancy::BlockDemand;
use crate::props::DeviceProps;

/// Why a launch would be rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// `threads_per_block > max_threads_per_block` (exact limit).
    OverMaxThreads,
    /// Block x-dimension exceeds the device limit.
    OverMaxDimX,
    /// Block y-dimension exceeds the device limit.
    OverMaxDimY,
    /// Theoretical register demand per thread exceeds the CC limit.
    OverMaxRegsPerThread,
    /// Theoretical register demand per block exceeds the device limit.
    OverMaxRegsPerBlock,
    /// Shared memory per block exceeds the device limit (exact limit).
    OverMaxShmem,
}

/// A 2-D block shape plus resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Block x-dimension.
    pub dim_x: i64,
    /// Block y-dimension.
    pub dim_y: i64,
    /// 32-bit registers per thread (theoretical demand).
    pub regs_per_thread: i64,
    /// Shared memory per block, bytes.
    pub shmem_per_block: i64,
}

impl LaunchConfig {
    /// Threads per block.
    pub fn threads_per_block(&self) -> i64 {
        self.dim_x * self.dim_y
    }

    /// The equivalent [`BlockDemand`] for occupancy queries.
    pub fn demand(&self) -> BlockDemand {
        BlockDemand {
            threads_per_block: self.threads_per_block(),
            regs_per_thread: self.regs_per_thread,
            shmem_per_block: self.shmem_per_block,
        }
    }
}

/// Check every hard launch limit; returns all violations (not just the
/// first) so pruning reports can attribute rejections precisely.
pub fn validate_launch(
    device: &DeviceProps,
    cc: &CcLimits,
    config: &LaunchConfig,
) -> Vec<LaunchError> {
    let mut errors = Vec::new();
    if config.threads_per_block() > device.max_threads_per_block {
        errors.push(LaunchError::OverMaxThreads);
    }
    if config.dim_x > device.max_threads_dim_x {
        errors.push(LaunchError::OverMaxDimX);
    }
    if config.dim_y > device.max_threads_dim_y {
        errors.push(LaunchError::OverMaxDimY);
    }
    if config.regs_per_thread > cc.max_registers_per_thread {
        errors.push(LaunchError::OverMaxRegsPerThread);
    }
    if config.regs_per_thread * config.threads_per_block() > device.max_regs_per_block {
        errors.push(LaunchError::OverMaxRegsPerBlock);
    }
    if config.shmem_per_block > device.max_shared_mem_per_block {
        errors.push(LaunchError::OverMaxShmem);
    }
    errors
}

/// True if the configuration can launch at all.
pub fn can_launch(device: &DeviceProps, cc: &CcLimits, config: &LaunchConfig) -> bool {
    validate_launch(device, cc, config).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k40() -> (DeviceProps, CcLimits) {
        let d = DeviceProps::tesla_k40c();
        let cc = CcLimits::for_cc(d.cuda_major, d.cuda_minor).unwrap();
        (d, cc)
    }

    #[test]
    fn valid_config_launches() {
        let (d, cc) = k40();
        let cfg = LaunchConfig { dim_x: 16, dim_y: 16, regs_per_thread: 32, shmem_per_block: 8192 };
        assert!(can_launch(&d, &cc, &cfg));
    }

    #[test]
    fn too_many_threads() {
        let (d, cc) = k40();
        let cfg = LaunchConfig { dim_x: 64, dim_y: 32, regs_per_thread: 16, shmem_per_block: 0 };
        let errors = validate_launch(&d, &cc, &cfg);
        assert!(errors.contains(&LaunchError::OverMaxThreads));
        // 2048 threads * 16 regs = 32768 <= 65536, so regs/block is fine.
        assert!(!errors.contains(&LaunchError::OverMaxRegsPerBlock));
    }

    #[test]
    fn multiple_violations_reported() {
        let (d, cc) = k40();
        let cfg = LaunchConfig {
            dim_x: 2048,
            dim_y: 1,
            regs_per_thread: 300,
            shmem_per_block: 100_000,
        };
        let errors = validate_launch(&d, &cc, &cfg);
        assert!(errors.contains(&LaunchError::OverMaxThreads));
        assert!(errors.contains(&LaunchError::OverMaxDimX));
        assert!(errors.contains(&LaunchError::OverMaxRegsPerThread));
        assert!(errors.contains(&LaunchError::OverMaxShmem));
    }

    #[test]
    fn regs_per_block_boundary() {
        let (d, cc) = k40();
        // 1024 threads * 64 regs = 65536 == limit: allowed.
        let ok = LaunchConfig { dim_x: 32, dim_y: 32, regs_per_thread: 64, shmem_per_block: 0 };
        assert!(can_launch(&d, &cc, &ok));
        // One more register pushes it over.
        let bad = LaunchConfig { dim_x: 32, dim_y: 32, regs_per_thread: 65, shmem_per_block: 0 };
        assert!(validate_launch(&d, &cc, &bad).contains(&LaunchError::OverMaxRegsPerBlock));
    }
}
