//! Occupancy calculation — the paper's flagship example of a *derived*
//! pruning constraint (Section II): "GPU occupancy … is a function of
//! multiple variables, including the number of threads in a block, the
//! number of registers required by each thread and the amount of shared
//! memory required by each block. Occupancy threshold is a very effective
//! and safe pruning constraint."
//!
//! This module is the stand-alone "automated occupancy calculator"; the GEMM
//! space expresses the same arithmetic as derived variables (Fig. 12) so it
//! can be pruned *during* enumeration.

use crate::cc_tables::CcLimits;
use crate::props::DeviceProps;

/// Resource demand of one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDemand {
    /// Threads per block.
    pub threads_per_block: i64,
    /// 32-bit registers per thread.
    pub regs_per_thread: i64,
    /// Shared memory per block, bytes.
    pub shmem_per_block: i64,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per multiprocessor.
    pub blocks_per_mp: i64,
    /// Resident threads per multiprocessor.
    pub threads_per_mp: i64,
    /// Resident warps per multiprocessor.
    pub warps_per_mp: i64,
    /// Fraction of the hardware thread capacity occupied, in `[0, 1]`.
    pub fraction: f64,
    /// Which resource limits the block count.
    pub limited_by: LimitingResource,
}

/// The resource that bounds occupancy for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitingResource {
    /// Register file exhausted first.
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Hardware cap on resident warps.
    Warps,
    /// Hardware cap on resident blocks.
    Blocks,
    /// The configuration cannot run at all (zero blocks fit).
    None,
}

/// Compute the achievable occupancy of a configuration on a device, using
/// the same arithmetic as the paper's derived variables `max_blocks_by_regs`
/// / `max_blocks_by_shmem` (Fig. 12), extended with the warp cap.
pub fn occupancy(device: &DeviceProps, cc: &CcLimits, demand: &BlockDemand) -> Occupancy {
    let BlockDemand { threads_per_block, regs_per_thread, shmem_per_block } = *demand;
    if threads_per_block <= 0 {
        return Occupancy {
            blocks_per_mp: 0,
            threads_per_mp: 0,
            warps_per_mp: 0,
            fraction: 0.0,
            limited_by: LimitingResource::None,
        };
    }

    let regs_per_block = regs_per_thread * threads_per_block;
    let by_regs = if regs_per_block > 0 {
        device.max_registers_per_multi_processor / regs_per_block
    } else {
        i64::MAX
    };
    let by_shmem = if shmem_per_block > 0 {
        device.max_shmem_per_multi_processor / shmem_per_block
    } else {
        i64::MAX
    };
    let warps_per_block =
        (threads_per_block + device.warp_size - 1) / device.warp_size;
    let by_warps = cc.max_warps_per_multi_processor / warps_per_block;
    let by_blocks = cc.max_blocks_per_multi_processor;
    let by_threads = device.max_threads_per_multi_processor / threads_per_block;

    let blocks = by_regs.min(by_shmem).min(by_warps).min(by_blocks).min(by_threads);
    let limited_by = if blocks <= 0 {
        LimitingResource::None
    } else if blocks == by_regs {
        LimitingResource::Registers
    } else if blocks == by_shmem {
        LimitingResource::SharedMemory
    } else if blocks == by_warps || blocks == by_threads {
        LimitingResource::Warps
    } else {
        LimitingResource::Blocks
    };

    let blocks = blocks.max(0);
    let threads = blocks * threads_per_block;
    Occupancy {
        blocks_per_mp: blocks,
        threads_per_mp: threads,
        warps_per_mp: blocks * warps_per_block,
        fraction: threads as f64 / device.max_threads_per_multi_processor as f64,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k40() -> (DeviceProps, CcLimits) {
        let d = DeviceProps::tesla_k40c();
        let cc = CcLimits::for_cc(d.cuda_major, d.cuda_minor).unwrap();
        (d, cc)
    }

    #[test]
    fn full_occupancy_config() {
        let (d, cc) = k40();
        // 256 threads, 32 regs/thread, 16 KiB shmem: 8 blocks by regs,
        // 3 by shmem → shmem limits at 3 blocks = 768 threads.
        let occ = occupancy(
            &d,
            &cc,
            &BlockDemand {
                threads_per_block: 256,
                regs_per_thread: 32,
                shmem_per_block: 16384,
            },
        );
        assert_eq!(occ.blocks_per_mp, 3);
        assert_eq!(occ.threads_per_mp, 768);
        assert_eq!(occ.limited_by, LimitingResource::SharedMemory);
        assert!((occ.fraction - 768.0 / 2048.0).abs() < 1e-12);
    }

    #[test]
    fn register_limited() {
        let (d, cc) = k40();
        let occ = occupancy(
            &d,
            &cc,
            &BlockDemand {
                threads_per_block: 256,
                regs_per_thread: 128,
                shmem_per_block: 0,
            },
        );
        // regs/block = 32768 → 2 blocks by regs.
        assert_eq!(occ.blocks_per_mp, 2);
        assert_eq!(occ.limited_by, LimitingResource::Registers);
    }

    #[test]
    fn warp_limited_small_blocks() {
        let (d, cc) = k40();
        let occ = occupancy(
            &d,
            &cc,
            &BlockDemand { threads_per_block: 32, regs_per_thread: 8, shmem_per_block: 0 },
        );
        // 1 warp/block, 64 warps max, but only 16 blocks/SM → block-limited.
        assert_eq!(occ.blocks_per_mp, 16);
        assert_eq!(occ.limited_by, LimitingResource::Blocks);
        assert_eq!(occ.threads_per_mp, 512);
    }

    #[test]
    fn oversized_block_fits_zero() {
        let (d, cc) = k40();
        let occ = occupancy(
            &d,
            &cc,
            &BlockDemand {
                threads_per_block: 1024,
                regs_per_thread: 200,
                shmem_per_block: 0,
            },
        );
        // 204800 regs/block > 65536 per SM → zero blocks.
        assert_eq!(occ.blocks_per_mp, 0);
        assert_eq!(occ.limited_by, LimitingResource::None);
        assert_eq!(occ.fraction, 0.0);
    }

    #[test]
    fn occupancy_monotone_in_register_pressure() {
        let (d, cc) = k40();
        let mut last = i64::MAX;
        for regs in [16, 32, 64, 128, 255] {
            let occ = occupancy(
                &d,
                &cc,
                &BlockDemand {
                    threads_per_block: 256,
                    regs_per_thread: regs,
                    shmem_per_block: 0,
                },
            );
            assert!(occ.blocks_per_mp <= last);
            last = occ.blocks_per_mp;
        }
    }

    #[test]
    fn degenerate_zero_threads() {
        let (d, cc) = k40();
        let occ = occupancy(
            &d,
            &cc,
            &BlockDemand { threads_per_block: 0, regs_per_thread: 0, shmem_per_block: 0 },
        );
        assert_eq!(occ.blocks_per_mp, 0);
    }
}
