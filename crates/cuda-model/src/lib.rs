//! # beast-cuda
//!
//! A CUDA *device model*: everything the BEAST GEMM search space needs to
//! know about the GPU, with no GPU attached.
//!
//! The paper's search space consumes two kinds of device information
//! (Section IX-B):
//!
//! 1. **queryable properties** (`cudaGetDeviceProperties`, Fig. 8) —
//!    reproduced by [`props::DeviceProps`], with Tesla K40c tabulated
//!    field-for-field;
//! 2. **compute-capability tables** from NVIDIA documentation (Fig. 9) —
//!    reproduced by [`cc_tables::CcLimits`], including the `-1` sentinel
//!    entries (surfaced as `None`).
//!
//! On top of these, [`mod@occupancy`] implements the "automated occupancy
//! calculator" the paper advocates as a pruning constraint (Section II), and
//! [`launch`] implements the hard launch-validity limits behind Fig. 13.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cc_tables;
pub mod launch;
pub mod occupancy;
pub mod props;

pub use cc_tables::CcLimits;
pub use launch::{can_launch, validate_launch, LaunchConfig, LaunchError};
pub use occupancy::{occupancy, BlockDemand, LimitingResource, Occupancy};
pub use props::DeviceProps;
