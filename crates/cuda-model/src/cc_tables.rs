//! Compute-capability tables — the device information that *cannot* be
//! queried at runtime and must come from NVIDIA documentation, indexed by
//! the compute capability's major and minor numbers (Fig. 9 of the paper).
//!
//! The `-1` sentinel entries of the paper's tables become `None` here; a
//! lookup of an undefined (major, minor) pair is an error the caller sees,
//! not a silent negative limit.

/// `-1`-sentinel tables exactly as printed in Fig. 9.
const MAX_BLOCKS_PER_MULTI_PROCESSOR: [[i64; 10]; 4] = [
    [-1, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [8, 8, 8, 8, -1, -1, -1, -1, -1, -1],
    [8, 8, 8, 8, 8, 8, 8, 8, 8, 8],
    [16, -1, -1, -1, -1, 16, -1, -1, -1, -1],
];

const MAX_WARPS_PER_MULTI_PROCESSOR: [[i64; 10]; 4] = [
    [-1, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [24, 24, 32, 32, -1, -1, -1, -1, -1, -1],
    [48, 48, 48, 48, 48, 48, 48, 48, 48, 48],
    [64, -1, -1, -1, -1, 64, -1, -1, -1, -1],
];

const MAX_REGISTERS_PER_THREAD: [[i64; 10]; 4] = [
    [-1, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [128, 128, 128, 128, -1, -1, -1, -1, -1, -1],
    [63, 63, 63, 63, 63, 63, 63, 63, 63, 63],
    [63, -1, -1, -1, -1, 255, -1, -1, -1, -1],
];

/// Maxwell extension of the paper's tables (major 5): the paper's Fig. 2
/// dispatches on Maxwell, so the lookup covers it too. Values from NVIDIA's
/// CUDA C Programming Guide.
const MAXWELL: (i64, i64, i64) = (32, 64, 255);

fn lookup(table: &[[i64; 10]; 4], major: usize, minor: usize) -> Option<i64> {
    if major == 5 && (minor == 0 || minor == 2 || minor == 3) {
        // Major 5 handled by the Maxwell extension constant.
        return None;
    }
    let v = *table.get(major)?.get(minor)?;
    (v >= 0).then_some(v)
}

/// Limits tied to a compute capability, resolved from the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcLimits {
    /// Maximum resident blocks per multiprocessor.
    pub max_blocks_per_multi_processor: i64,
    /// Maximum resident warps per multiprocessor.
    pub max_warps_per_multi_processor: i64,
    /// Maximum 32-bit registers addressable by one thread.
    pub max_registers_per_thread: i64,
}

impl CcLimits {
    /// Resolve the limits for compute capability `major.minor`; `None` when
    /// the pair does not exist (the paper's `-1` entries).
    pub fn for_cc(major: usize, minor: usize) -> Option<CcLimits> {
        if major == 5 && (minor == 0 || minor == 2 || minor == 3) {
            let (b, w, r) = MAXWELL;
            return Some(CcLimits {
                max_blocks_per_multi_processor: b,
                max_warps_per_multi_processor: w,
                max_registers_per_thread: r,
            });
        }
        Some(CcLimits {
            max_blocks_per_multi_processor: lookup(
                &MAX_BLOCKS_PER_MULTI_PROCESSOR,
                major,
                minor,
            )?,
            max_warps_per_multi_processor: lookup(
                &MAX_WARPS_PER_MULTI_PROCESSOR,
                major,
                minor,
            )?,
            max_registers_per_thread: lookup(&MAX_REGISTERS_PER_THREAD, major, minor)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_35_matches_fig9() {
        // The paper's example: cudamajor=3, cudaminor=5 (Tesla K40c).
        let l = CcLimits::for_cc(3, 5).unwrap();
        assert_eq!(l.max_blocks_per_multi_processor, 16);
        assert_eq!(l.max_warps_per_multi_processor, 64);
        assert_eq!(l.max_registers_per_thread, 255);
    }

    #[test]
    fn kepler_30() {
        let l = CcLimits::for_cc(3, 0).unwrap();
        assert_eq!(l.max_blocks_per_multi_processor, 16);
        assert_eq!(l.max_warps_per_multi_processor, 64);
        assert_eq!(l.max_registers_per_thread, 63);
    }

    #[test]
    fn fermi_20() {
        let l = CcLimits::for_cc(2, 0).unwrap();
        assert_eq!(l.max_blocks_per_multi_processor, 8);
        assert_eq!(l.max_warps_per_multi_processor, 48);
        assert_eq!(l.max_registers_per_thread, 63);
    }

    #[test]
    fn tesla_1x() {
        let l = CcLimits::for_cc(1, 2).unwrap();
        assert_eq!(l.max_blocks_per_multi_processor, 8);
        assert_eq!(l.max_warps_per_multi_processor, 32);
        assert_eq!(l.max_registers_per_thread, 128);
    }

    #[test]
    fn maxwell_52() {
        let l = CcLimits::for_cc(5, 2).unwrap();
        assert_eq!(l.max_blocks_per_multi_processor, 32);
        assert_eq!(l.max_warps_per_multi_processor, 64);
        assert_eq!(l.max_registers_per_thread, 255);
    }

    #[test]
    fn sentinel_entries_are_none() {
        assert!(CcLimits::for_cc(0, 0).is_none()); // row of -1s
        assert!(CcLimits::for_cc(1, 5).is_none()); // -1 entry
        assert!(CcLimits::for_cc(3, 1).is_none()); // -1 entry
        assert!(CcLimits::for_cc(9, 0).is_none()); // out of table
        assert!(CcLimits::for_cc(3, 99).is_none()); // out of row
    }
}
