//! Device properties — the model of `cudaGetDeviceProperties` (Fig. 8 of the
//! paper) plus derived hardware facts.
//!
//! No GPU is required: known devices are tabulated from NVIDIA's published
//! specifications, with Tesla K40c (the paper's platform) reproduced
//! field-for-field from Fig. 8.

/// Queryable device properties, mirroring the fields the paper's Fig. 8
/// retrieves through `cudaGetDeviceProperties` (plus the device name and
/// peak arithmetic throughput used by the performance model).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name, e.g. `"Tesla K40c"`.
    pub name: &'static str,
    /// Maximum threads per block (1024 on Kepler).
    pub max_threads_per_block: i64,
    /// Maximum block dimension in x.
    pub max_threads_dim_x: i64,
    /// Maximum block dimension in y.
    pub max_threads_dim_y: i64,
    /// Shared memory per block, bytes (49152 on Kepler).
    pub max_shared_mem_per_block: i64,
    /// Threads per warp (32 on every CUDA device to date).
    pub warp_size: i64,
    /// 32-bit registers per block.
    pub max_regs_per_block: i64,
    /// Maximum resident threads per multiprocessor.
    pub max_threads_per_multi_processor: i64,
    /// Compute-capability major number.
    pub cuda_major: usize,
    /// Compute-capability minor number.
    pub cuda_minor: usize,
    /// 32-bit registers per multiprocessor.
    pub max_registers_per_multi_processor: i64,
    /// Shared memory per multiprocessor, bytes.
    pub max_shmem_per_multi_processor: i64,
    /// Size of `float` in bytes (the paper's `float_size`).
    pub float_size: i64,
    /// Number of multiprocessors (for whole-device throughput estimates).
    pub multi_processor_count: i64,
    /// Peak double-precision throughput in GFLOP/s (model peak for Table I).
    pub peak_dp_gflops: f64,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_sp_gflops: f64,
}

impl DeviceProps {
    /// Tesla K40c — the paper's device, Fig. 8 values verbatim.
    pub fn tesla_k40c() -> DeviceProps {
        DeviceProps {
            name: "Tesla K40c",
            max_threads_per_block: 1024,
            max_threads_dim_x: 1024,
            max_threads_dim_y: 1024,
            max_shared_mem_per_block: 49152,
            warp_size: 32,
            max_regs_per_block: 65536,
            max_threads_per_multi_processor: 2048,
            cuda_major: 3,
            cuda_minor: 5,
            max_registers_per_multi_processor: 65536,
            max_shmem_per_multi_processor: 49152,
            float_size: 4,
            multi_processor_count: 15,
            peak_dp_gflops: 1430.0,
            peak_sp_gflops: 4290.0,
        }
    }

    /// GeForce GTX 680 — the first Kepler consumer card, tuned in the
    /// paper's earlier work (reference \[3\]).
    pub fn gtx_680() -> DeviceProps {
        DeviceProps {
            name: "GeForce GTX 680",
            max_threads_per_block: 1024,
            max_threads_dim_x: 1024,
            max_threads_dim_y: 1024,
            max_shared_mem_per_block: 49152,
            warp_size: 32,
            max_regs_per_block: 65536,
            max_threads_per_multi_processor: 2048,
            cuda_major: 3,
            cuda_minor: 0,
            max_registers_per_multi_processor: 65536,
            max_shmem_per_multi_processor: 49152,
            float_size: 4,
            multi_processor_count: 8,
            peak_dp_gflops: 128.8,
            peak_sp_gflops: 3090.0,
        }
    }

    /// Tesla M2090 — Fermi, the architecture of the paper's references
    /// \[1\], \[2\].
    pub fn tesla_m2090() -> DeviceProps {
        DeviceProps {
            name: "Tesla M2090",
            max_threads_per_block: 1024,
            max_threads_dim_x: 1024,
            max_threads_dim_y: 1024,
            max_shared_mem_per_block: 49152,
            warp_size: 32,
            max_regs_per_block: 32768,
            max_threads_per_multi_processor: 1536,
            cuda_major: 2,
            cuda_minor: 0,
            max_registers_per_multi_processor: 32768,
            max_shmem_per_multi_processor: 49152,
            float_size: 4,
            multi_processor_count: 16,
            peak_dp_gflops: 665.0,
            peak_sp_gflops: 1331.0,
        }
    }

    /// GeForce GTX 980 — Maxwell, mentioned in the paper's deferred-iterator
    /// example (Fig. 2).
    pub fn gtx_980() -> DeviceProps {
        DeviceProps {
            name: "GeForce GTX 980",
            max_threads_per_block: 1024,
            max_threads_dim_x: 1024,
            max_threads_dim_y: 1024,
            max_shared_mem_per_block: 49152,
            warp_size: 32,
            max_regs_per_block: 65536,
            max_threads_per_multi_processor: 2048,
            cuda_major: 5,
            cuda_minor: 2,
            max_registers_per_multi_processor: 65536,
            max_shmem_per_multi_processor: 98304,
            float_size: 4,
            multi_processor_count: 16,
            peak_dp_gflops: 144.1,
            peak_sp_gflops: 4612.0,
        }
    }

    /// A reduced synthetic device: identical architecture shape but smaller
    /// dimension limits, so that full sweeps finish quickly in tests and
    /// benchmark defaults. Documented in DESIGN.md as the scaled stand-in
    /// for the paper's full K40c sweep.
    pub fn reduced(max_dim: i64) -> DeviceProps {
        DeviceProps {
            name: "Reduced synthetic Kepler",
            max_threads_dim_x: max_dim,
            max_threads_dim_y: max_dim,
            ..DeviceProps::tesla_k40c()
        }
    }

    /// All built-in devices.
    pub fn known_devices() -> Vec<DeviceProps> {
        vec![
            DeviceProps::tesla_k40c(),
            DeviceProps::gtx_680(),
            DeviceProps::tesla_m2090(),
            DeviceProps::gtx_980(),
        ]
    }

    /// Look up a built-in device by (case-insensitive) substring.
    pub fn by_name(name: &str) -> Option<DeviceProps> {
        let lower = name.to_lowercase();
        DeviceProps::known_devices()
            .into_iter()
            .find(|d| d.name.to_lowercase().contains(&lower))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_matches_fig8() {
        let d = DeviceProps::tesla_k40c();
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.max_threads_dim_x, 1024);
        assert_eq!(d.max_threads_dim_y, 1024);
        assert_eq!(d.max_shared_mem_per_block, 49152);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_regs_per_block, 65536);
        assert_eq!(d.max_threads_per_multi_processor, 2048);
        assert_eq!((d.cuda_major, d.cuda_minor), (3, 5));
        assert_eq!(d.max_registers_per_multi_processor, 65536);
        assert_eq!(d.max_shmem_per_multi_processor, 49152);
        assert_eq!(d.float_size, 4);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(DeviceProps::by_name("k40").unwrap().name, "Tesla K40c");
        assert_eq!(DeviceProps::by_name("680").unwrap().name, "GeForce GTX 680");
        assert!(DeviceProps::by_name("nonexistent").is_none());
    }

    #[test]
    fn reduced_device_shrinks_dims_only() {
        let d = DeviceProps::reduced(64);
        assert_eq!(d.max_threads_dim_x, 64);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!((d.cuda_major, d.cuda_minor), (3, 5));
    }

    #[test]
    fn all_devices_have_sane_invariants() {
        for d in DeviceProps::known_devices() {
            assert_eq!(d.warp_size, 32, "{}", d.name);
            assert!(d.max_threads_per_block <= d.max_threads_per_multi_processor);
            assert!(d.max_regs_per_block <= d.max_registers_per_multi_processor);
            assert!(d.max_shared_mem_per_block <= d.max_shmem_per_multi_processor);
            assert!(d.peak_sp_gflops > d.peak_dp_gflops);
        }
    }
}
