//! # beast-kernels
//!
//! Real, runnable CPU substrates autotuned with BEAST search spaces — the
//! measured side of the paper's Table I reproduction (see DESIGN.md for the
//! GPU→CPU substitution rationale):
//!
//! * [`cpu_gemm`] — naive vs cache-blocked, register-tiled GEMM, with the
//!   blocking parameters as a BEAST space pruned by cache-fit constraints;
//! * [`cholesky`] / [`trsm`] — unblocked and blocked factorizations and the
//!   triangular solves that pair with them;
//! * [`batch`] — batched execution strategies for large sets of small and
//!   medium matrices, including the element-interleaved layout that
//!   vectorizes tiny factorizations across the batch;
//! * [`spaces`] — the BEAST search spaces for both kernels;
//! * [`mod@autotune`] — the enumerate → prune → time → pick loop.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod batch;
pub mod cholesky;
pub mod cpu_gemm;
pub mod dense;
pub mod spaces;
pub mod trsm;

pub use autotune::{autotune, time_it, AutotuneOutcome, Timed};
pub use batch::{
    batched_cholesky, batched_trsm, cholesky_interleaved, trsm_interleaved, BatchParams,
    BatchStrategy, InterleavedBatch, InterleavedRhs,
};
pub use cholesky::{
    cholesky_blocked, cholesky_flops, cholesky_unblocked, reconstruct_llt,
    NotPositiveDefinite,
};
pub use cpu_gemm::{blocked_gemm, gemm_flops, naive_gemm, GemmParams};
pub use dense::Dense;
pub use spaces::{
    batched_cholesky_space, cpu_gemm_space, point_to_batch_params, point_to_gemm_params,
    CacheModel,
};
pub use trsm::{trsm_flops, trsm_left_lower, trsm_left_lt, trsm_right_lt};
