//! Timing-based autotuning: the "compile, run and benchmark" tail of the
//! BEAST recipe (Section I), for CPU kernels where we really can run every
//! surviving configuration.

use std::sync::Arc;
use std::time::{Duration, Instant};

use beast_core::error::SpaceError;
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::space::Space;
use beast_engine::compiled::Compiled;
use beast_engine::point::Point;
use beast_engine::stats::PruneStats;
use beast_engine::visit::CollectVisitor;

/// One timed configuration.
#[derive(Debug, Clone)]
pub struct Timed {
    /// The surviving point.
    pub point: Point,
    /// Best (minimum) measured duration across repetitions.
    pub duration: Duration,
}

/// Result of a timing sweep.
#[derive(Debug)]
pub struct AutotuneOutcome {
    /// All timed configurations, fastest first.
    pub timed: Vec<Timed>,
    /// Pruning statistics from the enumeration.
    pub stats: PruneStats,
    /// True if the survivor cap truncated the candidate list.
    pub truncated: bool,
}

impl AutotuneOutcome {
    /// The fastest configuration.
    pub fn best(&self) -> Option<&Timed> {
        self.timed.first()
    }
}

/// Enumerate the space's survivors (up to `cap`), time each with `runner`
/// `reps` times keeping the minimum, and return them fastest-first.
///
/// `runner` receives the surviving point and must execute the workload once,
/// returning its wall time. Taking the per-point *minimum* across
/// repetitions is the standard noise filter for timing-based autotuners.
pub fn autotune<F>(
    space: &Arc<Space>,
    cap: usize,
    reps: usize,
    mut runner: F,
) -> Result<AutotuneOutcome, SpaceError>
where
    F: FnMut(&Point) -> Duration,
{
    let plan = Plan::new(space, PlanOptions::default())?;
    let lowered = LoweredPlan::new(&plan)?;
    let compiled = Compiled::new(lowered);
    let out = compiled
        .run(CollectVisitor::new(compiled.point_names().clone(), cap))
        .map_err(|e| SpaceError::Lowering(format!("evaluation failed: {e}")))?;

    let truncated = out.visitor.truncated();
    let mut timed: Vec<Timed> = out
        .visitor
        .points
        .into_iter()
        .map(|point| {
            let mut best = Duration::MAX;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let d = runner(&point);
                // Allow the runner to report its own duration (e.g. to
                // exclude setup); if it reports zero, fall back to wall time.
                let measured = if d == Duration::ZERO { t0.elapsed() } else { d };
                best = best.min(measured);
            }
            Timed { point, duration: best }
        })
        .collect();
    timed.sort_by_key(|t| t.duration);

    Ok(AutotuneOutcome { timed, stats: out.stats, truncated })
}

/// Convenience: time a closure's execution.
pub fn time_it<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;

    #[test]
    fn autotune_orders_by_duration() {
        // Synthetic space: parameter x in 1..6, "runtime" = |x - 3| ms-ish.
        let space = Space::builder("synthetic")
            .range("x", 1, 6)
            .build()
            .unwrap();
        let out = autotune(&space, 100, 2, |p| {
            let x = p.get_int("x");
            Duration::from_micros(10 + (x - 3).unsigned_abs() * 50)
        })
        .unwrap();
        assert_eq!(out.timed.len(), 5);
        assert_eq!(out.best().unwrap().point.get_int("x"), 3);
        assert!(!out.truncated);
        // Sorted ascending.
        for w in out.timed.windows(2) {
            assert!(w[0].duration <= w[1].duration);
        }
    }

    #[test]
    fn cap_truncates_and_reports() {
        let space = Space::builder("big")
            .range("x", 0, 1000)
            .build()
            .unwrap();
        let out = autotune(&space, 10, 1, |_| Duration::from_micros(1)).unwrap();
        assert_eq!(out.timed.len(), 10);
        assert!(out.truncated);
    }

    #[test]
    fn pruned_points_are_not_timed() {
        let space = Space::builder("pruned")
            .range("x", 0, 10)
            .constraint("odd", ConstraintClass::Soft, (var("x") % 2).ne(0))
            .build()
            .unwrap();
        let mut calls = 0;
        let out = autotune(&space, 100, 1, |_| {
            calls += 1;
            Duration::from_micros(1)
        })
        .unwrap();
        assert_eq!(out.timed.len(), 5);
        assert_eq!(calls, 5);
        assert_eq!(out.stats.pruned[0], 5);
    }

    #[test]
    fn time_it_measures() {
        let d = time_it(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(2));
    }
}
