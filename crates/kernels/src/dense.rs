//! Dense column-major `f64` matrices for the CPU kernels.
//!
//! A deliberately small, self-contained type: the kernels crate measures
//! *kernel* performance, so the container stays out of the way (flat `Vec`,
//! inlined accessors, explicit leading dimension equal to the row count).

use rand::Rng;

/// Dense column-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Dense {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Construct from raw column-major data (must have `rows * cols`
    /// elements).
    pub fn from_raw(rows: usize, cols: usize, data: Vec<f64>) -> Dense {
        assert_eq!(data.len(), rows * cols);
        Dense { rows, cols, data }
    }

    /// Matrix with uniform random entries in `[-1, 1)`.
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Dense {
        Dense {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// A random symmetric positive-definite matrix: `M Mᵀ + n·I`.
    pub fn random_spd<R: Rng>(n: usize, rng: &mut R) -> Dense {
        let m = Dense::random(n, n, rng);
        let mut a = Dense::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for l in 0..n {
                    s += m.get(i, l) * m.get(j, l);
                }
                a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
            }
        }
        a
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element (i, j).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i + j * self.rows]
    }

    /// Set element (i, j).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i + j * self.rows] = v;
    }

    /// Add to element (i, j).
    #[inline(always)]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i + j * self.rows] += v;
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One column as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// One column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Max-norm distance to another matrix of the same shape.
    pub fn max_dist(&self, other: &Dense) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_accessors() {
        let mut a = Dense::zeros(3, 2);
        a.set(2, 1, 5.0);
        a.add(2, 1, 1.5);
        assert_eq!(a.get(2, 1), 6.5);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.col(1)[2], 6.5);
    }

    #[test]
    fn spd_matrices_are_symmetric_and_diagonally_dominant() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Dense::random_spd(8, &mut rng);
        for i in 0..8 {
            assert!(a.get(i, i) >= 8.0 - 1e-9, "diagonal too small");
            for j in 0..8 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norms() {
        let mut a = Dense::zeros(2, 2);
        a.set(0, 0, 3.0);
        a.set(1, 1, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = Dense::zeros(2, 2);
        assert_eq!(a.max_dist(&b), 4.0);
    }
}
