//! CPU GEMM: a naive baseline and a cache-blocked, register-tiled variant
//! whose blocking parameters form a BEAST search space.
//!
//! This is the Table I substrate for the "GEMM" row: the paper tunes a GPU
//! kernel against a model peak; here the same enumerate → prune → time loop
//! tunes the blocked kernel's `(tile_m, tile_n, tile_k, unroll)` against the
//! naive triple loop, on real hardware, with the same BEAST machinery.

use crate::dense::Dense;

/// Blocking parameters for [`blocked_gemm`]; one point of the CPU GEMM
/// search space (see [`crate::spaces::cpu_gemm_space`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmParams {
    /// Rows of C per cache block.
    pub tile_m: usize,
    /// Columns of C per cache block.
    pub tile_n: usize,
    /// Inner dimension per cache block.
    pub tile_k: usize,
    /// Register-tile width in columns (micro-kernel unroll).
    pub unroll: usize,
}

impl GemmParams {
    /// A sensible default for small L1/L2 caches.
    pub fn default_params() -> GemmParams {
        GemmParams { tile_m: 64, tile_n: 64, tile_k: 64, unroll: 4 }
    }
}

/// The naive baseline: textbook i-j-k triple loop. Strided access to B makes
/// this cache-hostile for large sizes — exactly the behavior the tuned
/// kernel beats.
pub fn naive_gemm(a: &Dense, b: &Dense, c: &mut Dense) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a.get(i, l) * b.get(l, j);
            }
            c.add(i, j, s);
        }
    }
}

/// Cache-blocked GEMM: loops are tiled `(tile_m, tile_n, tile_k)` and the
/// innermost kernel processes `unroll` columns of a C tile at a time with
/// column-contiguous (stride-1) access to A and C.
pub fn blocked_gemm(params: &GemmParams, a: &Dense, b: &Dense, c: &mut Dense) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    let GemmParams { tile_m, tile_n, tile_k, unroll } = *params;
    assert!(tile_m > 0 && tile_n > 0 && tile_k > 0 && unroll > 0);

    for j0 in (0..n).step_by(tile_n) {
        let j1 = (j0 + tile_n).min(n);
        for l0 in (0..k).step_by(tile_k) {
            let l1 = (l0 + tile_k).min(k);
            for i0 in (0..m).step_by(tile_m) {
                let i1 = (i0 + tile_m).min(m);
                // Micro-kernel: `unroll` columns of C at a time; the l-loop
                // is outermost within the tile so each B element is reused
                // across the whole column strip of A.
                let mut j = j0;
                while j + unroll <= j1 {
                    for l in l0..l1 {
                        for u in 0..unroll {
                            let blj = b.get(l, j + u);
                            saxpy_col(a, c, i0, i1, l, j + u, blj);
                        }
                    }
                    j += unroll;
                }
                // Cleanup columns.
                for jj in j..j1 {
                    for l in l0..l1 {
                        let blj = b.get(l, jj);
                        saxpy_col(a, c, i0, i1, l, jj, blj);
                    }
                }
            }
        }
    }
}

/// `C[i0..i1, j] += alpha * A[i0..i1, l]` on contiguous column slices — the
/// stride-1 inner loop the compiler vectorizes.
#[inline(always)]
fn saxpy_col(a: &Dense, c: &mut Dense, i0: usize, i1: usize, l: usize, j: usize, alpha: f64) {
    let ac = &a.col(l)[i0..i1];
    let cc = &mut c.col_mut(j)[i0..i1];
    for (ci, ai) in cc.iter_mut().zip(ac) {
        *ci += alpha * ai;
    }
}

/// FLOP count of one `m×n×k` GEMM (multiply-add counted as two).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(params: &GemmParams, m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Dense::random(m, k, &mut rng);
        let b = Dense::random(k, n, &mut rng);
        let mut c_ref = Dense::zeros(m, n);
        naive_gemm(&a, &b, &mut c_ref);
        let mut c = Dense::zeros(m, n);
        blocked_gemm(params, &a, &b, &mut c);
        let d = c.max_dist(&c_ref);
        assert!(d < 1e-10 * k as f64, "params {params:?} size {m}x{n}x{k}: dist {d}");
    }

    #[test]
    fn blocked_matches_naive_square() {
        check(&GemmParams::default_params(), 64, 64, 64, 1);
    }

    #[test]
    fn blocked_matches_naive_awkward_sizes() {
        // Sizes that do NOT divide by the tiles: exercises all cleanup paths.
        for &(m, n, k) in &[(33, 17, 29), (1, 5, 7), (65, 63, 2), (10, 100, 3)] {
            check(&GemmParams { tile_m: 16, tile_n: 8, tile_k: 8, unroll: 3 }, m, n, k, 2);
        }
    }

    #[test]
    fn blocked_matches_naive_extreme_params() {
        // Tiles larger than the matrix, unroll of 1, tiny tiles.
        check(&GemmParams { tile_m: 512, tile_n: 512, tile_k: 512, unroll: 1 }, 24, 24, 24, 3);
        check(&GemmParams { tile_m: 1, tile_n: 1, tile_k: 1, unroll: 1 }, 12, 9, 7, 4);
        check(&GemmParams { tile_m: 8, tile_n: 8, tile_k: 8, unroll: 8 }, 32, 32, 32, 5);
    }

    #[test]
    fn accumulates_into_c() {
        // GEMM semantics: C += A*B, not overwrite.
        let mut rng = StdRng::seed_from_u64(6);
        let a = Dense::random(8, 8, &mut rng);
        let b = Dense::random(8, 8, &mut rng);
        let mut c1 = Dense::random(8, 8, &mut rng);
        let mut c2 = c1.clone();
        naive_gemm(&a, &b, &mut c1);
        blocked_gemm(&GemmParams::default_params(), &a, &b, &mut c2);
        assert!(c1.max_dist(&c2) < 1e-12);
    }

    #[test]
    fn flops_count() {
        assert_eq!(gemm_flops(10, 20, 30), 12000);
    }
}
