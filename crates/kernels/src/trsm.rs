//! Triangular solves — the second member of the paper's batched kernel pair
//! (reference \[5\]: "batched Cholesky factorization and triangular solve").

use crate::dense::Dense;

/// Solve `L · X = B` in place (`B` becomes `X`), with `L` lower triangular
/// (its strict upper triangle is ignored). Forward substitution, one
/// right-hand-side column at a time with stride-1 inner updates.
pub fn trsm_left_lower(l: &Dense, b: &mut Dense) {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(b.rows(), n);
    for j in 0..b.cols() {
        for i in 0..n {
            let xi = b.get(i, j) / l.get(i, i);
            b.set(i, j, xi);
            // Eliminate below: stride-1 down the column.
            for r in i + 1..n {
                let v = b.get(r, j) - l.get(r, i) * xi;
                b.set(r, j, v);
            }
        }
    }
}

/// Solve `X · Lᵀ = B` in place (`B` becomes `X`), with `L` lower triangular —
/// the panel solve of blocked Cholesky (`trsm(R, L, T, N)` in BLAS terms).
pub fn trsm_right_lt(l: &Dense, b: &mut Dense) {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(b.cols(), n);
    let m = b.rows();
    for j in 0..n {
        let d = l.get(j, j);
        for i in 0..m {
            b.set(i, j, b.get(i, j) / d);
        }
        for c in j + 1..n {
            let f = l.get(c, j);
            for i in 0..m {
                let v = b.get(i, c) - f * b.get(i, j);
                b.set(i, c, v);
            }
        }
    }
}

/// Solve `Lᵀ · X = B` in place — backward substitution, used to complete a
/// Cholesky linear solve (`A x = b` ⇒ `L y = b`, `Lᵀ x = y`).
pub fn trsm_left_lt(l: &Dense, b: &mut Dense) {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(b.rows(), n);
    for j in 0..b.cols() {
        for i in (0..n).rev() {
            let mut s = b.get(i, j);
            for r in i + 1..n {
                s -= l.get(r, i) * b.get(r, j);
            }
            b.set(i, j, s / l.get(i, i));
        }
    }
}

/// FLOP count of a triangular solve with `n×n` triangle and `nrhs` columns.
pub fn trsm_flops(n: usize, nrhs: usize) -> u64 {
    (n * n * nrhs) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::cholesky_unblocked;
    use crate::cpu_gemm::naive_gemm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lower_of(a: &Dense) -> Dense {
        let n = a.rows();
        let mut l = Dense::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l.set(i, j, a.get(i, j));
            }
        }
        l
    }

    #[test]
    fn left_lower_solves() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spd = Dense::random_spd(8, &mut rng);
        cholesky_unblocked(&mut spd).unwrap();
        let l = lower_of(&spd);
        let x_true = Dense::random(8, 3, &mut rng);
        // b = L * x_true
        let mut b = Dense::zeros(8, 3);
        naive_gemm(&l, &x_true, &mut b);
        trsm_left_lower(&l, &mut b);
        assert!(b.max_dist(&x_true) < 1e-9);
    }

    #[test]
    fn left_lt_solves() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut spd = Dense::random_spd(8, &mut rng);
        cholesky_unblocked(&mut spd).unwrap();
        let l = lower_of(&spd);
        // lt = L^T
        let mut lt = Dense::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                lt.set(i, j, l.get(j, i));
            }
        }
        let x_true = Dense::random(8, 2, &mut rng);
        let mut b = Dense::zeros(8, 2);
        naive_gemm(&lt, &x_true, &mut b);
        trsm_left_lt(&l, &mut b);
        assert!(b.max_dist(&x_true) < 1e-9);
    }

    #[test]
    fn right_lt_solves() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut spd = Dense::random_spd(6, &mut rng);
        cholesky_unblocked(&mut spd).unwrap();
        let l = lower_of(&spd);
        let mut lt = Dense::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                lt.set(i, j, l.get(j, i));
            }
        }
        let x_true = Dense::random(4, 6, &mut rng);
        // b = X * L^T
        let mut b = Dense::zeros(4, 6);
        naive_gemm(&x_true, &lt, &mut b);
        trsm_right_lt(&l, &mut b);
        assert!(b.max_dist(&x_true) < 1e-9);
    }

    #[test]
    fn full_cholesky_solve_roundtrip() {
        // Solve A x = b through L L^T.
        let mut rng = StdRng::seed_from_u64(6);
        let a = Dense::random_spd(10, &mut rng);
        let x_true = Dense::random(10, 1, &mut rng);
        let mut b = Dense::zeros(10, 1);
        naive_gemm(&a, &x_true, &mut b);
        let mut f = a.clone();
        cholesky_unblocked(&mut f).unwrap();
        let l = lower_of(&f);
        trsm_left_lower(&l, &mut b);
        trsm_left_lt(&l, &mut b);
        assert!(b.max_dist(&x_true) < 1e-8);
    }

    #[test]
    fn flops_model() {
        assert_eq!(trsm_flops(4, 2), 32);
    }
}
