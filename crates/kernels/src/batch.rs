//! Batched kernel execution — the substrate behind Table I's "batched
//! factorizations" rows (paper references \[5\], \[34\]–\[36\]: very small and
//! medium matrices in large batches).
//!
//! Two execution strategies, selectable by the autotuner:
//!
//! * **per-matrix** — factor each matrix independently (unblocked or
//!   blocked), optionally across a pool of threads in chunks;
//! * **interleaved** — pack `width` matrices element-interleaved
//!   (`data[(i + j·n)·width + w]`) so every inner loop of the factorization
//!   sweeps stride-1 across the batch and vectorizes; this is the layout
//!   trick real batched-BLAS implementations use for very small matrices,
//!   and the source of the large small-size speedups on a single core.

use std::thread;

use crate::cholesky::{cholesky_blocked, cholesky_unblocked, NotPositiveDefinite};
use crate::cpu_gemm::GemmParams;
use crate::dense::Dense;
use crate::trsm::trsm_left_lower;

/// How a batched factorization runs; one point of the batched-Cholesky
/// search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Factor each matrix on its own, unblocked.
    PerMatrixUnblocked,
    /// Factor each matrix on its own with the given panel width.
    PerMatrixBlocked {
        /// Cholesky panel width.
        block: usize,
    },
    /// Pack `width` matrices interleaved and factor them together.
    Interleaved {
        /// Number of matrices per interleaved pack.
        width: usize,
    },
}

/// Parameters of a batched run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchParams {
    /// Execution strategy.
    pub strategy: BatchStrategy,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Matrices handed to a worker at a time.
    pub chunk: usize,
}

impl BatchParams {
    /// The naive baseline: serial, unblocked, one matrix at a time.
    pub fn naive() -> BatchParams {
        BatchParams { strategy: BatchStrategy::PerMatrixUnblocked, threads: 1, chunk: 1 }
    }
}

/// `width` matrices of order `n`, element-interleaved.
#[derive(Debug, Clone)]
pub struct InterleavedBatch {
    n: usize,
    width: usize,
    data: Vec<f64>,
}

impl InterleavedBatch {
    /// Pack a slice of equally-sized square matrices. Each source column is
    /// scattered with a stride-`width` sweep, the transpose-free fast path.
    pub fn pack(mats: &[Dense]) -> InterleavedBatch {
        assert!(!mats.is_empty());
        let n = mats[0].rows();
        let width = mats.len();
        let mut data = vec![0.0; n * n * width];
        for (w, m) in mats.iter().enumerate() {
            assert_eq!((m.rows(), m.cols()), (n, n));
            let src = m.data();
            for (dst, &v) in data[w..].iter_mut().step_by(width).zip(src) {
                *dst = v;
            }
        }
        InterleavedBatch { n, width, data }
    }

    /// Unpack back into per-matrix storage.
    pub fn unpack(&self) -> Vec<Dense> {
        let elems = self.n * self.n;
        (0..self.width)
            .map(|w| {
                let mut buf = Vec::with_capacity(elems);
                buf.extend(self.data[w..].iter().step_by(self.width).take(elems));
                Dense::from_raw(self.n, self.n, buf)
            })
            .collect()
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Batch width.
    pub fn width(&self) -> usize {
        self.width
    }

}

/// Cholesky-factor every matrix of an interleaved pack simultaneously: the
/// classic unblocked loop with every scalar operation widened to a stride-1
/// sweep across the batch.
pub fn cholesky_interleaved(
    batch: &mut InterleavedBatch,
) -> Result<(), NotPositiveDefinite> {
    let n = batch.n;
    let width = batch.width;
    let data = &mut batch.data[..];
    // One reciprocal-pivot lane reused across the column; no per-element
    // allocation anywhere in the factorization.
    let mut inv_piv = vec![0.0; width];
    for j in 0..n {
        // d_w = a[j,j] - Σ_l a[j,l]²  (stride-1 sweeps across the batch)
        {
            let (before, rest) = data.split_at_mut((j + j * n) * width);
            let diag = &mut rest[..width];
            for l in 0..j {
                let row = &before[(j + l * n) * width..(j + l * n) * width + width];
                for (d, &v) in diag.iter_mut().zip(row) {
                    *d -= v * v;
                }
            }
            for (d, ip) in diag.iter_mut().zip(inv_piv.iter_mut()) {
                if *d <= 0.0 {
                    return Err(NotPositiveDefinite { pivot: j });
                }
                *d = d.sqrt();
                *ip = 1.0 / *d;
            }
        }

        // Column update: a[i,j] = (a[i,j] - Σ_l a[i,l]·a[j,l]) / a[j,j],
        // every operation a stride-1 lane across the batch.
        for i in j + 1..n {
            let col_base = (i + j * n) * width;
            let (before, target) = data.split_at_mut(col_base);
            let lane = &mut target[..width];
            for l in 0..j {
                let bi = (i + l * n) * width;
                let bj = (j + l * n) * width;
                let row_i = &before[bi..bi + width];
                let row_j = &before[bj..bj + width];
                for ((s, &a), &b) in lane.iter_mut().zip(row_i).zip(row_j) {
                    *s -= a * b;
                }
            }
            for (s, &ip) in lane.iter_mut().zip(&inv_piv) {
                *s *= ip;
            }
        }
    }
    Ok(())
}

/// A batch of right-hand-side vectors (one per matrix), element-interleaved
/// like [`InterleavedBatch`]: `data[i * width + w]` is element `i` of
/// vector `w`.
#[derive(Debug, Clone)]
pub struct InterleavedRhs {
    n: usize,
    width: usize,
    data: Vec<f64>,
}

impl InterleavedRhs {
    /// Pack per-vector storage (`vecs[w][i]`).
    pub fn pack(vecs: &[Vec<f64>]) -> InterleavedRhs {
        assert!(!vecs.is_empty());
        let n = vecs[0].len();
        let width = vecs.len();
        let mut data = vec![0.0; n * width];
        for (w, v) in vecs.iter().enumerate() {
            assert_eq!(v.len(), n);
            for (i, &x) in v.iter().enumerate() {
                data[i * width + w] = x;
            }
        }
        InterleavedRhs { n, width, data }
    }

    /// Unpack back to per-vector storage.
    pub fn unpack(&self) -> Vec<Vec<f64>> {
        (0..self.width)
            .map(|w| (0..self.n).map(|i| self.data[i * self.width + w]).collect())
            .collect()
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Batch width.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Forward-substitute `L_w · x_w = b_w` for every lane of an interleaved
/// batch simultaneously (`ls` holds the lower triangles, e.g. from
/// [`cholesky_interleaved`]); every inner operation is a stride-1 sweep
/// across the batch. This is the "solve" half of the paper's batched
/// Cholesky-and-triangular-solve pair (reference \[5\]).
pub fn trsm_interleaved(ls: &InterleavedBatch, rhs: &mut InterleavedRhs) {
    let n = ls.n;
    let width = ls.width;
    assert_eq!(rhs.n, n, "dimension mismatch");
    assert_eq!(rhs.width, width, "batch width mismatch");
    for i in 0..n {
        // x_i = b_i / L[i,i]  (lane-wise)
        {
            let diag_base = (i + i * n) * width;
            let (xs, _) = rhs.data.split_at_mut((i + 1) * width);
            let xi = &mut xs[i * width..];
            for (x, &d) in xi.iter_mut().zip(&ls.data[diag_base..diag_base + width]) {
                *x /= d;
            }
        }
        // b_r -= L[r,i] * x_i for r > i (lane-wise)
        let (head, tail) = rhs.data.split_at_mut((i + 1) * width);
        let xi = &head[i * width..];
        for r in i + 1..n {
            let l_base = (r + i * n) * width;
            let lane = &mut tail[(r - i - 1) * width..(r - i) * width];
            let lrow = &ls.data[l_base..l_base + width];
            for ((b, &l), &x) in lane.iter_mut().zip(lrow).zip(xi) {
                *b -= l * x;
            }
        }
    }
}

/// Factor a batch of SPD matrices in place under the given parameters.
pub fn batched_cholesky(
    mats: &mut [Dense],
    params: &BatchParams,
    gemm: &GemmParams,
) -> Result<(), NotPositiveDefinite> {
    match params.strategy {
        BatchStrategy::Interleaved { width } => {
            let width = width.max(1);
            // Thread-parallel over packs of `width` matrices.
            run_chunked(mats, params.threads, width, |pack| {
                let mut batch = InterleavedBatch::pack(pack);
                cholesky_interleaved(&mut batch)?;
                for (dst, src) in pack.iter_mut().zip(batch.unpack()) {
                    *dst = src;
                }
                Ok(())
            })
        }
        BatchStrategy::PerMatrixUnblocked => {
            run_chunked(mats, params.threads, params.chunk.max(1), |chunk| {
                for m in chunk {
                    cholesky_unblocked(m)?;
                }
                Ok(())
            })
        }
        BatchStrategy::PerMatrixBlocked { block } => {
            let block = block.max(1);
            run_chunked(mats, params.threads, params.chunk.max(1), |chunk| {
                for m in chunk {
                    cholesky_blocked(m, block, gemm)?;
                }
                Ok(())
            })
        }
    }
}

/// Batched forward triangular solve: `L_i · X_i = B_i` for every pair.
pub fn batched_trsm(
    ls: &[Dense],
    bs: &mut [Dense],
    threads: usize,
    chunk: usize,
) -> Result<(), NotPositiveDefinite> {
    assert_eq!(ls.len(), bs.len());
    // Pair the matrices by index for chunked dispatch.
    let mut pairs: Vec<(usize, &mut Dense)> = bs.iter_mut().enumerate().collect();
    run_chunked(&mut pairs, threads, chunk.max(1), |chunk| {
        for (i, b) in chunk {
            trsm_left_lower(&ls[*i], b);
        }
        Ok(())
    })
}

/// Split `items` into chunks and run `f` over them on up to `threads`
/// workers (scoped threads; serial fast path for one thread).
fn run_chunked<T: Send, F>(
    items: &mut [T],
    threads: usize,
    chunk: usize,
    f: F,
) -> Result<(), NotPositiveDefinite>
where
    F: Fn(&mut [T]) -> Result<(), NotPositiveDefinite> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        for c in items.chunks_mut(chunk) {
            f(c)?;
        }
        return Ok(());
    }
    thread::scope(|scope| {
        let chunks: Vec<&mut [T]> = items.chunks_mut(chunk).collect();
        let n_workers = threads.min(chunks.len().max(1));
        // Distribute chunks round-robin across workers.
        let mut per_worker: Vec<Vec<&mut [T]>> = (0..n_workers).map(|_| Vec::new()).collect();
        for (i, c) in chunks.into_iter().enumerate() {
            per_worker[i % n_workers].push(c);
        }
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|mine| {
                let f = &f;
                scope.spawn(move || {
                    for c in mine {
                        f(c)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Result<Vec<()>, NotPositiveDefinite>>()
            .map(|_| ())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::reconstruct_llt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd_batch(count: usize, n: usize, seed: u64) -> Vec<Dense> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| Dense::random_spd(n, &mut rng)).collect()
    }

    fn check_factored(original: &[Dense], factored: &[Dense]) {
        for (a0, f) in original.iter().zip(factored) {
            let rec = reconstruct_llt(f);
            let n = a0.rows();
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (rec.get(i, j) - a0.get(i, j)).abs() < 1e-8,
                        "bad factorization"
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_pack_roundtrip() {
        let mats = spd_batch(7, 5, 1);
        let batch = InterleavedBatch::pack(&mats);
        assert_eq!(batch.n(), 5);
        assert_eq!(batch.width(), 7);
        let back = batch.unpack();
        for (a, b) in mats.iter().zip(&back) {
            assert!(a.max_dist(b) < 1e-15);
        }
    }

    #[test]
    fn interleaved_cholesky_matches_per_matrix() {
        let mats = spd_batch(9, 8, 2);
        let mut batch = InterleavedBatch::pack(&mats);
        cholesky_interleaved(&mut batch).unwrap();
        let factored = batch.unpack();
        check_factored(&mats, &factored);
    }

    #[test]
    fn all_strategies_factor_correctly() {
        let strategies = [
            BatchStrategy::PerMatrixUnblocked,
            BatchStrategy::PerMatrixBlocked { block: 4 },
            BatchStrategy::Interleaved { width: 4 },
            BatchStrategy::Interleaved { width: 100 }, // wider than batch
        ];
        for strategy in strategies {
            for threads in [1, 3] {
                let original = spd_batch(10, 12, 3);
                let mut mats = original.clone();
                let params = BatchParams { strategy, threads, chunk: 3 };
                batched_cholesky(&mut mats, &params, &GemmParams::default_params()).unwrap();
                check_factored(&original, &mats);
            }
        }
    }

    #[test]
    fn batched_trsm_solves() {
        use crate::cpu_gemm::naive_gemm;
        let mut rng = StdRng::seed_from_u64(4);
        let count = 6;
        let n = 10;
        let mut ls = spd_batch(count, n, 5);
        for l in &mut ls {
            cholesky_unblocked(l).unwrap();
        }
        let xs: Vec<Dense> = (0..count).map(|_| Dense::random(n, 2, &mut rng)).collect();
        let mut bs: Vec<Dense> = ls
            .iter()
            .zip(&xs)
            .map(|(l, x)| {
                // Zero the strict upper triangle for the multiply.
                let mut lo = Dense::zeros(n, n);
                for j in 0..n {
                    for i in j..n {
                        lo.set(i, j, l.get(i, j));
                    }
                }
                let mut b = Dense::zeros(n, 2);
                naive_gemm(&lo, x, &mut b);
                b
            })
            .collect();
        batched_trsm(&ls, &mut bs, 2, 2).unwrap();
        for (b, x) in bs.iter().zip(&xs) {
            assert!(b.max_dist(x) < 1e-9);
        }
    }

    #[test]
    fn interleaved_rhs_roundtrip() {
        let vecs: Vec<Vec<f64>> = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let packed = InterleavedRhs::pack(&vecs);
        assert_eq!(packed.n(), 3);
        assert_eq!(packed.width(), 2);
        assert_eq!(packed.unpack(), vecs);
    }

    #[test]
    fn interleaved_trsm_matches_per_matrix_solve() {
        let mats = spd_batch(6, 9, 11);
        // Factor interleaved.
        let mut ls = InterleavedBatch::pack(&mats);
        cholesky_interleaved(&mut ls).unwrap();
        // Build RHS b_w = L_w * x_w for known x.
        let factored = ls.unpack();
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|w| (0..9).map(|i| (w + i) as f64 * 0.25 - 1.0).collect())
            .collect();
        let bs: Vec<Vec<f64>> = factored
            .iter()
            .zip(&xs)
            .map(|(l, x)| {
                (0..9)
                    .map(|i| (0..=i).map(|j| l.get(i, j) * x[j]).sum())
                    .collect()
            })
            .collect();
        let mut rhs = InterleavedRhs::pack(&bs);
        trsm_interleaved(&ls, &mut rhs);
        for (got, want) in rhs.unpack().iter().zip(&xs) {
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-9, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn non_spd_in_batch_reported() {
        let mut mats = spd_batch(3, 4, 6);
        mats[1] = Dense::zeros(4, 4); // not SPD
        let err = batched_cholesky(
            &mut mats,
            &BatchParams::naive(),
            &GemmParams::default_params(),
        )
        .unwrap_err();
        assert_eq!(err.pivot, 0);
    }
}
