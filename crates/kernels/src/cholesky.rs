//! Cholesky factorization (`A = L·Lᵀ`, lower triangular) — unblocked and
//! blocked variants, the substrate behind the paper's Table I "batched
//! factorizations" rows (references \[5\], \[34\]–\[36\]: batched Cholesky for
//! large sets of small and medium matrices).

use crate::cpu_gemm::{blocked_gemm, GemmParams};
use crate::dense::Dense;
use crate::trsm::trsm_right_lt;

/// Error: the matrix is not positive definite (non-positive pivot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Unblocked right-looking Cholesky: factor `A` in place into its lower
/// triangle (the strict upper triangle is left untouched). The textbook
/// LAPACK `dpotf2` loop.
pub fn cholesky_unblocked(a: &mut Dense) -> Result<(), NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(n, a.cols());
    for j in 0..n {
        let mut d = a.get(j, j);
        for l in 0..j {
            let v = a.get(j, l);
            d -= v * v;
        }
        if d <= 0.0 {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let d = d.sqrt();
        a.set(j, j, d);
        for i in j + 1..n {
            let mut s = a.get(i, j);
            for l in 0..j {
                s -= a.get(i, l) * a.get(j, l);
            }
            a.set(i, j, s / d);
        }
    }
    Ok(())
}

/// Blocked right-looking Cholesky (`dpotrf` structure): factor the diagonal
/// block unblocked, solve the panel with a triangular solve, update the
/// trailing matrix with a blocked GEMM. `block` is the panel width; the
/// trailing update reuses the tuned GEMM parameters.
pub fn cholesky_blocked(
    a: &mut Dense,
    block: usize,
    gemm: &GemmParams,
) -> Result<(), NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(n, a.cols());
    assert!(block > 0);
    let mut j = 0;
    while j < n {
        let jb = block.min(n - j);

        // Factor the jb×jb diagonal block in place (unblocked).
        let mut diag = Dense::zeros(jb, jb);
        for jj in 0..jb {
            for ii in jj..jb {
                diag.set(ii, jj, a.get(j + ii, j + jj));
            }
        }
        cholesky_unblocked(&mut diag).map_err(|e| NotPositiveDefinite { pivot: j + e.pivot })?;
        for jj in 0..jb {
            for ii in jj..jb {
                a.set(j + ii, j + jj, diag.get(ii, jj));
            }
        }

        let rest = n - j - jb;
        if rest > 0 {
            // Panel: A[j+jb.., j..j+jb] ← A[j+jb.., j..j+jb] · L_diag^{-T}.
            let mut panel = Dense::zeros(rest, jb);
            for jj in 0..jb {
                for ii in 0..rest {
                    panel.set(ii, jj, a.get(j + jb + ii, j + jj));
                }
            }
            trsm_right_lt(&diag, &mut panel);

            for jj in 0..jb {
                for ii in 0..rest {
                    a.set(j + jb + ii, j + jj, panel.get(ii, jj));
                }
            }

            // Trailing update: A[j+jb.., j+jb..] -= panel · panelᵀ (lower
            // triangle only matters; we update the full block with GEMM and
            // rely on later iterations reading only the lower part).
            let mut panel_t = Dense::zeros(jb, rest);
            for jj in 0..jb {
                for ii in 0..rest {
                    panel_t.set(jj, ii, -panel.get(ii, jj));
                }
            }
            let mut update = Dense::zeros(rest, rest);
            blocked_gemm(gemm, &panel, &panel_t, &mut update);
            for jj in 0..rest {
                for ii in jj..rest {
                    a.add(j + jb + ii, j + jb + jj, update.get(ii, jj));
                }
            }
        }
        j += jb;
    }
    Ok(())
}

/// Reconstruct `L·Lᵀ` from the lower triangle of a factored matrix, for
/// verification.
pub fn reconstruct_llt(a: &Dense) -> Dense {
    let n = a.rows();
    let mut out = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..=i.min(j) {
                s += a.get(i, l) * a.get(j, l);
            }
            out.set(i, j, s);
        }
    }
    out
}

/// FLOP count of one n×n Cholesky factorization (n³/3 model).
pub fn cholesky_flops(n: usize) -> u64 {
    (n as u64).pow(3) / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unblocked_factors_spd() {
        let mut rng = StdRng::seed_from_u64(1);
        let a0 = Dense::random_spd(16, &mut rng);
        let mut a = a0.clone();
        cholesky_unblocked(&mut a).unwrap();
        let rec = reconstruct_llt(&a);
        // Compare lower triangles of the reconstruction with the original.
        for j in 0..16 {
            for i in j..16 {
                assert!((rec.get(i, j) - a0.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 5, 16, 33, 64, 100] {
            let a0 = Dense::random_spd(n, &mut rng);
            let mut a_un = a0.clone();
            cholesky_unblocked(&mut a_un).unwrap();
            for block in [1usize, 4, 8, 32, 128] {
                let mut a_bl = a0.clone();
                cholesky_blocked(&mut a_bl, block, &GemmParams::default_params()).unwrap();
                // Compare lower triangles only.
                let mut dist: f64 = 0.0;
                for j in 0..n {
                    for i in j..n {
                        dist = dist.max((a_un.get(i, j) - a_bl.get(i, j)).abs());
                    }
                }
                assert!(dist < 1e-8, "n={n} block={block}: dist {dist}");
            }
        }
    }

    #[test]
    fn non_spd_rejected() {
        let mut a = Dense::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 1.0);
        let err = cholesky_unblocked(&mut a).unwrap_err();
        assert_eq!(err.pivot, 1);
        let mut a2 = Dense::zeros(2, 2); // zero matrix: pivot 0 fails
        let err = cholesky_blocked(&mut a2, 1, &GemmParams::default_params()).unwrap_err();
        assert_eq!(err.pivot, 0);
    }

    #[test]
    fn flops_model() {
        assert_eq!(cholesky_flops(3), 9);
        assert_eq!(cholesky_flops(30), 9000);
    }
}
