//! BEAST search spaces for the CPU kernels — the same declarative
//! machinery as the GEMM model problem, applied to the substrates that Table
//! I's measured rows run on.

use std::sync::Arc;

use beast_core::constraint::ConstraintClass;
use beast_core::error::SpaceError;
use beast_core::expr::var;
use beast_core::space::Space;
use beast_engine::point::Point;

use crate::batch::{BatchParams, BatchStrategy};
use crate::cpu_gemm::GemmParams;

/// Cache sizes used by the CPU GEMM space's pruning constraints.
#[derive(Debug, Clone, Copy)]
pub struct CacheModel {
    /// L1 data cache, bytes.
    pub l1_bytes: i64,
    /// L2 cache, bytes.
    pub l2_bytes: i64,
}

impl CacheModel {
    /// A typical desktop core: 32 KiB L1d, 1 MiB L2.
    pub fn typical() -> CacheModel {
        CacheModel { l1_bytes: 32 * 1024, l2_bytes: 1024 * 1024 }
    }
}

/// The CPU GEMM blocking space: tiles and micro-kernel unroll, pruned by
/// cache-fit constraints (the CPU analog of the paper's occupancy pruning:
/// derived from hardware parameters, not guessed).
pub fn cpu_gemm_space(cache: CacheModel) -> Result<Arc<Space>, SpaceError> {
    Space::builder("cpu_gemm_blocking")
        .constant("l1_bytes", cache.l1_bytes)
        .constant("l2_bytes", cache.l2_bytes)
        .constant("elem", 8)
        .range_step("tile_m", 16, 257, 16)
        .range_step("tile_n", 16, 257, 16)
        .range_step("tile_k", 16, 257, 16)
        .list("unroll", [1i64, 2, 4, 8])
        // Working set of one tile iteration: an A panel and a B panel.
        .derived(
            "tile_bytes",
            (var("tile_m") * var("tile_k") + var("tile_k") * var("tile_n")) * var("elem"),
        )
        // Micro-kernel working set: `unroll` B columns + one A column strip.
        .derived(
            "micro_bytes",
            (var("tile_m") * (var("unroll") + 1)) * var("elem"),
        )
        .constraint(
            "tile_over_l2",
            ConstraintClass::Hard,
            var("tile_bytes").gt(var("l2_bytes")),
        )
        .constraint(
            "micro_over_l1",
            ConstraintClass::Soft,
            var("micro_bytes").gt(var("l1_bytes")),
        )
        .constraint(
            "ragged_unroll",
            ConstraintClass::Soft,
            (var("tile_n") % var("unroll")).ne(0),
        )
        .build()
}

/// Extract [`GemmParams`] from a surviving point of [`cpu_gemm_space`].
pub fn point_to_gemm_params(point: &Point) -> GemmParams {
    GemmParams {
        tile_m: point.get_int("tile_m") as usize,
        tile_n: point.get_int("tile_n") as usize,
        tile_k: point.get_int("tile_k") as usize,
        unroll: point.get_int("unroll") as usize,
    }
}

/// The batched-Cholesky space: execution strategy (per-matrix unblocked /
/// blocked / interleaved), interleave width, panel width, thread count and
/// chunking, pruned by matrix-size-derived constraints.
pub fn batched_cholesky_space(
    n: i64,
    batch: i64,
    max_threads: i64,
) -> Result<Arc<Space>, SpaceError> {
    Space::builder("batched_cholesky")
        .constant("n", n)
        .constant("batch", batch)
        .constant("max_threads", max_threads)
        // strategy: 0 = unblocked, 1 = blocked, 2 = interleaved.
        .list("strategy", [0i64, 1, 2])
        .list("width", [4i64, 8, 16, 32, 64])
        .list("block", [4i64, 8, 16, 32, 64])
        .list("chunk", [1i64, 8, 64])
        .range("threads", 1, var("max_threads") + 1)
        // Blocking only pays off when the panel is smaller than the matrix.
        .constraint(
            "block_too_big",
            ConstraintClass::Correctness,
            var("strategy").eq(1).and(var("block").ge(var("n"))),
        )
        // Interleaving a wider pack than the batch wastes lanes.
        .constraint(
            "width_over_batch",
            ConstraintClass::Hard,
            var("strategy").eq(2).and(var("width").gt(var("batch"))),
        )
        // Dead dimensions: pin unused parameters to their first value so the
        // sweep does not enumerate meaningless duplicates (the CPU analog of
        // the paper's dependent iterators collapsing a dimension).
        .constraint(
            "width_unused",
            ConstraintClass::Generic,
            var("strategy").ne(2).and(var("width").ne(4)),
        )
        .constraint(
            "block_unused",
            ConstraintClass::Generic,
            var("strategy").ne(1).and(var("block").ne(4)),
        )
        // The interleaved path packs whole chunks itself.
        .constraint(
            "chunk_unused",
            ConstraintClass::Generic,
            var("strategy").eq(2).and(var("chunk").ne(1)),
        )
        .build()
}

/// Extract [`BatchParams`] from a surviving point of
/// [`batched_cholesky_space`].
pub fn point_to_batch_params(point: &Point) -> BatchParams {
    let strategy = match point.get_int("strategy") {
        0 => BatchStrategy::PerMatrixUnblocked,
        1 => BatchStrategy::PerMatrixBlocked { block: point.get_int("block") as usize },
        _ => BatchStrategy::Interleaved { width: point.get_int("width") as usize },
    };
    BatchParams {
        strategy,
        threads: point.get_int("threads") as usize,
        chunk: point.get_int("chunk") as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::ir::LoweredPlan;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_engine::compiled::Compiled;
    use beast_engine::visit::CollectVisitor;

    fn survivors(space: &Arc<Space>, cap: usize) -> Vec<Point> {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        let lowered = LoweredPlan::new(&plan).unwrap();
        let compiled = Compiled::new(lowered);
        let out = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), cap))
            .unwrap();
        out.visitor.points
    }

    #[test]
    fn gemm_space_prunes_oversized_tiles() {
        let space = cpu_gemm_space(CacheModel::typical()).unwrap();
        let pts = survivors(&space, 100_000);
        assert!(!pts.is_empty());
        for p in &pts {
            let params = point_to_gemm_params(p);
            let tile_bytes = (params.tile_m * params.tile_k
                + params.tile_k * params.tile_n)
                * 8;
            assert!(tile_bytes <= 1024 * 1024);
            assert_eq!(params.tile_n % params.unroll, 0);
        }
    }

    #[test]
    fn cholesky_space_has_no_dead_duplicates() {
        let space = batched_cholesky_space(32, 500, 2).unwrap();
        let pts = survivors(&space, 100_000);
        assert!(!pts.is_empty());
        for p in &pts {
            let params = point_to_batch_params(p);
            match params.strategy {
                BatchStrategy::PerMatrixUnblocked => {
                    assert_eq!(p.get_int("width"), 4);
                    assert_eq!(p.get_int("block"), 4);
                }
                BatchStrategy::PerMatrixBlocked { block } => {
                    assert!(block < 32);
                    assert_eq!(p.get_int("width"), 4);
                }
                BatchStrategy::Interleaved { width } => {
                    assert!(width as i64 <= 500);
                    assert_eq!(p.get_int("block"), 4);
                    assert_eq!(p.get_int("chunk"), 1);
                }
            }
        }
        // The strategy dimension survives in all three values.
        let strategies: std::collections::BTreeSet<i64> =
            pts.iter().map(|p| p.get_int("strategy")).collect();
        assert_eq!(strategies.len(), 3);
    }

    #[test]
    fn cholesky_space_scales_with_thread_limit() {
        let one = survivors(&batched_cholesky_space(32, 500, 1).unwrap(), 100_000).len();
        let four = survivors(&batched_cholesky_space(32, 500, 4).unwrap(), 100_000).len();
        assert_eq!(four, 4 * one);
    }
}
