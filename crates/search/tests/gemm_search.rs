//! Statistical search on the real model problem: the methods must find
//! configurations whose modeled performance approaches the exhaustive
//! optimum at a tiny fraction of the evaluation budget.

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::point::Point;
use beast_gemm::{build_gemm_space, pointref_to_config, tune_gemm, GemmSpaceParams};
use beast_gpu_sim::estimate;
use beast_search::{hill_climb, random_search, simulated_annealing, SearchBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (GemmSpaceParams, LoweredPlan, f64, u64) {
    let params = GemmSpaceParams::reduced(32);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();
    // Exhaustive optimum for reference.
    let exhaustive = tune_gemm(&params, 1, 2).unwrap();
    let best = exhaustive.best[0].perf.gflops;
    (params, lp, best, exhaustive.survivors)
}

fn scorer(params: &GemmSpaceParams) -> impl Fn(&Point) -> f64 + Clone {
    let device = params.device.clone();
    let cc = params.cc();
    let precision = params.precision;
    move |p: &Point| {
        let names: Vec<std::sync::Arc<str>> = p.names().to_vec();
        let slots: Vec<i64> = p
            .values()
            .iter()
            .map(|v| v.as_int().expect("integer point"))
            .collect();
        let view = beast_engine::point::PointRef::Slots { names: &names, slots: &slots };
        let config = pointref_to_config(&view);
        estimate(&device, &cc, &config, precision).gflops
    }
}

#[test]
fn all_methods_approach_the_exhaustive_optimum() {
    let (params, lp, exhaustive_best, survivors) = setup();
    let score = scorer(&params);
    // Budget: ~1% of the survivors (and far less than 1% of the raw space).
    let budget = SearchBudget {
        evaluations: (survivors / 100).clamp(100, 2000) as usize,
        attempts_per_sample: 200_000,
        ..Default::default()
    };

    let random = random_search(&lp, StdRng::seed_from_u64(1), budget, score.clone()).unwrap();
    let hc = hill_climb(&lp, StdRng::seed_from_u64(1), budget, 25, score.clone()).unwrap();
    let sa = simulated_annealing(
        &lp,
        StdRng::seed_from_u64(1),
        budget,
        exhaustive_best / 10.0,
        0.995,
        score,
    )
    .unwrap();

    for (name, outcome) in [("random", &random), ("hill_climb", &hc), ("annealing", &sa)] {
        let frac = outcome.best_score() / exhaustive_best;
        assert!(
            frac > 0.70,
            "{name}: found {:.1} of exhaustive best {exhaustive_best:.1} ({frac:.2}) \
             within {} evaluations",
            outcome.best_score(),
            outcome.evaluations
        );
    }
    // The local methods should not lose to pure random at equal budget by a
    // meaningful margin (they usually win).
    assert!(hc.best_score() >= 0.95 * random.best_score());
}

#[test]
fn search_points_are_valid_gemm_configurations() {
    let (params, lp, _, _) = setup();
    let score = scorer(&params);
    let out = random_search(
        &lp,
        StdRng::seed_from_u64(2),
        SearchBudget { evaluations: 50, attempts_per_sample: 200_000, ..Default::default() },
        score,
    )
    .unwrap();
    let (_, p) = out.best.expect("found something");
    // Spot-check the correctness constraints on the sampled winner.
    let threads = p.get_int("dim_m") * p.get_int("dim_n");
    assert_eq!(p.get_int("dim_m_a") * p.get_int("dim_n_a"), threads);
    assert_eq!(p.get_int("dim_m_b") * p.get_int("dim_n_b"), threads);
    assert_eq!(threads % 32, 0);
    assert_eq!(p.get_int("blk_m") % (p.get_int("dim_m_a") * p.get_int("dim_vec")), 0);
}
