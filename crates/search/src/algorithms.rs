//! Search algorithms over pruned spaces: random search, hill climbing and
//! simulated annealing — the "statistical search methods to address the
//! multidimensional search space growth" the paper's conclusions plan as
//! future work (Section XII).
//!
//! All algorithms are budgeted by *objective evaluations* (the expensive
//! operation in real autotuning, where each evaluation compiles and times a
//! kernel), deterministic under a seed, and return their full score history
//! so convergence can be plotted.

use beast_core::error::EvalError;
use beast_core::ir::LoweredPlan;
use beast_engine::point::Point;
use rand::Rng;

use crate::direct::DirectSampler;
use crate::sampler::Sampler;

/// Which sampler drives an algorithm's draws and neighbor moves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SamplerKind {
    /// Randomized backtracking walks ([`Sampler`]): no up-front analysis,
    /// but heavily pruned spaces cost many rejected walks per point.
    #[default]
    Rejection,
    /// Count-weighted descent ([`DirectSampler`]): one exact counting pass
    /// up front, then exactly-uniform survivors with zero rejections.
    /// Fails fast (with an error) on spaces past the counting budget.
    Direct,
}

/// Budget and retry limits for a search run.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Maximum objective evaluations.
    pub evaluations: usize,
    /// Walk attempts per requested sample before giving up. **Rejection
    /// sampling only**: the direct sampler cannot reject a walk, so it
    /// ignores this field entirely (its `SampleStats::rejected` stays 0).
    pub attempts_per_sample: usize,
    /// Sampler driving draws and neighbor moves.
    pub sampler: SamplerKind,
}

impl Default for SearchBudget {
    fn default() -> SearchBudget {
        SearchBudget {
            evaluations: 100,
            attempts_per_sample: 10_000,
            sampler: SamplerKind::Rejection,
        }
    }
}

/// Sampler dispatch for the algorithms: both kinds expose the same
/// draw/neighbor surface, so an algorithm is generic over the trade
/// between up-front counting and per-sample rejections.
enum AnySampler<'a, R: Rng> {
    Rejection(Sampler<'a, R>),
    Direct(Box<DirectSampler<'a, R>>),
}

impl<'a, R: Rng> AnySampler<'a, R> {
    fn new(lp: &'a LoweredPlan, rng: R, kind: SamplerKind) -> Result<Self, EvalError> {
        Ok(match kind {
            SamplerKind::Rejection => AnySampler::Rejection(Sampler::new(lp, rng)),
            SamplerKind::Direct => AnySampler::Direct(Box::new(DirectSampler::new(lp, rng)?)),
        })
    }

    fn sample(&mut self, max_attempts: usize) -> Result<Option<Point>, EvalError> {
        match self {
            AnySampler::Rejection(s) => s.sample(max_attempts),
            // Rejections are impossible: `max_attempts` has no meaning.
            AnySampler::Direct(s) => s.sample(),
        }
    }

    fn neighbor(
        &mut self,
        point: &Point,
        max_attempts: usize,
    ) -> Result<Option<Point>, EvalError> {
        match self {
            AnySampler::Rejection(s) => s.neighbor(point, max_attempts),
            AnySampler::Direct(s) => s.neighbor(point, max_attempts),
        }
    }
}

/// Result of a search run.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Best point and its score, if any valid point was found.
    pub best: Option<(f64, Point)>,
    /// Objective evaluations actually spent.
    pub evaluations: usize,
    /// Best-so-far score after each evaluation (for convergence curves).
    pub history: Vec<f64>,
}

impl SearchOutcome {
    /// The best score, or negative infinity when nothing was found.
    pub fn best_score(&self) -> f64 {
        self.best.as_ref().map(|(s, _)| *s).unwrap_or(f64::NEG_INFINITY)
    }
}

/// Pure random search: sample independently, keep the best.
pub fn random_search<R, F>(
    lp: &LoweredPlan,
    rng: R,
    budget: SearchBudget,
    mut score: F,
) -> Result<SearchOutcome, EvalError>
where
    R: Rng,
    F: FnMut(&Point) -> f64,
{
    let mut sampler = AnySampler::new(lp, rng, budget.sampler)?;
    let mut best: Option<(f64, Point)> = None;
    let mut history = Vec::with_capacity(budget.evaluations);
    let mut evaluations = 0;
    while evaluations < budget.evaluations {
        let Some(point) = sampler.sample(budget.attempts_per_sample)? else {
            break; // space (practically) exhausted or far too narrow
        };
        let s = score(&point);
        evaluations += 1;
        if best.as_ref().map(|(bs, _)| s > *bs).unwrap_or(true) {
            best = Some((s, point));
        }
        history.push(best.as_ref().map(|(bs, _)| *bs).unwrap_or(f64::NEG_INFINITY));
    }
    Ok(SearchOutcome { best, evaluations, history })
}

/// Greedy hill climbing with random restarts: move to a random neighbor
/// when it improves; after `patience` consecutive non-improving neighbors,
/// restart from a fresh sample.
pub fn hill_climb<R, F>(
    lp: &LoweredPlan,
    rng: R,
    budget: SearchBudget,
    patience: usize,
    mut score: F,
) -> Result<SearchOutcome, EvalError>
where
    R: Rng,
    F: FnMut(&Point) -> f64,
{
    let mut sampler = AnySampler::new(lp, rng, budget.sampler)?;
    let mut best: Option<(f64, Point)> = None;
    let mut history = Vec::with_capacity(budget.evaluations);
    let mut evaluations = 0;

    'outer: while evaluations < budget.evaluations {
        let Some(mut current) = sampler.sample(budget.attempts_per_sample)? else {
            break;
        };
        let mut current_score = score(&current);
        evaluations += 1;
        if best.as_ref().map(|(bs, _)| current_score > *bs).unwrap_or(true) {
            best = Some((current_score, current.clone()));
        }
        history.push(best.as_ref().map(|(bs, _)| *bs).unwrap());

        let mut stale = 0usize;
        while stale < patience && evaluations < budget.evaluations {
            let Some(candidate) = sampler.neighbor(&current, budget.attempts_per_sample)?
            else {
                continue 'outer; // no valid neighbor: restart
            };
            let s = score(&candidate);
            evaluations += 1;
            if s > current_score {
                current = candidate;
                current_score = s;
                stale = 0;
                if best.as_ref().map(|(bs, _)| s > *bs).unwrap_or(true) {
                    best = Some((s, current.clone()));
                }
            } else {
                stale += 1;
            }
            history.push(best.as_ref().map(|(bs, _)| *bs).unwrap());
        }
    }
    Ok(SearchOutcome { best, evaluations, history })
}

/// Simulated annealing: accept worsening moves with probability
/// `exp(Δ / T)`, with `T` decaying geometrically from `t0` by `cooling` per
/// evaluation. Scores are maximized.
pub fn simulated_annealing<R, F>(
    lp: &LoweredPlan,
    mut rng: R,
    budget: SearchBudget,
    t0: f64,
    cooling: f64,
    mut score: F,
) -> Result<SearchOutcome, EvalError>
where
    R: Rng,
    F: FnMut(&Point) -> f64,
{
    assert!(t0 > 0.0 && cooling > 0.0 && cooling < 1.0);
    // Split the RNG: one stream for the sampler, one for acceptance tests,
    // keeping runs reproducible regardless of internal sampling retries.
    let accept_seed: u64 = rng.gen();
    let mut accept_rng =
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(accept_seed);
    let mut sampler = AnySampler::new(lp, rng, budget.sampler)?;

    let mut history = Vec::with_capacity(budget.evaluations);
    let mut evaluations = 0;

    let Some(mut current) = sampler.sample(budget.attempts_per_sample)? else {
        return Ok(SearchOutcome { best: None, evaluations: 0, history });
    };
    let mut current_score = score(&current);
    evaluations += 1;
    let mut best: Option<(f64, Point)> = Some((current_score, current.clone()));
    history.push(current_score);

    let mut temperature = t0;
    while evaluations < budget.evaluations {
        let Some(candidate) = sampler.neighbor(&current, budget.attempts_per_sample)?
        else {
            break;
        };
        let s = score(&candidate);
        evaluations += 1;
        let delta = s - current_score;
        let accept = delta >= 0.0
            || accept_rng.gen::<f64>() < (delta / temperature.max(1e-12)).exp();
        if accept {
            current = candidate;
            current_score = s;
            if best.as_ref().map(|(bs, _)| s > *bs).unwrap_or(true) {
                best = Some((s, current.clone()));
            }
        }
        history.push(best.as_ref().map(|(bs, _)| *bs).unwrap());
        temperature *= cooling;
    }
    Ok(SearchOutcome { best, evaluations, history })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// 2-D space with a smooth unimodal objective peaking at (25, 25).
    fn hilly() -> (LoweredPlan, impl Fn(&Point) -> f64 + Clone) {
        let space: Arc<Space> = Space::builder("hilly")
            .range("x", 0, 51)
            .range("y", 0, 51)
            .constraint("hole", ConstraintClass::Generic, var("x").eq(13))
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let score = |p: &Point| {
            let (x, y) = (p.get_int("x") as f64, p.get_int("y") as f64);
            -((x - 25.0).powi(2) + (y - 25.0).powi(2))
        };
        (lp, score)
    }

    #[test]
    fn random_search_improves_monotonically() {
        let (lp, score) = hilly();
        let out = random_search(
            &lp,
            StdRng::seed_from_u64(1),
            SearchBudget { evaluations: 200, ..Default::default() },
            score,
        )
        .unwrap();
        assert_eq!(out.evaluations, 200);
        assert!(out.history.windows(2).all(|w| w[1] >= w[0]));
        let (s, p) = out.best.unwrap();
        assert!(s > -200.0, "random search should get reasonably close: {s}");
        assert_ne!(p.get_int("x"), 13, "constraint hole respected");
    }

    #[test]
    fn hill_climbing_beats_random_at_equal_budget() {
        let (lp, score) = hilly();
        let budget = SearchBudget { evaluations: 120, ..Default::default() };
        let mut hc_wins = 0;
        for seed in 0..5 {
            let r = random_search(&lp, StdRng::seed_from_u64(seed), budget, score.clone())
                .unwrap();
            let h =
                hill_climb(&lp, StdRng::seed_from_u64(seed), budget, 15, score.clone())
                    .unwrap();
            if h.best_score() >= r.best_score() {
                hc_wins += 1;
            }
        }
        assert!(hc_wins >= 3, "hill climbing should usually win ({hc_wins}/5)");
    }

    #[test]
    fn hill_climbing_finds_the_peak_with_generous_budget() {
        let (lp, score) = hilly();
        let out = hill_climb(
            &lp,
            StdRng::seed_from_u64(2),
            SearchBudget { evaluations: 2000, ..Default::default() },
            40,
            score,
        )
        .unwrap();
        let (s, p) = out.best.unwrap();
        assert!(s >= -2.0, "expected the peak neighborhood, got {s} at {p}");
    }

    #[test]
    fn annealing_runs_and_respects_budget() {
        let (lp, score) = hilly();
        let out = simulated_annealing(
            &lp,
            StdRng::seed_from_u64(3),
            SearchBudget { evaluations: 300, ..Default::default() },
            50.0,
            0.97,
            score,
        )
        .unwrap();
        assert!(out.evaluations <= 300);
        assert!(out.best_score() > -400.0);
        assert!(out.history.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn deterministic_under_seed() {
        let (lp, score) = hilly();
        let budget = SearchBudget { evaluations: 80, ..Default::default() };
        let a = hill_climb(&lp, StdRng::seed_from_u64(9), budget, 10, score.clone()).unwrap();
        let b = hill_climb(&lp, StdRng::seed_from_u64(9), budget, 10, score).unwrap();
        assert_eq!(a.best_score(), b.best_score());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn empty_space_returns_nothing() {
        let space: Arc<Space> = Space::builder("void")
            .range("x", 0, 10)
            .constraint("always", ConstraintClass::Generic, var("x").ge(0))
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let lp = LoweredPlan::new(&plan).unwrap();
        let out = random_search(
            &lp,
            StdRng::seed_from_u64(4),
            SearchBudget { evaluations: 10, attempts_per_sample: 50, ..Default::default() },
            |_| 0.0,
        )
        .unwrap();
        assert!(out.best.is_none());
        assert_eq!(out.evaluations, 0);
    }
}
