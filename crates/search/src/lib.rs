//! # beast-search
//!
//! Statistical search methods over BEAST spaces — the extension the paper's
//! conclusions announce as future work: "the plan is to incorporate
//! statistical search methods to address the multidimensional search space
//! growth" (Section XII).
//!
//! Exhaustive enumeration (the `beast-engine` backends) visits every
//! surviving point; that is the right tool when the pruned space is small
//! enough to benchmark outright. When it is not, the algorithms here trade
//! completeness for budget:
//!
//! * [`sampler::Sampler`] — rejection-samples surviving points by walking
//!   the plan (dependent domains realized under the sampled prefix) and
//!   produces constraint-respecting *neighbors* for local search;
//! * [`direct::DirectSampler`] — exactly-uniform survivors with **zero
//!   rejections**: one exact counting pass (`beast-core`'s model-counting
//!   analysis), then count-weighted descent in O(depth) per draw;
//! * [`algorithms::random_search`] — independent samples, keep the best;
//! * [`algorithms::hill_climb`] — greedy neighbor moves with random
//!   restarts;
//! * [`algorithms::simulated_annealing`] — temperature-scheduled acceptance
//!   of worsening moves.
//!
//! The algorithms take either sampler via
//! [`SearchBudget::sampler`](algorithms::SearchBudget::sampler)
//! ([`algorithms::SamplerKind`]); the rejection sampler remains the default
//! and the ablation baseline.
//!
//! All methods only ever evaluate points that pass every pruning
//! constraint, so the paper's "only kernels with a chance of running well
//! get benchmarked" property is preserved under sampling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod direct;
pub mod sampler;

pub use algorithms::{
    hill_climb, random_search, simulated_annealing, SamplerKind, SearchBudget, SearchOutcome,
};
pub use direct::DirectSampler;
pub use sampler::{SampleStats, Sampler};
