//! Zero-rejection sampling via count-weighted descent.
//!
//! [`DirectSampler`] front-loads one exact counting pass
//! (`beast_core::analyze::count`) and then draws **exactly uniform**
//! survivors with no rejections at all: a single uniform index in
//! `[0, total)` decomposes level by level through the cached cumulative
//! count tables — at each loop level the index selects the feasible value
//! whose cumulative-count bracket contains it and the remainder indexes
//! into that value's subtree. Every survivor corresponds to exactly one
//! index, so the draw is uniform over the *survivor set* (not merely
//! per-dimension given the prefix, the documented bias of the rejection
//! [`Sampler`](crate::Sampler)), and each sample costs O(depth × log
//! level-width) with every level answered from the footprint cache.
//!
//! The trade: counting up front costs a budgeted analysis pass (milliseconds
//! on the paper's GEMM spaces, aborted with an error on spaces past the
//! budget), after which samples are effectively free — the regime an
//! autotuner lives in, where one space is sampled thousands of times.

use std::sync::Arc;

use beast_core::analyze::count::{Counter, DescentStep};
use beast_core::error::EvalError;
use beast_core::ir::{LStep, LoweredPlan};
use beast_engine::point::Point;
use rand::Rng;

use crate::sampler::SampleStats;

/// An exactly-uniform, zero-rejection sampler over the survivors of a
/// space, powered by the exact counting analysis.
pub struct DirectSampler<'a, R: Rng> {
    lp: &'a LoweredPlan,
    rng: R,
    names: Arc<[Arc<str>]>,
    counter: Counter<'a>,
    total: u128,
    /// Counters. `rejected` and `dead_ends` stay 0 by construction: the
    /// descent only ever picks values with a nonzero subtree count.
    pub stats: SampleStats,
}

impl<'a, R: Rng> DirectSampler<'a, R> {
    /// Count the space and build the sampler. Fails with an error when the
    /// counting budget is exhausted before the space is fully counted —
    /// the caller should fall back to the rejection sampler then.
    pub fn new(lp: &'a LoweredPlan, rng: R) -> Result<DirectSampler<'a, R>, EvalError> {
        let names: Arc<[Arc<str>]> = Arc::from(lp.slot_names.clone().into_boxed_slice());
        let mut counter = Counter::new(lp);
        let total = counter.total()?.ok_or_else(|| {
            EvalError::Custom(
                "direct sampler: counting budget exhausted before the space \
                 was fully counted"
                    .into(),
            )
        })?;
        Ok(DirectSampler { lp, rng, names, counter, total, stats: SampleStats::default() })
    }

    /// Variable names of produced points (slot order).
    pub fn names(&self) -> &Arc<[Arc<str>]> {
        &self.names
    }

    /// Exact number of survivors this sampler draws from.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Draw one exactly-uniform survivor; `Ok(None)` only when the space
    /// has no survivors at all.
    pub fn sample(&mut self) -> Result<Option<Point>, EvalError> {
        if self.total == 0 {
            return Ok(None);
        }
        let idx = uniform_u128(&mut self.rng, self.total);
        let p = self.point_at(idx)?;
        self.stats.accepted += 1;
        Ok(Some(p))
    }

    /// The `idx`-th survivor in loop order (`idx < total`): the descent
    /// that [`DirectSampler::sample`] runs on a random index. Exposing it
    /// makes uniformity testable — distinct indices yield distinct points.
    pub fn point_at(&mut self, mut idx: u128) -> Result<Point, EvalError> {
        debug_assert!(idx < self.total);
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut i = 0usize;
        loop {
            match self.step(i, &mut slots)? {
                DescentStep::Done => {
                    let values = slots.iter().map(|&v| v.into()).collect();
                    return Ok(Point::new(Arc::clone(&self.names), values));
                }
                DescentStep::Level { step, slot, entry } => {
                    let (value, rem) = entry.pick(idx);
                    slots[slot as usize] = value;
                    idx = rem;
                    i = step + 1;
                }
                DescentStep::Dead => unreachable!("descent picked an infeasible value"),
            }
        }
    }

    /// Draw a random neighbor of a surviving point: one iterator dimension
    /// forced to a *different feasible* value, every other dimension keeping
    /// its reference value when still feasible and re-drawn count-weighted
    /// otherwise. Like every direct draw this cannot dead-end — `Ok(None)`
    /// means no differing neighbor exists along the attempted dimensions
    /// (e.g. single-value feasible domains).
    pub fn neighbor(
        &mut self,
        point: &Point,
        max_attempts: usize,
    ) -> Result<Option<Point>, EvalError> {
        if self.total == 0 {
            return Ok(None);
        }
        let bind_slots: Vec<u32> = self
            .lp
            .steps
            .iter()
            .filter_map(|s| match s {
                LStep::Bind { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        for _ in 0..max_attempts.max(1) {
            let mutate = bind_slots[self.rng.gen_range(0..bind_slots.len())];
            if let Some(p) = self.neighbor_walk(point, mutate)? {
                if p.values() != point.values() {
                    return Ok(Some(p));
                }
            }
        }
        Ok(None)
    }

    /// One neighbor descent around `reference` mutating `mutate` slot.
    fn neighbor_walk(
        &mut self,
        reference: &Point,
        mutate: u32,
    ) -> Result<Option<Point>, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut i = 0usize;
        loop {
            match self.step(i, &mut slots)? {
                DescentStep::Done => {
                    let values = slots.iter().map(|&v| v.into()).collect();
                    return Ok(Some(Point::new(Arc::clone(&self.names), values)));
                }
                DescentStep::Dead => unreachable!("descent picked an infeasible value"),
                DescentStep::Level { step, slot, entry } => {
                    let reference_value = reference
                        .get(&self.lp.slot_names[slot as usize])
                        .and_then(|v| v.as_int().ok());
                    let value = if slot == mutate {
                        // Forced move: a different feasible value.
                        let cur = reference_value;
                        let n = entry.len();
                        let alternatives =
                            n - usize::from(cur.is_some_and(|c| entry.position_of(c).is_some()));
                        if alternatives == 0 {
                            return Ok(None);
                        }
                        loop {
                            let k = self.rng.gen_range(0..n);
                            let cand = entry.value_at(k);
                            if Some(cand) != cur {
                                break cand;
                            }
                        }
                    } else if let Some(cur) =
                        reference_value.filter(|c| entry.position_of(*c).is_some())
                    {
                        // Keep the reference value while it stays feasible.
                        cur
                    } else {
                        // Invalidated by the mutation: count-weighted redraw
                        // so the repaired suffix stays survivor-uniform.
                        let r = uniform_u128(&mut self.rng, entry.total());
                        entry.pick(r).0
                    };
                    slots[slot as usize] = value;
                    i = step + 1;
                }
            }
        }
    }

    /// Advance the concrete walk to the next loop level via the counter's
    /// cache. After the eager count in [`DirectSampler::new`], the counter
    /// can no longer abort — map that impossible state to an error instead
    /// of panicking.
    fn step(&mut self, i: usize, slots: &mut Vec<i64>) -> Result<DescentStep, EvalError> {
        self.counter.descend(i, slots)?.ok_or_else(|| {
            EvalError::Custom("direct sampler: counting budget exhausted mid-descent".into())
        })
    }
}

/// Uniform draw in `[0, bound)`. Bounds above `u64::MAX` combine two raw
/// draws; the resulting modulo bias is at most 2⁻⁶⁴ — unobservable, and
/// only reachable for spaces with more than 2⁶⁴ survivors.
fn uniform_u128<R: Rng>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        rng.gen_range(0..bound as u64) as u128
    } else {
        let raw = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        raw % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lowered(space: &Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn mini() -> Arc<Space> {
        Space::builder("direct_mini")
            .constant("cap", 30)
            .range("a", 1, 9)
            .range_step("b", var("a"), 33, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn samples_satisfy_constraints_with_zero_rejections() {
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(1)).unwrap();
        for _ in 0..200 {
            let p = sampler.sample().unwrap().expect("space is non-empty");
            let (a, b, ab) = (p.get_int("a"), p.get_int("b"), p.get_int("ab"));
            assert_eq!(ab, a * b);
            assert!(ab <= 30);
            assert!(b % a == 0 && (1..33).contains(&b));
        }
        assert_eq!(sampler.stats.accepted, 200);
        assert_eq!(sampler.stats.rejected, 0);
        assert_eq!(sampler.stats.dead_ends, 0);
    }

    #[test]
    fn index_decomposition_is_a_bijection() {
        // Every index yields a distinct survivor: together with idx <
        // total this is exact uniformity of `sample`.
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(2)).unwrap();
        let total = sampler.total();
        assert!(total > 0);
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..total {
            let p = sampler.point_at(idx).unwrap();
            assert!(seen.insert((p.get_int("a"), p.get_int("b"))), "duplicate at {idx}");
        }
        assert_eq!(seen.len() as u128, total);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = mini();
        let lp = lowered(&space);
        let a: Vec<_> = {
            let mut s = DirectSampler::new(&lp, StdRng::seed_from_u64(7)).unwrap();
            (0..20).map(|_| s.sample().unwrap().unwrap()).collect()
        };
        let b: Vec<_> = {
            let mut s = DirectSampler::new(&lp, StdRng::seed_from_u64(7)).unwrap();
            (0..20).map(|_| s.sample().unwrap().unwrap()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn neighbors_are_valid_and_different() {
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(9)).unwrap();
        let start = sampler.sample().unwrap().unwrap();
        for _ in 0..50 {
            let n = sampler.neighbor(&start, 100).unwrap().expect("neighbor exists");
            assert!(n.get_int("ab") <= 30);
            assert_ne!(
                (n.get_int("a"), n.get_int("b")),
                (start.get_int("a"), start.get_int("b")),
                "neighbor must differ"
            );
        }
    }

    #[test]
    fn needle_in_a_haystack_needs_one_draw() {
        // The space the rejection sampler needs ~1000 attempts for: the
        // counting pass collapses it to its single survivor.
        let space = Space::builder("direct_narrow")
            .range("x", 0, 1000)
            .constraint("only_42", ConstraintClass::Generic, var("x").ne(42))
            .build()
            .unwrap();
        let lp = lowered(&space);
        let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(sampler.total(), 1);
        let p = sampler.sample().unwrap().expect("42 exists");
        assert_eq!(p.get_int("x"), 42);
        assert_eq!(sampler.stats.rejected, 0);
    }

    #[test]
    fn empty_space_returns_none() {
        let space = Space::builder("direct_empty")
            .range("x", 0, 10)
            .constraint("none", ConstraintClass::Hard, var("x").ge(0))
            .build()
            .unwrap();
        let lp = lowered(&space);
        let mut sampler = DirectSampler::new(&lp, StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(sampler.total(), 0);
        assert!(sampler.sample().unwrap().is_none());
        let nobody = Point::new(Arc::from(Vec::new().into_boxed_slice()), Vec::new());
        assert!(sampler.neighbor(&nobody, 5).unwrap().is_none());
    }
}
