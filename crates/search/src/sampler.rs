//! Sampling points from a pruned search space.
//!
//! The sampler walks the lowered plan in loop order: at each iterator it
//! realizes the domain *under the values chosen so far* (dependent ranges
//! work exactly as in exhaustive enumeration), picks one value uniformly,
//! computes derived variables, and applies every pruning constraint.
//! A rejected tuple is discarded and the walk restarts — rejection sampling,
//! which needs on the order of `1 / survival-rate` attempts per point and is
//! therefore paired with generous retry budgets for heavily pruned spaces.

use std::sync::Arc;

use beast_core::error::EvalError;
use beast_core::ir::{LBody, LIter, LStep, LoweredPlan};
use beast_core::iterator::Realized;
use beast_engine::compiled::SlotBindings;
use beast_engine::point::Point;
use rand::Rng;

/// Outcome counters of a sampling session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Completed (constraint-satisfying) points produced.
    pub accepted: u64,
    /// Walks abandoned because a constraint rejected the partial tuple.
    pub rejected: u64,
    /// Walks abandoned because a realized domain was empty.
    pub dead_ends: u64,
}

/// A uniform-ish sampler over the surviving points of a space.
///
/// Uniformity caveat (documented, inherent to sequential sampling): values
/// are drawn uniformly *per dimension given the prefix*, so tuples under
/// prefixes with larger subtrees are not over-weighted the way exhaustive
/// subtree sizes would demand. For autotuning search this bias is harmless —
/// every surviving point has nonzero probability — and it is what makes
/// sampling O(depth) instead of O(space).
pub struct Sampler<'a, R: Rng> {
    lp: &'a LoweredPlan,
    rng: R,
    names: Arc<[Arc<str>]>,
    /// Counters.
    pub stats: SampleStats,
}

impl<'a, R: Rng> Sampler<'a, R> {
    /// Create a sampler over a lowered plan.
    pub fn new(lp: &'a LoweredPlan, rng: R) -> Sampler<'a, R> {
        let names: Arc<[Arc<str>]> = Arc::from(lp.slot_names.clone().into_boxed_slice());
        Sampler { lp, rng, names, stats: SampleStats::default() }
    }

    /// Variable names of produced points (slot order).
    pub fn names(&self) -> &Arc<[Arc<str>]> {
        &self.names
    }

    /// Attempt one randomized walk with bounded backtracking;
    /// `Ok(None)` when the backtrack budget is exhausted without reaching a
    /// surviving point.
    ///
    /// Unlike naive rejection sampling (restart the whole walk on any
    /// constraint failure), a failed check backtracks to the most recent
    /// loop and retries other values there before giving up on the prefix —
    /// randomized depth-first search. Heavily pruned spaces such as the
    /// paper's GEMM problem have per-point survival rates around 1e-6 under
    /// independent sampling; backtracking recovers tractability while every
    /// produced point still satisfies every constraint.
    pub fn try_sample(&mut self) -> Result<Option<Point>, EvalError> {
        let empty = Point::new(Arc::from(Vec::new().into_boxed_slice()), Vec::new());
        let outcome = self.walk(None, &empty)?;
        match &outcome {
            Some(_) => self.stats.accepted += 1,
            None => self.stats.rejected += 1,
        }
        Ok(outcome)
    }

    /// Sample one surviving point, retrying up to `max_attempts` walks.
    pub fn sample(&mut self, max_attempts: usize) -> Result<Option<Point>, EvalError> {
        for _ in 0..max_attempts.max(1) {
            if let Some(p) = self.try_sample()? {
                return Ok(Some(p));
            }
        }
        Ok(None)
    }

    /// Draw a random neighbor of a surviving point: choose one iterator
    /// dimension, force it to a different value of its domain, keep other
    /// values where still valid, and let the backtracking walk repair the
    /// rest.
    pub fn neighbor(
        &mut self,
        point: &Point,
        max_attempts: usize,
    ) -> Result<Option<Point>, EvalError> {
        let iter_slots = self.iterator_slots();
        for _ in 0..max_attempts.max(1) {
            let pick = iter_slots[self.rng.gen_range(0..iter_slots.len())];
            if let Some(p) = self.walk(Some(pick), point)? {
                // Guarantee the neighbor differs somewhere.
                if p.values() != point.values() {
                    return Ok(Some(p));
                }
            }
        }
        Ok(None)
    }

    fn iterator_slots(&self) -> Vec<u32> {
        self.lp
            .steps
            .iter()
            .filter_map(|s| match s {
                LStep::Bind { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect()
    }

    /// Core randomized-DFS walk. When `mutate_slot` is `Some(s)`, the walk
    /// behaves as a neighborhood move around `reference`: slot `s` is forced
    /// to a value different from the reference, every other slot prefers its
    /// reference value (falling back to random when invalidated).
    fn walk(
        &mut self,
        mutate_slot: Option<u32>,
        reference: &Point,
    ) -> Result<Option<Point>, EvalError> {
        const TRIES_PER_LEVEL: usize = 6;
        const BACKTRACK_BUDGET: usize = 4096;

        let space = self.lp.plan.space();
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut frames: Vec<Frame> = Vec::new();
        let mut backtracks = BACKTRACK_BUDGET;
        let mut i = 0usize;

        let reference_of = |this: &Self, slot: u32| -> Option<i64> {
            reference
                .get(&this.lp.slot_names[slot as usize])
                .and_then(|v| v.as_int().ok())
        };

        loop {
            match &self.lp.steps[i] {
                LStep::Bind { slot, domain, iter, .. } => {
                    let realized = match domain {
                        LIter::Range { start, stop, step } => Realized::Range {
                            start: start.eval(&slots)?,
                            stop: stop.eval(&slots)?,
                            step: step.eval(&slots)?,
                        },
                        LIter::Values(v) => {
                            Realized::Values(v.iter().map(|&x| x.into()).collect())
                        }
                        LIter::Opaque { .. } => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.realize_iter(*iter, &view)?
                        }
                    };
                    let len = realized.len();
                    if len == 0 {
                        self.stats.dead_ends += 1;
                        if !backtrack(&mut frames, &mut slots, &mut i, &mut backtracks, &mut self.rng) {
                            return Ok(None);
                        }
                        continue;
                    }
                    let reference_value = if mutate_slot.is_some() {
                        reference_of(self, *slot)
                    } else {
                        None
                    };
                    let value = match (mutate_slot, reference_value) {
                        (Some(m), Some(cur)) if m == *slot => {
                            // Forced move: a different value of this domain.
                            if len == 1 {
                                return Ok(None);
                            }
                            loop {
                                let idx = self.rng.gen_range(0..len);
                                let cand =
                                    realized.nth_value(idx).expect("in range").as_int()?;
                                if cand != cur {
                                    break cand;
                                }
                            }
                        }
                        (Some(_), Some(cur)) if realized.contains_int(cur) => cur,
                        _ => {
                            let idx = self.rng.gen_range(0..len);
                            realized.nth_value(idx).expect("in range").as_int()?
                        }
                    };
                    slots[*slot as usize] = value;
                    frames.push(Frame {
                        step_idx: i,
                        slot: *slot,
                        domain: realized,
                        tries_left: TRIES_PER_LEVEL.min(len.saturating_sub(1)),
                    });
                    i += 1;
                }
                LStep::Define { slot, body, derived } => {
                    slots[*slot as usize] = match body {
                        LBody::Expr(e) => e.eval(&slots)?,
                        LBody::Opaque => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.deriveds()[*derived].kind.eval(&view)?.as_int()?
                        }
                    };
                    i += 1;
                }
                LStep::Check { constraint, body } => {
                    let rejected = match body {
                        LBody::Expr(e) => e.eval(&slots)? != 0,
                        LBody::Opaque => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.constraints()[*constraint].kind.rejects(&view)?
                        }
                    };
                    if rejected {
                        if !backtrack(&mut frames, &mut slots, &mut i, &mut backtracks, &mut self.rng) {
                            return Ok(None);
                        }
                    } else {
                        i += 1;
                    }
                }
                LStep::Visit => {
                    let values = slots.iter().map(|&v| v.into()).collect();
                    return Ok(Some(Point::new(Arc::clone(&self.names), values)));
                }
            }
        }
    }

    /// Re-evaluate a *complete* assignment of iterator values: recompute
    /// derived variables and constraints, returning the full point if every
    /// constraint passes and every iterator value lies in its (re-realized)
    /// domain.
    pub fn evaluate_assignment(
        &mut self,
        iter_values: &[(u32, i64)],
    ) -> Result<Option<Point>, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let space = self.lp.plan.space();
        let value_of = |slot: u32| -> i64 {
            iter_values
                .iter()
                .find(|(s, _)| *s == slot)
                .map(|(_, v)| *v)
                .expect("assignment covers every iterator slot")
        };
        for step in &self.lp.steps {
            match step {
                LStep::Bind { slot, domain, iter, .. } => {
                    let realized = match domain {
                        LIter::Range { start, stop, step } => Realized::Range {
                            start: start.eval(&slots)?,
                            stop: stop.eval(&slots)?,
                            step: step.eval(&slots)?,
                        },
                        LIter::Values(v) => {
                            Realized::Values(v.iter().map(|&x| x.into()).collect())
                        }
                        LIter::Opaque { .. } => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.realize_iter(*iter, &view)?
                        }
                    };
                    let v = value_of(*slot);
                    if !realized.contains_int(v) {
                        return Ok(None);
                    }
                    slots[*slot as usize] = v;
                }
                LStep::Define { slot, body, derived } => {
                    slots[*slot as usize] = match body {
                        LBody::Expr(e) => e.eval(&slots)?,
                        LBody::Opaque => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.deriveds()[*derived].kind.eval(&view)?.as_int()?
                        }
                    };
                }
                LStep::Check { constraint, body } => {
                    let rejected = match body {
                        LBody::Expr(e) => e.eval(&slots)? != 0,
                        LBody::Opaque => {
                            let view = SlotBindings {
                                names: &self.lp.slot_names,
                                slots: &slots,
                                consts: space.consts(),
                            };
                            space.constraints()[*constraint].kind.rejects(&view)?
                        }
                    };
                    if rejected {
                        return Ok(None);
                    }
                }
                LStep::Visit => {
                    let values = slots.iter().map(|&v| v.into()).collect();
                    return Ok(Some(Point::new(Arc::clone(&self.names), values)));
                }
            }
        }
        unreachable!("plans always end in Visit")
    }
}

/// One open loop of a randomized-DFS walk.
struct Frame {
    step_idx: usize,
    slot: u32,
    domain: Realized,
    tries_left: usize,
}

/// Retry a different value at the most recent loop with retries left; pop
/// exhausted frames. Returns `false` when the walk is out of options.
fn backtrack<R: Rng>(
    frames: &mut Vec<Frame>,
    slots: &mut [i64],
    i: &mut usize,
    backtracks: &mut usize,
    rng: &mut R,
) -> bool {
    loop {
        let Some(frame) = frames.last_mut() else {
            return false;
        };
        if frame.tries_left > 0 && *backtracks > 0 {
            *backtracks -= 1;
            frame.tries_left -= 1;
            let len = frame.domain.len();
            let idx = rng.gen_range(0..len);
            slots[frame.slot as usize] = frame
                .domain
                .nth_value(idx)
                .expect("index in range")
                .as_int()
                .expect("integer domain");
            *i = frame.step_idx + 1;
            return true;
        }
        frames.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lowered(space: &Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn mini() -> Arc<Space> {
        Space::builder("sample_mini")
            .constant("cap", 30)
            .range("a", 1, 9)
            .range_step("b", var("a"), 33, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn samples_satisfy_constraints() {
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = Sampler::new(&lp, StdRng::seed_from_u64(1));
        for _ in 0..100 {
            let p = sampler.sample(1000).unwrap().expect("space is non-empty");
            let (a, b, ab) = (p.get_int("a"), p.get_int("b"), p.get_int("ab"));
            assert_eq!(ab, a * b);
            assert!(ab <= 30);
            assert!(b % a == 0 && (1..33).contains(&b));
        }
        assert!(sampler.stats.accepted == 100);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = mini();
        let lp = lowered(&space);
        let p1 = Sampler::new(&lp, StdRng::seed_from_u64(7)).sample(100).unwrap();
        let p2 = Sampler::new(&lp, StdRng::seed_from_u64(7)).sample(100).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn sampling_eventually_covers_the_space() {
        // Enumerate ground truth, then sample until everything is seen.
        use beast_engine::compiled::Compiled;
        use beast_engine::visit::CollectVisitor;
        let space = mini();
        let lp = lowered(&space);
        let compiled = Compiled::new(lp.clone());
        let all = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), usize::MAX))
            .unwrap()
            .visitor
            .points;
        let want: std::collections::BTreeSet<(i64, i64)> =
            all.iter().map(|p| (p.get_int("a"), p.get_int("b"))).collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut sampler = Sampler::new(&lp, StdRng::seed_from_u64(3));
        for _ in 0..5000 {
            if let Some(p) = sampler.try_sample().unwrap() {
                seen.insert((p.get_int("a"), p.get_int("b")));
            }
            if seen == want {
                break;
            }
        }
        assert_eq!(seen, want, "sampler failed to reach some survivors");
    }

    #[test]
    fn evaluate_assignment_validates() {
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = Sampler::new(&lp, StdRng::seed_from_u64(5));
        // a=2, b=4: valid (ab=8 <= 30).
        let ok = sampler.evaluate_assignment(&[(0, 2), (1, 4)]).unwrap();
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().get_int("ab"), 8);
        // a=2, b=5: 5 not a multiple of 2 → out of domain.
        assert!(sampler.evaluate_assignment(&[(0, 2), (1, 5)]).unwrap().is_none());
        // a=7, b=28: ab=196 > 30 → constraint rejects.
        assert!(sampler.evaluate_assignment(&[(0, 7), (1, 28)]).unwrap().is_none());
    }

    #[test]
    fn neighbors_are_valid_and_different() {
        let space = mini();
        let lp = lowered(&space);
        let mut sampler = Sampler::new(&lp, StdRng::seed_from_u64(9));
        let start = sampler.sample(1000).unwrap().unwrap();
        for _ in 0..50 {
            let n = sampler.neighbor(&start, 100).unwrap().expect("neighbor exists");
            assert!(n.get_int("ab") <= 30);
            assert_ne!(
                (n.get_int("a"), n.get_int("b")),
                (start.get_int("a"), start.get_int("b")),
                "neighbor must differ"
            );
        }
    }

    #[test]
    fn heavily_pruned_space_reports_rejections() {
        let space = Space::builder("narrow")
            .range("x", 0, 1000)
            .constraint("only_42", ConstraintClass::Generic, var("x").ne(42))
            .build()
            .unwrap();
        let lp = lowered(&space);
        let mut sampler = Sampler::new(&lp, StdRng::seed_from_u64(11));
        let p = sampler.sample(100_000).unwrap().expect("42 exists");
        assert_eq!(p.get_int("x"), 42);
        assert!(sampler.stats.rejected > 0);
    }
}
