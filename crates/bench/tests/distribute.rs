//! End-to-end suite for `repro distribute` — the multi-process supervisor.
//!
//! Everything here drives the real binary (`CARGO_BIN_EXE_repro`), so the
//! full stack is under test: CLI flag plumbing, `std::process` spawning of
//! real worker processes, the length-prefixed wire protocol, heartbeats,
//! retry/backoff re-dealing, checkpoint/resume, and the bit-identical merge
//! contract against `repro sweep`. The chaos flags make the failure paths
//! deterministic: `--die-after` crashes a worker mid-shard, `--stall-after`
//! hangs one until the heartbeat deadline kills it, `--chaos-kill-after`
//! SIGKILLs one from the supervisor side.

use std::process::Command;

use beast_engine::checkpoint::JsonValue;

/// Pinned chunk grid so every run in this suite shards identically.
const CHUNKS: &str = "16";
const DIM: &str = "16";

fn repro(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("beast-distribute-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Read `(fingerprint, survivors, report)` from a `--json` dump.
fn read_json(path: &std::path::Path) -> (String, u64, JsonValue) {
    let text = std::fs::read_to_string(path).unwrap();
    let doc = JsonValue::parse(&text).unwrap();
    let fp = doc.get("fingerprint").unwrap().as_str().unwrap().to_string();
    let survivors = doc.get("survivors").unwrap().as_u64().unwrap();
    (fp, survivors, doc)
}

fn counter(doc: &JsonValue, name: &str) -> u64 {
    doc.get("report")
        .unwrap()
        .get("fault_counters")
        .unwrap()
        .get(name)
        .unwrap()
        .as_u64()
        .unwrap()
}

/// The serial in-process reference this whole suite compares against.
fn serial_reference(json: &std::path::Path) -> (String, u64) {
    let (code, _, err) = repro(&[
        "sweep", DIM, "--threads", "1", "--chunks", CHUNKS, "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "serial sweep failed: {err}");
    let (fp, survivors, _) = read_json(json);
    (fp, survivors)
}

/// The merged result is bit-identical to the serial sweep at every worker
/// count — same survivors, same order-sensitive fingerprint.
#[test]
fn distribute_is_bit_identical_to_serial_at_every_worker_count() {
    let (serial_fp, serial_survivors) = serial_reference(&scratch("identity-serial.json"));
    for workers in ["1", "2", "4"] {
        let json = scratch(&format!("identity-w{workers}.json"));
        let (code, _, err) = repro(&[
            "distribute", DIM, "--workers", workers, "--chunks", CHUNKS,
            "--json", json.to_str().unwrap(),
        ]);
        assert_eq!(code, Some(0), "distribute --workers {workers} failed: {err}");
        let (fp, survivors, doc) = read_json(&json);
        assert_eq!(fp, serial_fp, "fingerprint diverged at {workers} worker(s)");
        assert_eq!(survivors, serial_survivors);
        assert_eq!(
            counter(&doc, "workers_spawned"),
            workers.parse::<u64>().unwrap(),
            "every slot should spawn exactly one worker on the clean path"
        );
    }
}

/// A worker that crashes mid-shard (simulated `kill -9` via `--die-after`)
/// is replaced and its shard re-dealt: exit 0, bit-identical result, and
/// the recovery is visible as worker-level fault records.
#[test]
fn crashing_worker_recovers_bit_identically() {
    let (serial_fp, serial_survivors) = serial_reference(&scratch("crash-serial.json"));
    let json = scratch("crash.json");
    let (code, _, err) = repro(&[
        "distribute", DIM, "--workers", "2", "--chunks", CHUNKS, "--die-after", "1",
        "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "distribute with a crashing worker failed: {err}");
    let (fp, survivors, doc) = read_json(&json);
    assert_eq!(fp, serial_fp, "a worker crash must not change the merge");
    assert_eq!(survivors, serial_survivors);
    assert!(counter(&doc, "shards_retried") >= 1, "the crashed shard must be re-dealt");
    assert!(counter(&doc, "worker_restarts") >= 1, "the crashed worker must be replaced");
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"kind\":\"worker_exit\""), "fault records must name the exit");
}

/// A worker that goes silent mid-shard trips the heartbeat deadline, is
/// killed, and its shard re-dealt — still exit 0 and bit-identical.
#[test]
fn stalled_worker_is_timed_out_and_recovered() {
    let (serial_fp, serial_survivors) = serial_reference(&scratch("stall-serial.json"));
    let json = scratch("stall.json");
    let (code, _, err) = repro(&[
        "distribute", DIM, "--workers", "1", "--chunks", CHUNKS, "--stall-after", "1",
        "--heartbeat-ms", "300", "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "distribute with a stalling worker failed: {err}");
    let (fp, survivors, doc) = read_json(&json);
    assert_eq!(fp, serial_fp, "a stalled worker must not change the merge");
    assert_eq!(survivors, serial_survivors);
    assert!(counter(&doc, "heartbeat_timeouts") >= 1, "the stall must be a recorded timeout");
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"kind\":\"worker_timeout\""));
}

/// The supervisor-side chaos knob: SIGKILL one worker right after dealing
/// it a shard. Mirrors the CI smoke job.
#[test]
fn supervisor_side_kill_recovers_bit_identically() {
    let (serial_fp, serial_survivors) = serial_reference(&scratch("kill-serial.json"));
    let json = scratch("kill.json");
    let (code, _, err) = repro(&[
        "distribute", DIM, "--workers", "2", "--chunks", CHUNKS, "--chaos-kill-after", "2",
        "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "distribute surviving a SIGKILL failed: {err}");
    let (fp, survivors, doc) = read_json(&json);
    assert_eq!(fp, serial_fp, "killing a worker must not change the merge");
    assert_eq!(survivors, serial_survivors);
    assert!(counter(&doc, "workers_spawned") >= 3, "the killed worker must be respawned");
    assert!(counter(&doc, "worker_restarts") >= 1);
}

/// A distributed sweep interrupted mid-run (exit 3, resumable) and resumed
/// finishes with the serial fingerprint — the distributed twin of the
/// `repro sweep` checkpoint contract.
#[test]
fn interrupted_distribute_resumes_bit_identically() {
    let (serial_fp, serial_survivors) = serial_reference(&scratch("resume-serial.json"));
    let ck = scratch("resume.ck.json");
    let _ = std::fs::remove_file(&ck);
    let (code, _, err) = repro(&[
        "distribute", DIM, "--workers", "2", "--chunks", CHUNKS,
        "--checkpoint", ck.to_str().unwrap(), "--every", "1", "--stop-after", "5",
    ]);
    assert_eq!(code, Some(3), "an interrupted run must exit 3 (resumable): {err}");
    let json = scratch("resume.json");
    let (code, _, err) = repro(&[
        "distribute", DIM, "--workers", "2", "--chunks", CHUNKS,
        "--checkpoint", ck.to_str().unwrap(), "--resume", "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "the resumed run must complete: {err}");
    let (fp, survivors, doc) = read_json(&json);
    assert_eq!(fp, serial_fp, "resume must be bit-identical to an uninterrupted sweep");
    assert_eq!(survivors, serial_survivors);
    assert_eq!(
        doc.get("report").unwrap().get("resumed_at").unwrap().as_u64(),
        Some(5),
        "the resume must pick up exactly where the interruption stopped"
    );
}
