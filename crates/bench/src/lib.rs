//! Shared workload builders for the benchmark harness and the `repro`
//! binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::Arc;

use beast_core::expr::{var, E};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::space::Space;

/// Build the synthetic loop-nest workload of Figs. 17–19: `depth` nested
/// loops whose lengths multiply to approximately `total` iterations, with
/// integer arithmetic on the loop variables in the innermost body ("there
/// are no memory accesses through mutable containers", Section XI-B).
///
/// Returns the space and the exact iteration count.
pub fn loop_nest_space(depth: usize, total: u64) -> (Arc<Space>, u64) {
    assert!(depth >= 1);
    let len = (total as f64).powf(1.0 / depth as f64).ceil() as i64;
    let mut builder = Space::builder("loop_nest");
    let mut body: Option<E> = None;
    let mut actual: u64 = 1;
    for d in 0..depth {
        let name = format!("i{d}");
        builder = builder.range(&name, 0, len);
        actual *= len as u64;
        // i0*3 + i1*5 + ... — cheap integer arithmetic on locals.
        let term = var(&name) * (2 * d as i64 + 3);
        body = Some(match body {
            None => term,
            Some(acc) => acc + term,
        });
    }
    let space = builder
        .derived("acc", body.expect("at least one loop"))
        .build()
        .expect("loop nest space is valid");
    (space, actual)
}

/// Plan and lower a space with default options.
pub fn lower_default(space: &Arc<Space>) -> LoweredPlan {
    let plan = Plan::new(space, PlanOptions::default()).expect("planning succeeds");
    LoweredPlan::new(&plan).expect("lowering succeeds")
}

/// Format an iterations-per-second figure the way the paper's plots do
/// (millions of iterations per second).
pub fn miters_per_sec(iters: u64, seconds: f64) -> f64 {
    iters as f64 / seconds / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_engine::compiled::Compiled;
    use beast_engine::visit::CountVisitor;

    #[test]
    fn loop_nest_counts_match() {
        for depth in 1..=4 {
            let (space, expected) = loop_nest_space(depth, 10_000);
            let lp = lower_default(&space);
            let out = Compiled::new(lp).run(CountVisitor::default()).unwrap();
            assert_eq!(out.visitor.count, expected, "depth {depth}");
            assert!(expected >= 10_000);
        }
    }

    #[test]
    fn rate_formatting() {
        assert!((miters_per_sec(2_000_000, 2.0) - 1.0).abs() < 1e-12);
    }
}
