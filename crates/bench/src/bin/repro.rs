//! `repro` — regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! repro device            Fig. 8/9   device query + compute-capability lookup
//! repro space             Fig. 10/11 settings and the 15 GEMM iterators
//! repro fig16             Fig. 16    dependency DAG (DOT) + level sets
//! repro fig17 [N]         Fig. 17    interpreter loop styles × nest depth
//! repro fig18 [N]         Fig. 18    bytecode VM loop styles × nest depth
//! repro fig19 [N]         Fig. 19    compiled backends × nest depth
//! repro headline [DIM]    §XI-B/D    GEMM sweep: interpreted vs compiled
//! repro funnel [DIM]      §VI        pruning funnel on the GEMM space
//! repro table1            Table I    autotuned kernels vs baselines
//! repro threads [DIM] [--threads N] [--json PATH]
//!                         §X-B       multithreaded sweep scaling; with
//!                                    --threads runs one count and prints the
//!                                    full telemetry tables, with --json
//!                                    writes the SweepReport(s) as JSON
//! repro search [DIM] [--sampler {rejection,direct}]
//!                         §XII       statistical search vs exhaustive
//!                                    (extension); --sampler picks the
//!                                    point source: rejection walks
//!                                    (default) or the zero-rejection
//!                                    count-weighted direct sampler
//! repro viz [DIM]         [7]        write funnel.svg / radial.svg / dag.dot
//! repro batched [N]       ref [5]    the second model problem: batched Cholesky
//! repro lint [DIM] [--json PATH]
//!                         linter     static analysis of the GEMM space
//!                                    (BE001–BE010 diagnostics, including
//!                                    the exact-count lints); exits nonzero
//!                                    on error-severity findings
//! repro count [DIM] [--json PATH]
//!                         analysis   exact survivor count of the GEMM
//!                                    space by model counting over the
//!                                    lowered plan: survivors, dependent
//!                                    tuples, survival rate, per-level
//!                                    feasible-domain sizes and cache
//!                                    stats, cross-checked against a full
//!                                    engine sweep (exit 6 on mismatch)
//! repro sweep [DIM] [--threads N] [--chunks M] [--policy P] [--seed S]
//!             [--inject-errors R] [--inject-panics R] [--transient]
//!             [--checkpoint PATH] [--resume] [--every N]
//!             [--deadline SECS] [--stop-after K] [--json PATH] [--verify]
//!                         §X-C       fault-tolerant sweep driver: runs the
//!                                    GEMM space under a fault policy
//!                                    (abort, skip, quarantine, retry[:MAX
//!                                    [:BACKOFF_MS]]), optional seeded fault
//!                                    injection, checkpoint/resume, and a
//!                                    wall-clock deadline; prints the
//!                                    order-sensitive survivor fingerprint
//!                                    and exits 3 when the result is
//!                                    partial (resumable); --verify re-runs
//!                                    the sweep on the in-process compiled
//!                                    tier and exits 6 if survivors or
//!                                    fingerprint differ from the requested
//!                                    engine tier
//! repro distribute [DIM] [--workers N] [--chunks M] [--policy P]
//!                  [--heartbeat-ms MS] [--retry K] [--backoff MS]
//!                  [--restarts R] [--checkpoint PATH] [--resume] [--every N]
//!                  [--stop-after K] [--json PATH] [--chaos-kill-after S]
//!                  [--die-after S] [--stall-after S]
//!                         §X-D       distributed sweep: a supervisor deals
//!                                    level-0 chunk shards to N worker
//!                                    *processes* (this binary re-invoked in
//!                                    its hidden `worker` mode) over the
//!                                    length-prefixed protocol of
//!                                    docs/DISTRIBUTED.md, with heartbeats,
//!                                    retry/backoff re-dealing and a merge
//!                                    that is bit-identical to `repro sweep`
//!                                    at any worker count; the chaos flags
//!                                    kill a worker mid-sweep
//!                                    (--chaos-kill-after, supervisor-side
//!                                    SIGKILL) or make one crash/stall on
//!                                    its Sth shard (--die-after /
//!                                    --stall-after, forwarded worker-side);
//!                                    exit codes match `sweep` (3 partial)
//! repro bench-native [DIM]
//!                         §XI        native-tier ablation: GEMM sweep via
//!                                    the runtime-native C worker vs the
//!                                    in-process compiled engine vs the
//!                                    scalar (--no-batch) engine, with
//!                                    fingerprint equality asserted before
//!                                    any timing is reported
//! repro serve [--addr A] [--threads N] [--executors E] [--chunks M]
//!             [--cache PATH]
//!                         service    sweep-as-a-service HTTP daemon
//!                                    (default 127.0.0.1:7411) with the
//!                                    fingerprint-keyed sub-sweep cache;
//!                                    protocol in docs/PROTOCOL.md; runs
//!                                    until POST /shutdown
//! repro client [DIM] [--addr A] [--runs K] [--expect-speedup F]
//!              [--shutdown]
//!                         service    smoke client: submits the same GEMM
//!                                    sweep K times (default 2), prints
//!                                    per-run wall time and cache traffic,
//!                                    exits 4 if survivor fingerprints
//!                                    differ across runs and 5 if the warm
//!                                    speedup is below --expect-speedup;
//!                                    --shutdown stops the daemon after
//! repro all               everything above with small defaults
//! ```
//!
//! The global `--no-intervals` flag disables the compiled engine's interval
//! block pruning in the subcommands that use it (`headline`, `funnel`,
//! `threads`) — the ablation knob behind the `ablation_intervals` benchmark.
//! Survivor counts are identical either way.
//!
//! The global `--no-congruence` flag keeps interval pruning but disables the
//! congruence (divisibility) half of the reduced product — the knob behind
//! the `ablation_congruence` benchmark. Survivors are identical either way;
//! only `congruence_skips` drops to zero.
//!
//! The global `--no-batch` flag disables the compiled engine's batched lane
//! tier *and* superinstruction fusion, reproducing the pre-batching scalar
//! engine — the ablation knob behind the `ablation_batch` benchmark.
//! Survivors, emission order and pruning statistics are bit-identical either
//! way; only the `lane_evals`/`lanes_masked`/`scalar_fallbacks`/`super_hits`
//! telemetry drops to zero. Note that the adaptive schedule (this binary's
//! default) never builds batch plans, so `--no-batch` only changes behaviour
//! under `--schedule declared` or `--schedule static`.
//!
//! The global `--schedule {declared,static,adaptive}` flag picks the
//! constraint-schedule mode for the same subcommands (default: `adaptive`,
//! the profile-guided mode behind the `ablation_schedule` benchmark). The
//! chosen per-level check order is printed alongside the results; survivors
//! and emission order are identical in every mode. Composes with
//! `--no-intervals`.
//!
//! The global `--engine {walker,compiled,native}` flag picks the evaluation
//! tier for `sweep` (default: `compiled`). `native` lowers the plan to a
//! standalone C chunk worker, compiles it once with the host C compiler
//! (cached on disk across runs), and evaluates level-0 chunks in worker
//! processes — bit-identical survivors, order and fingerprints, with a
//! silent fallback to the in-process engine when no compiler is installed.
//! `walker` runs the serial interpreting backend (no parallel driver, no
//! fault tolerance) as a ground-truth reference.
//!
//! Numbers are machine-relative; the paper's *shape* (ordering, rough
//! factors) is the reproduction target. See EXPERIMENTS.md.

use std::time::Instant;

use beast_bench::{loop_nest_space, lower_default, miters_per_sec};
use beast_codegen::{all_backends, all_toolchains, ToolchainResult};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_cuda::{CcLimits, DeviceProps};
use beast_core::schedule::ScheduleMode;
use beast_engine::checkpoint::{run_checkpointed, CheckpointConfig, JsonValue};
use beast_engine::compiled::{Compiled, EngineOptions, EngineTier};
use beast_engine::distribute::{
    run_distributed, run_distributed_checkpointed, serve_worker, DistributeOptions, WorkerChaos,
};
use beast_engine::fault::{FaultInjector, FaultPolicy};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::service::{ServiceConfig, SweepService};
use beast_engine::telemetry::{ScheduleTelemetry, SweepReport};
use beast_engine::visit::{CountVisitor, FingerprintVisitor};
use beast_engine::vm::{Vm, VmStyle};
use beast_engine::walker::{LoopStyle, Walker};
use beast_gemm::{build_gemm_space, gemm_resolver, GemmSpaceParams};
use beast_gpu_sim::Transpose;
use beast_kernels::{
    autotune, batched_cholesky, batched_cholesky_space, blocked_gemm, cholesky_interleaved,
    cpu_gemm_space, gemm_flops, naive_gemm, point_to_batch_params, point_to_gemm_params,
    BatchParams, BatchStrategy, CacheModel, Dense, GemmParams, InterleavedBatch,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let no_intervals = args.iter().any(|a| a == "--no-intervals");
    args.retain(|a| a != "--no-intervals");
    let no_congruence = args.iter().any(|a| a == "--no-congruence");
    args.retain(|a| a != "--no-congruence");
    let no_batch = args.iter().any(|a| a == "--no-batch");
    args.retain(|a| a != "--no-batch");
    let mut schedule = ScheduleMode::Adaptive;
    if let Some(i) = args.iter().position(|a| a == "--schedule") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("error: --schedule needs a value: declared, static or adaptive");
            std::process::exit(2);
        };
        schedule = value.parse().unwrap_or_else(|e| {
            eprintln!("error: --schedule: {e}");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
    }
    let mut tier = EngineTier::Compiled;
    if let Some(i) = args.iter().position(|a| a == "--engine") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("error: --engine needs a value: walker, compiled or native");
            std::process::exit(2);
        };
        tier = EngineTier::parse(value).unwrap_or_else(|| {
            eprintln!("error: --engine: unknown tier `{value}` (walker, compiled, native)");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
    }
    let mut engine = if no_intervals {
        EngineOptions::no_intervals()
    } else {
        EngineOptions::default()
    };
    engine.congruence = !no_congruence;
    engine.batch = !no_batch;
    engine.schedule = schedule;
    engine.engine = tier;
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let arg_num = |default: u64| -> u64 {
        args.get(1).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    // `--name value` flag lookup (used by the `threads` subcommand).
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match cmd {
        "device" => device(),
        "space" => space(),
        "fig16" => fig16(),
        "fig17" => fig17(arg_num(3_000_000)),
        "fig18" => fig18(arg_num(10_000_000)),
        "fig19" => fig19(arg_num(50_000_000)),
        "headline" => headline(arg_num(32) as i64, engine),
        "funnel" => funnel(arg_num(32) as i64, engine),
        "table1" => table1(),
        "threads" => threads(
            arg_num(48) as i64,
            flag("--threads").and_then(|s| s.parse().ok()),
            flag("--json"),
            engine,
        ),
        "search" => {
            let sampler = match flag("--sampler").as_deref() {
                None | Some("rejection") => beast_search::SamplerKind::Rejection,
                Some("direct") => beast_search::SamplerKind::Direct,
                Some(other) => {
                    eprintln!("error: --sampler: unknown kind `{other}` (rejection, direct)");
                    std::process::exit(2);
                }
            };
            search(
                args.get(1).filter(|s| !s.starts_with("--")).and_then(|s| s.parse().ok()).unwrap_or(32),
                sampler,
            )
        }
        "viz" => viz(arg_num(24) as i64),
        "batched" => batched(arg_num(32) as i64),
        "lint" => lint(
            args.get(1).filter(|s| !s.starts_with("--")).and_then(|s| s.parse().ok()),
            flag("--json"),
        ),
        "count" => count(
            args.get(1).filter(|s| !s.starts_with("--")).and_then(|s| s.parse().ok()),
            flag("--json"),
        ),
        "sweep" => sweep(&args, engine),
        "distribute" => distribute(&args, engine),
        "worker" => worker_mode(&args, engine),
        "bench-native" => bench_native(arg_num(16) as i64, engine),
        "serve" => serve(&args),
        "client" => client(&args),
        "all" => {
            device();
            space();
            fig16();
            fig17(1_000_000);
            fig18(3_000_000);
            fig19(20_000_000);
            headline(24, engine);
            funnel(24, engine);
            lint(None, None);
            count(Some(16), None);
            table1();
            batched(32);
            threads(32, None, None, engine);
            search(24, beast_search::SamplerKind::Rejection);
        }
        other => {
            eprintln!("unknown subcommand `{other}`; see the module docs");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Print the engine's per-level check order (and, for adaptive runs, the
/// final order it converged to).
fn print_schedule(tele: &ScheduleTelemetry) {
    if tele.groups.is_empty() {
        return;
    }
    println!("check schedule ({}):", tele.mode);
    for g in &tele.groups {
        let mut line = format!("  level {}: {}", g.level, g.initial.join(" → "));
        if g.final_order != g.initial {
            line.push_str(&format!("   (final: {})", g.final_order.join(" → ")));
        }
        println!("{line}");
    }
}

// ---------------------------------------------------------------------------
// Fig. 8/9: device information
// ---------------------------------------------------------------------------

fn device() {
    header("Fig. 8/9 — device query and compute-capability lookup (Tesla K40c)");
    let d = DeviceProps::tesla_k40c();
    println!("max_threads_per_block             = {}", d.max_threads_per_block);
    println!("max_threads_dim_x                 = {}", d.max_threads_dim_x);
    println!("max_threads_dim_y                 = {}", d.max_threads_dim_y);
    println!("max_shared_mem_per_block          = {}", d.max_shared_mem_per_block);
    println!("warp_size                         = {}", d.warp_size);
    println!("max_regs_per_block                = {}", d.max_regs_per_block);
    println!("max_threads_per_multi_processor   = {}", d.max_threads_per_multi_processor);
    println!("cudamajor                         = {}", d.cuda_major);
    println!("cudaminor                         = {}", d.cuda_minor);
    println!("max_registers_per_multi_processor = {}", d.max_registers_per_multi_processor);
    println!("max_shmem_per_multi_processor     = {}", d.max_shmem_per_multi_processor);
    println!("float_size                        = {}", d.float_size);
    let cc = CcLimits::for_cc(d.cuda_major, d.cuda_minor).unwrap();
    println!("max_blocks_per_multi_processor    = {}", cc.max_blocks_per_multi_processor);
    println!("max_warps_per_multi_processor     = {}", cc.max_warps_per_multi_processor);
    println!("max_registers_per_thread          = {}", cc.max_registers_per_thread);
}

// ---------------------------------------------------------------------------
// Fig. 10/11: settings + iterators
// ---------------------------------------------------------------------------

fn space() {
    header("Fig. 10/11 — GEMM search space (dgemm_nn on Tesla K40c)");
    let params = GemmSpaceParams::paper_default();
    let s = build_gemm_space(&params).unwrap();
    println!("space: {}", s.name());
    println!(
        "settings: precision={} arithmetic={} trans_a={} trans_b={}",
        params.precision.precision_str(),
        params.precision.arithmetic_str(),
        i32::from(params.transpose.a),
        i32::from(params.transpose.b)
    );
    println!("{} iterators:", s.iters().len());
    for (i, it) in s.iters().iter().enumerate() {
        println!(
            "  [{i:2}] {:<12} level {}  {:?}",
            it.name,
            s.dag().level(s.iter_node(i)),
            it.kind
        );
    }
    println!("{} derived variables, {} constraints", s.deriveds().len(), s.constraints().len());
    for c in s.constraints() {
        println!("  [{:<11}] {}", c.class.to_string(), c.name);
    }
}

// ---------------------------------------------------------------------------
// Fig. 16: dependency DAG
// ---------------------------------------------------------------------------

fn fig16() {
    header("Fig. 16 — dependency DAG of the GEMM space");
    let s = build_gemm_space(&GemmSpaceParams::paper_default()).unwrap();
    let dag = s.dag();
    println!("level sets (iterators ○, derived □, constraints ⬣):");
    for (level, nodes) in dag.level_sets().iter().enumerate() {
        let names: Vec<String> = nodes
            .iter()
            .map(|&v| {
                let marker = match dag.kind(v) {
                    beast_core::dag::NodeKind::Iter => "○",
                    beast_core::dag::NodeKind::Derived => "□",
                    beast_core::dag::NodeKind::Constraint => "⬣",
                };
                format!("{marker}{}", dag.name(v))
            })
            .collect();
        println!("  L{level}: {}", names.join("  "));
    }
    println!("\nGraphviz DOT (pipe into `dot -Tsvg`):\n");
    println!("{}", dag.to_dot(s.name()));
}

// ---------------------------------------------------------------------------
// Fig. 17: interpreter (Python cost model) loop styles
// ---------------------------------------------------------------------------

fn fig17(total: u64) {
    header(&format!(
        "Fig. 17 — AST-walker loop styles (Python cost model), {total} iterations"
    ));
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "style", "1 loop", "2 loops", "3 loops", "4 loops"
    );
    for (label, style) in [
        ("while", LoopStyle::While),
        ("range (list)", LoopStyle::RangeMaterialized),
        ("xrange (lazy)", LoopStyle::RangeLazy),
    ] {
        let mut cells = Vec::new();
        for depth in 1..=4 {
            let (space, iters) = loop_nest_space(depth, total);
            let plan = Plan::new(&space, PlanOptions::default()).unwrap();
            let walker = Walker::new(&plan, style);
            let t0 = Instant::now();
            let out = walker.run(CountVisitor::default()).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out.visitor.count, iters);
            cells.push(format!("{:>9.2} M/s", miters_per_sec(iters, dt)));
        }
        println!("{:<18} {}", label, cells.join(" "));
    }
}

// ---------------------------------------------------------------------------
// Fig. 18: bytecode VM (Lua cost model) loop styles
// ---------------------------------------------------------------------------

fn fig18(total: u64) {
    header(&format!(
        "Fig. 18 — bytecode-VM loop styles (Lua cost model), {total} iterations"
    ));
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "style", "1 loop", "2 loops", "3 loops", "4 loops"
    );
    for (label, style) in [
        ("while", VmStyle::While),
        ("repeat-until", VmStyle::RepeatUntil),
        ("numeric for", VmStyle::NumericFor),
    ] {
        let mut cells = Vec::new();
        for depth in 1..=4 {
            let (space, iters) = loop_nest_space(depth, total);
            let lp = lower_default(&space);
            let vm = Vm::compile(&lp, style);
            let t0 = Instant::now();
            let out = vm.run(CountVisitor::default()).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out.visitor.count, iters);
            cells.push(format!("{:>9.2} M/s", miters_per_sec(iters, dt)));
        }
        println!("{:<18} {}", label, cells.join(" "));
    }
}

// ---------------------------------------------------------------------------
// Fig. 19: compiled backends
// ---------------------------------------------------------------------------

fn fig19(total: u64) {
    header(&format!(
        "Fig. 19 — compiled evaluation, {total} iterations (in-process engine + generated code where toolchains exist)"
    ));
    println!("{:<22} {:>12} {:>12} {:>12} {:>12}", "backend", "1 loop", "2 loops", "3 loops", "4 loops");

    // In-process compiled engine.
    let mut cells = Vec::new();
    for depth in 1..=4 {
        let (space, iters) = loop_nest_space(depth, total);
        let lp = lower_default(&space);
        let compiled = Compiled::new(lp);
        let t0 = Instant::now();
        let out = compiled.run(CountVisitor::default()).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.visitor.count, iters);
        cells.push(format!("{:>9.2} M/s", miters_per_sec(iters, dt)));
    }
    println!("{:<22} {}", "in-process compiled", cells.join(" "));

    // Generated source through real toolchains (includes build time in a
    // separate column-free note; rates measure the run only).
    for (backend, toolchain) in all_backends().iter().zip(all_toolchains()) {
        let mut cells = Vec::new();
        let mut available = true;
        for depth in 1..=4 {
            let (space, iters) = loop_nest_space(depth, total);
            let lp = lower_default(&space);
            let program =
                beast_codegen::lower(&beast_codegen::Program::from_lowered(&lp).unwrap());
            match beast_codegen::generate_and_run(backend.as_ref(), &toolchain, &program) {
                ToolchainResult::Ran { counts, run, .. } => {
                    assert_eq!(counts.survivors, iters);
                    cells.push(format!(
                        "{:>9.2} M/s",
                        miters_per_sec(iters, run.as_secs_f64())
                    ));
                }
                ToolchainResult::Unavailable(_) => {
                    available = false;
                    break;
                }
                ToolchainResult::Failed { stage, detail } => {
                    panic!("{} failed at {stage}: {detail}", backend.language())
                }
            }
        }
        if available {
            println!(
                "{:<22} {}   (run only; excl. compile)",
                format!("generated {}", backend.language()),
                cells.join(" ")
            );
        } else {
            println!("{:<22} (toolchain not installed)", format!("generated {}", backend.language()));
        }
    }
}

// ---------------------------------------------------------------------------
// §XI-B/D headline: GEMM sweep, interpreted vs compiled
// ---------------------------------------------------------------------------

fn headline(dim: i64, engine: EngineOptions) {
    header(&format!(
        "§XI headline — GEMM space sweep on reduced({dim}) device: interpreted vs compiled"
    ));
    println!("(paper: 66 948 s Python → 264 s generated C, ≈253×; shape target: orders of magnitude)");
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let t0 = Instant::now();
    let walker_out = Walker::new(&plan, LoopStyle::RangeLazy)
        .run(CountVisitor::default())
        .unwrap();
    let t_walker = t0.elapsed().as_secs_f64();

    let vm = Vm::compile(&lp, VmStyle::NumericFor);
    let t0 = Instant::now();
    let vm_out = vm.run(CountVisitor::default()).unwrap();
    let t_vm = t0.elapsed().as_secs_f64();

    let compiled = Compiled::with_options(lp.clone(), engine);
    let t0 = Instant::now();
    let comp_out = compiled.run(CountVisitor::default()).unwrap();
    let t_comp = t0.elapsed().as_secs_f64();

    assert_eq!(walker_out.visitor.count, comp_out.visitor.count);
    assert_eq!(vm_out.visitor.count, comp_out.visitor.count);

    println!("survivors: {}", comp_out.visitor.count);
    if comp_out.blocks.subtree_skips > 0 {
        println!(
            "(compiled engine skipped {} subtrees ≈ {} points via interval analysis)",
            comp_out.blocks.subtree_skips, comp_out.blocks.points_skipped
        );
    }
    print_schedule(&compiled.schedule_telemetry(comp_out.schedule.as_deref()));
    println!("{:<26} {:>10} {:>10}", "backend", "seconds", "speedup");
    println!("{:<26} {:>10.3} {:>9.1}x", "walker (Python model)", t_walker, 1.0);
    println!("{:<26} {:>10.3} {:>9.1}x", "VM (Lua model)", t_vm, t_walker / t_vm);
    println!("{:<26} {:>10.3} {:>9.1}x", "compiled (C model)", t_comp, t_walker / t_comp);

    // Generated C through gcc, when available — the paper's actual artifact.
    // Codegen consumes the lowered steps in order, so statically scheduling
    // the plan first makes every backend emit the scheduled check order.
    let mut cg_lp = lp.clone();
    if engine.schedule != ScheduleMode::Declared {
        beast_core::schedule::static_schedule(&mut cg_lp);
    }
    let program = beast_codegen::Program::from_lowered(&cg_lp).unwrap();
    let lowered = beast_codegen::lower(&program);
    let toolchain = beast_codegen::Toolchain::c();
    let backend = beast_codegen::CBackend;
    match beast_codegen::generate_and_run(&backend, &toolchain, &lowered) {
        ToolchainResult::Ran { counts, build, run } => {
            assert_eq!(counts.survivors, comp_out.visitor.count);
            let t_run = run.as_secs_f64();
            println!(
                "{:<26} {:>10.3} {:>9.1}x  (+ {:.2} s gcc -O2 compile)",
                "generated C (gcc)",
                t_run,
                t_walker / t_run,
                build.as_secs_f64()
            );
        }
        ToolchainResult::Unavailable(_) => {
            println!("{:<26} (gcc not installed)", "generated C (gcc)");
        }
        ToolchainResult::Failed { stage, detail } => {
            panic!("generated C failed at {stage}: {detail}");
        }
    }
}

// ---------------------------------------------------------------------------
// Space linter (static analysis, BE001–BE010)
// ---------------------------------------------------------------------------

fn lint(dim: Option<i64>, json_path: Option<String>) {
    let (label, params) = match dim {
        Some(d) => (format!("reduced({d})"), GemmSpaceParams::reduced(d)),
        None => ("paper-default".to_string(), GemmSpaceParams::paper_default()),
    };
    header(&format!("space linter — GEMM space, {label} device"));
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();
    let report = beast_core::analyze::analyze_with_counts(&lp);
    print!("{}", report.render_text());
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write lint JSON to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote lint JSON to {path}");
    }
    if report.has_errors() {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Exact survivor counting (model counting over the lowered plan)
// ---------------------------------------------------------------------------

fn count(dim: Option<i64>, json_path: Option<String>) {
    use beast_core::analyze::Counter;

    let (label, params) = match dim {
        Some(d) => (format!("reduced({d})"), GemmSpaceParams::reduced(d)),
        None => ("paper-default".to_string(), GemmSpaceParams::paper_default()),
    };
    header(&format!("exact survivor count — GEMM space, {label} device"));
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let t0 = Instant::now();
    let mut counter = Counter::new(&lp);
    let survivors = counter.total().unwrap();
    let t_surv = t0.elapsed();
    let stats = counter.stats().clone();

    let t0 = Instant::now();
    let mut tuple_counter = Counter::tuples(&lp);
    let tuples = tuple_counter.total().unwrap();
    let t_tuples = t0.elapsed();

    match survivors {
        Some(n) => println!("survivors {n}  ({:.3}s)", t_surv.as_secs_f64()),
        None => println!(
            "survivors: counting budget exhausted after {:.3}s (enumerated {}, memo entries {})",
            t_surv.as_secs_f64(),
            stats.enumerated,
            stats.cache_misses
        ),
    }
    match tuples {
        Some(n) => println!("tuples    {n}  ({:.3}s)", t_tuples.as_secs_f64()),
        None => println!(
            "tuples:    counting budget exhausted after {:.3}s",
            t_tuples.as_secs_f64()
        ),
    }
    if let (Some(s), Some(t)) = (survivors, tuples) {
        if t > 0 {
            println!("survival rate {:.3e}", s as f64 / t as f64);
        }
    }

    println!(
        "cache: {} hits, {} misses ({} values enumerated, {} whole domains rejected, {} residue classes pruned)",
        stats.cache_hits,
        stats.cache_misses,
        stats.enumerated,
        stats.domains_rejected,
        stats.residue_classes_pruned
    );
    if !stats.levels.is_empty() {
        println!(
            "{:<16} {:>5} {:>9} {:>9} {:>9} {:>9}",
            "level", "depth", "entries", "domain", "feasible", "res-skip"
        );
        for l in &stats.levels {
            println!(
                "{:<16} {:>5} {:>9} {:>9} {:>9} {:>9}",
                l.name, l.depth, l.entries, l.domain_values, l.feasible_values, l.residue_skipped
            );
        }
    }

    // Cross-check the analysis against ground truth: a full sweep of the
    // compiled engine must find exactly as many survivors.
    if let Some(s) = survivors {
        let t0 = Instant::now();
        let swept = Compiled::new(lp.clone())
            .run(CountVisitor::default())
            .unwrap()
            .visitor
            .count as u128;
        println!("sweep cross-check: {swept} survivors ({:.3}s)", t0.elapsed().as_secs_f64());
        if swept != s {
            eprintln!("error: exact count {s} disagrees with engine sweep {swept}");
            std::process::exit(6);
        }
        println!("count matches the engine sweep");
    } else {
        println!("sweep cross-check skipped (no exact count to compare)");
    }

    if let Some(path) = json_path {
        let opt = |v: Option<u128>| v.map_or("null".to_string(), |n| n.to_string());
        let levels: Vec<String> = stats
            .levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"name\":\"{}\",\"depth\":{},\"entries\":{},\"domain_values\":{},\"feasible_values\":{},\"residue_skipped\":{}}}",
                    l.name, l.depth, l.entries, l.domain_values, l.feasible_values, l.residue_skipped
                )
            })
            .collect();
        let rate = match (survivors, tuples) {
            (Some(s), Some(t)) if t > 0 => format!("{:e}", s as f64 / t as f64),
            _ => "null".to_string(),
        };
        let json = format!(
            "{{\"space\":\"{label}\",\"survivors\":{},\"tuples\":{},\"survival_rate\":{rate},\"cache_hits\":{},\"cache_misses\":{},\"enumerated\":{},\"domains_rejected\":{},\"residue_classes_pruned\":{},\"levels\":[{}]}}\n",
            opt(survivors),
            opt(tuples),
            stats.cache_hits,
            stats.cache_misses,
            stats.enumerated,
            stats.domains_rejected,
            stats.residue_classes_pruned,
            levels.join(",")
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write count JSON to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote count JSON to {path}");
    }
}

// ---------------------------------------------------------------------------
// §X-C: fault-tolerant sweep driver (checkpoint/resume, policies, injection)
// ---------------------------------------------------------------------------

fn sweep(args: &[String], engine: EngineOptions) {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    let parsed = |name: &str, default: u64| -> u64 {
        match flag(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} needs an unsigned integer, got `{s}`");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    let rate = |name: &str| -> f64 {
        match flag(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} needs a probability in [0,1], got `{s}`");
                std::process::exit(2);
            }),
            None => 0.0,
        }
    };

    let dim: i64 = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let policy = match flag("--policy") {
        Some(s) => FaultPolicy::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "error: --policy: unknown policy `{s}` (abort, skip, quarantine, retry[:MAX[:BACKOFF_MS]])"
            );
            std::process::exit(2);
        }),
        None => FaultPolicy::Abort,
    };

    let mut opts = ParallelOptions::new(parsed("--threads", 4).max(1) as usize);
    opts.engine = engine;
    opts.chunk_count = parsed("--chunks", 0) as usize;
    opts.fault_policy = policy;
    opts.stop_after_chunks = parsed("--stop-after", 0) as usize;
    if let Some(secs) = flag("--deadline") {
        let secs: f64 = secs.parse().unwrap_or_else(|_| {
            eprintln!("error: --deadline needs seconds, got `{secs}`");
            std::process::exit(2);
        });
        opts.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    let (err_rate, panic_rate) = (rate("--inject-errors"), rate("--inject-panics"));
    if err_rate > 0.0 || panic_rate > 0.0 {
        opts.injector = Some(
            FaultInjector::new(parsed("--seed", 0))
                .error_rate(err_rate)
                .panic_rate(panic_rate)
                .transient(has("--transient")),
        );
    }

    header(&format!(
        "§X-C — fault-tolerant sweep, GEMM space on reduced({dim}) device"
    ));
    println!(
        "threads={} policy={} chunks={}{}",
        opts.threads,
        opts.fault_policy.name(),
        if opts.chunk_count > 0 { opts.chunk_count.to_string() } else { "auto".to_string() },
        match &opts.injector {
            Some(inj) => format!(
                " injector(seed={}, errors={err_rate}, panics={panic_rate})",
                inj.seed()
            ),
            None => String::new(),
        }
    );
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    // The walker tier is the serial ground-truth reference: no parallel
    // driver, so no fault policies, checkpointing or chunk scheduling.
    if engine.engine == EngineTier::Walker {
        if opts.injector.is_some() || flag("--checkpoint").is_some() {
            eprintln!(
                "error: --engine walker is serial-only and composes with \
                 neither fault injection nor checkpointing"
            );
            std::process::exit(2);
        }
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);
        let t = Instant::now();
        let out = walker.run(FingerprintVisitor::default()).unwrap_or_else(|e| {
            eprintln!("error: walker sweep failed: {e}");
            std::process::exit(1);
        });
        println!(
            "walker tier (serial): survivors: {}  fingerprint: {:016x}  elapsed {:.3} s",
            out.visitor.count,
            out.visitor.hash,
            t.elapsed().as_secs_f64()
        );
        return;
    }

    let result = match flag("--checkpoint") {
        Some(path) => {
            let mut ck = CheckpointConfig::new(path);
            ck.resume = has("--resume");
            ck.every_chunks = parsed("--every", ck.every_chunks as u64).max(1) as usize;
            println!(
                "checkpoint: {} (every {} chunk(s){})",
                ck.path.display(),
                ck.every_chunks,
                if ck.resume { ", resuming" } else { "" }
            );
            run_checkpointed(&lp, &opts, &ck, FingerprintVisitor::default)
        }
        None => run_parallel_report(&lp, &opts, FingerprintVisitor::default),
    };
    let (out, report) = result.unwrap_or_else(|e| {
        eprintln!("error: sweep failed: {e}");
        std::process::exit(1);
    });

    println!(
        "survivors: {}  fingerprint: {:016x}",
        out.visitor.count, out.visitor.hash
    );
    println!("\n{}", report.render_text());
    if let Some(path) = flag("--json") {
        let json = format!(
            "{{\"fingerprint\":\"{:016x}\",\"survivors\":{},\"partial\":{},\"report\":{}}}",
            out.visitor.hash,
            out.visitor.count,
            report.partial,
            report.to_json()
        );
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write sweep JSON to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote sweep JSON to {path}");
    }
    if report.partial {
        // Distinct exit code so scripts (and the CI smoke job) can tell a
        // resumable partial result from success (0) and failure (1).
        std::process::exit(3);
    }
    if has("--verify") {
        // Re-run on the in-process compiled tier with otherwise identical
        // options and demand the exact bit-identity contract the native
        // tier is built around. Exit 6 is distinct from partial (3) and the
        // service client's mismatch codes (4/5).
        let mut vopts = ParallelOptions::new(opts.threads);
        vopts.chunk_count = opts.chunk_count;
        vopts.engine = engine;
        vopts.engine.engine = EngineTier::Compiled;
        let (vout, _) = run_parallel_report(&lp, &vopts, FingerprintVisitor::default)
            .unwrap_or_else(|e| {
                eprintln!("error: verification sweep failed: {e}");
                std::process::exit(1);
            });
        if vout.visitor.count != out.visitor.count || vout.visitor.hash != out.visitor.hash {
            eprintln!(
                "verify FAILED: {} tier gave {} survivors / {:016x}, compiled tier gave {} / {:016x}",
                engine.engine, out.visitor.count, out.visitor.hash, vout.visitor.count, vout.visitor.hash
            );
            std::process::exit(6);
        }
        println!(
            "verify: {} tier matches compiled tier ({} survivors, fingerprint {:016x})",
            engine.engine, out.visitor.count, out.visitor.hash
        );
    }
}

// ---------------------------------------------------------------------------
// §X-D: distributed sweep (multi-process supervisor + worker mode)
// ---------------------------------------------------------------------------

/// Replicate the supervisor's engine configuration onto a worker's command
/// line, so the handshake's [`EngineOptions::signature`] check passes.
fn worker_engine_flags(engine: EngineOptions) -> Vec<String> {
    let mut flags = Vec::new();
    if !engine.intervals {
        flags.push("--no-intervals".to_string());
    }
    if !engine.congruence {
        flags.push("--no-congruence".to_string());
    }
    if !engine.batch {
        flags.push("--no-batch".to_string());
    }
    flags.push("--schedule".to_string());
    flags.push(
        match engine.schedule {
            ScheduleMode::Declared => "declared",
            ScheduleMode::Static => "static",
            ScheduleMode::Adaptive => "adaptive",
        }
        .to_string(),
    );
    flags
}

fn distribute(args: &[String], engine: EngineOptions) {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    let parsed = |name: &str, default: u64| -> u64 {
        match flag(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} needs an unsigned integer, got `{s}`");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    let dim: i64 = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let policy = match flag("--policy") {
        Some(s) => FaultPolicy::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "error: --policy: unknown policy `{s}` (abort, skip, quarantine, retry[:MAX[:BACKOFF_MS]])"
            );
            std::process::exit(2);
        }),
        None => FaultPolicy::Abort,
    };

    // The worker command is this very binary in its hidden `worker` mode,
    // with the supervisor's engine configuration replicated so the
    // structural/signature handshake passes. Chaos flags ride along.
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate own executable for worker spawning: {e}");
        std::process::exit(1);
    });
    let mut worker_cmd = vec![exe.to_string_lossy().into_owned(), "worker".to_string(), dim.to_string()];
    worker_cmd.extend(worker_engine_flags(engine));
    for chaos_flag in ["--die-after", "--stall-after"] {
        if let Some(v) = flag(chaos_flag) {
            worker_cmd.push(chaos_flag.to_string());
            worker_cmd.push(v);
        }
    }

    let mut opts = DistributeOptions::new(parsed("--workers", 4).max(1) as usize, worker_cmd);
    opts.engine = engine;
    opts.chunk_count = parsed("--chunks", 0) as usize;
    opts.fault_policy = policy;
    opts.heartbeat = std::time::Duration::from_millis(parsed("--heartbeat-ms", 10_000).max(1));
    opts.shard_retry_max = parsed("--retry", 3) as u32;
    opts.shard_backoff_ms = parsed("--backoff", 50);
    opts.restart_max = parsed("--restarts", 0) as usize;
    opts.stop_after_chunks = parsed("--stop-after", 0) as usize;
    opts.chaos_kill_after = flag("--chaos-kill-after").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --chaos-kill-after needs a shard ordinal, got `{s}`");
            std::process::exit(2);
        })
    });

    header(&format!(
        "§X-D — distributed sweep, GEMM space on reduced({dim}) device"
    ));
    println!(
        "workers={} policy={} chunks={} heartbeat={}ms retry={} backoff={}ms",
        opts.workers,
        opts.fault_policy.name(),
        if opts.chunk_count > 0 { opts.chunk_count.to_string() } else { "auto".to_string() },
        opts.heartbeat.as_millis(),
        opts.shard_retry_max,
        opts.shard_backoff_ms,
    );
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let result = match flag("--checkpoint") {
        Some(path) => {
            let mut ck = CheckpointConfig::new(path);
            ck.resume = has("--resume");
            ck.every_chunks = parsed("--every", ck.every_chunks as u64).max(1) as usize;
            println!(
                "checkpoint: {} (every {} chunk(s){})",
                ck.path.display(),
                ck.every_chunks,
                if ck.resume { ", resuming" } else { "" }
            );
            run_distributed_checkpointed(&lp, &opts, &ck, FingerprintVisitor::default)
        }
        None => run_distributed(&lp, &opts, FingerprintVisitor::default),
    };
    let (out, report) = result.unwrap_or_else(|e| {
        eprintln!("error: distributed sweep failed: {e}");
        std::process::exit(1);
    });

    println!(
        "survivors: {}  fingerprint: {:016x}",
        out.visitor.count, out.visitor.hash
    );
    println!("\n{}", report.render_text());
    if let Some(path) = flag("--json") {
        let json = format!(
            "{{\"fingerprint\":\"{:016x}\",\"survivors\":{},\"partial\":{},\"report\":{}}}",
            out.visitor.hash,
            out.visitor.count,
            report.partial,
            report.to_json()
        );
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write distribute JSON to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote distribute JSON to {path}");
    }
    if report.partial {
        std::process::exit(3);
    }
}

/// Hidden worker mode: serve protocol-v1 shards for the GEMM space over
/// stdin/stdout until `bye` or EOF. Spawned by `repro distribute`; all
/// diagnostics go to stderr (stdout carries frames only).
fn worker_mode(args: &[String], engine: EngineOptions) {
    let flag = |name: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let dim: i64 = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let chaos = WorkerChaos { die_after: flag("--die-after"), stall_after: flag("--stall-after") };
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    if let Err(e) = serve_worker(&lp, engine, FingerprintVisitor::default, &chaos, stdin, stdout) {
        eprintln!("worker error: {e}");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// §XI: native-tier ablation (runtime-generated C vs in-process engines)
// ---------------------------------------------------------------------------

fn bench_native(dim: i64, engine: EngineOptions) {
    header(&format!(
        "§XI — native-tier ablation, GEMM sweep on reduced({dim}) device"
    ));
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let run_tier = |tier_engine: EngineOptions| {
        let mut opts = ParallelOptions::new(1);
        opts.engine = tier_engine;
        let t = Instant::now();
        let (out, report) =
            run_parallel_report(&lp, &opts, FingerprintVisitor::default).unwrap_or_else(|e| {
                eprintln!("error: sweep failed: {e}");
                std::process::exit(1);
            });
        (t.elapsed().as_secs_f64(), out.visitor, report)
    };

    let mut native_engine = engine;
    native_engine.engine = EngineTier::Native;
    let mut compiled_engine = engine;
    compiled_engine.engine = EngineTier::Compiled;
    let mut scalar_engine = compiled_engine;
    scalar_engine.batch = false;

    // Warmup run: populates the on-disk artifact cache so the timed native
    // run measures dispatch + evaluation, not the one-off gcc invocation.
    let (_, warm_fp, warm_report) = run_tier(native_engine);
    match warm_report.native {
        Some(n) => println!(
            "native worker ready: compile {} ms{}, {} chunk(s) native / {} fallback in warmup",
            n.compile_ms,
            if n.artifact_cache_hits > 0 { " (artifact cache hit)" } else { "" },
            n.chunks_native,
            n.chunks_fallback
        ),
        None => println!(
            "native tier unavailable (no C compiler on PATH?) — the `native` \
             row below re-measures the in-process engine"
        ),
    }

    let (t_native, fp_native, report_native) = run_tier(native_engine);
    let (t_compiled, fp_compiled, _) = run_tier(compiled_engine);
    let (t_scalar, fp_scalar, _) = run_tier(scalar_engine);

    // Bit-identity is asserted before a single number is reported: a timing
    // table over divergent sweeps would be meaningless.
    for (label, fp) in [
        ("native warmup", &warm_fp),
        ("native", &fp_native),
        ("scalar (--no-batch)", &fp_scalar),
    ] {
        assert_eq!(
            (fp.count, fp.hash),
            (fp_compiled.count, fp_compiled.hash),
            "{label} diverged from the compiled tier"
        );
    }
    println!(
        "fingerprints agree across all tiers: {} survivors, {:016x}\n",
        fp_compiled.count, fp_compiled.hash
    );

    let rate = |t: f64| (fp_compiled.count as f64) / t / 1e3;
    println!("{:<22} {:>10} {:>14} {:>10}", "engine", "time (s)", "survivors/ms", "vs native");
    for (label, t) in [
        ("native (C worker)", t_native),
        ("compiled (in-proc)", t_compiled),
        ("scalar (--no-batch)", t_scalar),
    ] {
        println!(
            "{:<22} {:>10.3} {:>14.1} {:>9.2}x",
            label,
            t,
            rate(t),
            t / t_native
        );
    }
    if let Some(n) = report_native.native {
        println!(
            "\nnative run: {} chunk(s) in worker processes, {} row(s) streamed, {} fallback",
            n.chunks_native, n.rows_streamed, n.chunks_fallback
        );
    }
}

// ---------------------------------------------------------------------------
// §VI: pruning funnel
// ---------------------------------------------------------------------------

fn funnel(dim: i64, engine: EngineOptions) {
    header(&format!("§VI — pruning funnel, GEMM space on reduced({dim}) device"));
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();
    let compiled = Compiled::with_options(lp, engine);
    let out = compiled.run(CountVisitor::default()).unwrap();
    println!("{}", out.stats.render_funnel(&space));
    if out.blocks.subtree_skips > 0 || out.blocks.checks_elided > 0 {
        println!(
            "block pruning: {} subtree skips ({} by congruence, ≥ {} points never enumerated), {} checks elided",
            out.blocks.subtree_skips,
            out.blocks.congruence_skips,
            out.blocks.points_skipped,
            out.blocks.checks_elided
        );
    }
    print_schedule(&compiled.schedule_telemetry(out.schedule.as_deref()));
}

// ---------------------------------------------------------------------------
// Table I: application-level gains
// ---------------------------------------------------------------------------

fn table1() {
    header("Table I — performance levels achieved with the BEAST autotuner");
    println!("(paper: GEMM 80% of peak; small batched up to 1000%; medium batched up to 300%)\n");

    // Row 1: GEMM — autotune the simulated Kepler kernel; report the best
    // configuration's fraction of the device's model peak.
    let params = GemmSpaceParams::reduced(64);
    let outcome = beast_gemm::tune_gemm(&params, 1, 2).unwrap();
    let best = outcome.best.first().expect("survivors exist");
    println!(
        "GEMM (simulated Kepler dgemm_nn): best {:.0} GFLOP/s = {:.0}% of model peak ({:.0} GFLOP/s), {} survivors swept",
        best.perf.gflops,
        100.0 * best.perf.fraction_of_peak,
        outcome.peak_gflops,
        outcome.survivors
    );
    let err = beast_gemm::verify_config(&best.config, Transpose::default());
    println!("  winning configuration numerically verified: max error {err:.2e}\n");

    // Rows 2–3: batched Cholesky, small and medium, on real CPU hardware.
    // Baseline: a general-purpose library-style kernel (blocked for large
    // matrices, one matrix at a time) applied as-is to the batch. Tuned:
    // the BEAST-autotuned strategy. Timing covers the factorization with
    // batch-resident data (layout conversion excluded, as the paper's GPU
    // numbers exclude PCIe transfer); see EXPERIMENTS.md.
    for (label, n, count) in [
        ("small", 16usize, 1024usize),
        ("small", 32, 512),
        ("medium", 128, 48),
        ("medium", 256, 12),
    ] {
        let (baseline, tuned, strategy) = tune_batched_cholesky(n, count);
        println!(
            "Batched Cholesky ({label}, n={n} ×{count}): baseline {:>8.3} ms, tuned {:>8.3} ms → {:.0}% improvement  [{strategy}]",
            baseline * 1e3,
            tuned * 1e3,
            100.0 * (baseline / tuned - 1.0)
        );
    }
    println!();

    // Row 4 (methodology demo): the CPU GEMM substrate tuned end-to-end.
    let (naive_s, tuned_s, params_str, n) = tune_cpu_gemm();
    let gf = gemm_flops(n, n, n) as f64 / 1e9;
    println!(
        "CPU GEMM substrate (n={n}): naive {:.1} ms ({:.2} GF/s) → tuned {:.1} ms ({:.2} GF/s), {:.1}x  [{params_str}]",
        naive_s * 1e3,
        gf / naive_s,
        tuned_s * 1e3,
        gf / tuned_s,
        naive_s / tuned_s
    );
}

/// Autotune batched Cholesky for one size; returns (baseline s, tuned s,
/// winning strategy description).
fn tune_batched_cholesky(n: usize, count: usize) -> (f64, f64, String) {
    let mut rng = StdRng::seed_from_u64(7);
    let mats: Vec<Dense> = (0..count).map(|_| Dense::random_spd(n, &mut rng)).collect();
    let gemm = GemmParams::default_params();

    // Library-style baseline: blocked kernel configured for large matrices,
    // one matrix at a time.
    let baseline_params = BatchParams {
        strategy: BatchStrategy::PerMatrixBlocked { block: 64 },
        threads: 1,
        chunk: 1,
    };
    let baseline = best_of(3, || {
        let mut work = mats.clone();
        let t0 = Instant::now();
        batched_cholesky(&mut work, &baseline_params, &gemm).unwrap();
        t0.elapsed().as_secs_f64()
    });

    // BEAST-tuned: enumerate the strategy space, time each survivor.
    let space = batched_cholesky_space(n as i64, count as i64, 1).unwrap();
    let outcome = autotune(&space, 256, 2, |point| {
        let params = point_to_batch_params(point);
        match params.strategy {
            BatchStrategy::Interleaved { width } => {
                // Batch-resident layout: pack outside the timed region.
                let mut packs: Vec<InterleavedBatch> =
                    mats.chunks(width.max(1)).map(InterleavedBatch::pack).collect();
                let t0 = Instant::now();
                for p in &mut packs {
                    cholesky_interleaved(p).unwrap();
                }
                t0.elapsed()
            }
            _ => {
                let mut work = mats.clone();
                let t0 = Instant::now();
                batched_cholesky(&mut work, &params, &gemm).unwrap();
                t0.elapsed()
            }
        }
    })
    .unwrap();
    let best = outcome.best().expect("survivors");
    let tuned = best.duration.as_secs_f64();
    let strategy = format!("{:?}", point_to_batch_params(&best.point).strategy);
    (baseline, tuned, strategy)
}

/// Autotune the CPU GEMM blocking space; returns (naive s, tuned s, params,
/// n).
fn tune_cpu_gemm() -> (f64, f64, String, usize) {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(11);
    let a = Dense::random(n, n, &mut rng);
    let b = Dense::random(n, n, &mut rng);

    let naive = best_of(2, || {
        let mut c = Dense::zeros(n, n);
        let t0 = Instant::now();
        naive_gemm(&a, &b, &mut c);
        t0.elapsed().as_secs_f64()
    });

    let space = cpu_gemm_space(CacheModel::typical()).unwrap();
    let outcome = autotune(&space, 64, 2, |point| {
        let params = point_to_gemm_params(point);
        let mut c = Dense::zeros(n, n);
        let t0 = Instant::now();
        blocked_gemm(&params, &a, &b, &mut c);
        t0.elapsed()
    })
    .unwrap();
    let best = outcome.best().expect("survivors");
    let params = point_to_gemm_params(&best.point);
    (
        naive,
        best.duration.as_secs_f64(),
        format!("{params:?}"),
        n,
    )
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

// ---------------------------------------------------------------------------
// Reference [5]: the second model problem — batched Cholesky on the GPU model
// ---------------------------------------------------------------------------

fn batched(n: i64) {
    header(&format!(
        "ref [5] — batched Cholesky GPU space, n={n}, batch=1024, Tesla K40c model"
    ));
    use beast_gemm::{
        build_batched_cholesky_space, tune_batched_cholesky, BatchedCholeskyParams,
    };
    let params = BatchedCholeskyParams::small(n, 1024);
    let space = build_batched_cholesky_space(&params).unwrap();
    let (survivors, stats) = beast_engine::sweep::count(&space).unwrap();
    println!(
        "{} iterators, {} constraints; {survivors} survivors, {:.1}% of evaluated tuples pruned",
        space.iters().len(),
        space.constraints().len(),
        100.0 * stats.pruned_fraction()
    );
    let best = tune_batched_cholesky(&params, 5).unwrap();
    println!("top configurations (model matrices/µs):");
    for (score, config) in &best {
        println!("  {score:>8.2}  {config:?}");
    }
}

// ---------------------------------------------------------------------------
// Visualization (paper companion work [7])
// ---------------------------------------------------------------------------

fn viz(dim: i64) {
    header(&format!("[7] — pruning visualizations, GEMM on reduced({dim}) device"));
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();
    let out = Compiled::new(lp).run(CountVisitor::default()).unwrap();
    let funnel = beast_engine::viz::funnel_svg(&out.stats, &space);
    let radial = beast_engine::viz::radial_svg(&out.stats, &space);
    let dot = space.dag().to_dot(space.name());
    for (name, contents) in
        [("funnel.svg", funnel), ("radial.svg", radial), ("dag.dot", dot)]
    {
        std::fs::write(name, &contents).expect("write visualization");
        println!("wrote {name} ({} bytes)", contents.len());
    }
}

// ---------------------------------------------------------------------------
// §XII extension: statistical search methods
// ---------------------------------------------------------------------------

fn search(dim: i64, sampler: beast_search::SamplerKind) {
    header(&format!(
        "§XII extension — statistical search vs exhaustive, GEMM on reduced({dim}) device"
    ));
    println!("sampler: {sampler:?}");
    use beast_engine::point::{Point, PointRef};
    use beast_gemm::pointref_to_config;
    use beast_gpu_sim::estimate;
    use beast_search::{hill_climb, random_search, simulated_annealing, SearchBudget};

    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let t0 = Instant::now();
    let exhaustive = beast_gemm::tune_gemm(&params, 1, 2).unwrap();
    let t_exh = t0.elapsed();
    let exhaustive_best = exhaustive.best[0].perf.gflops;

    let device = params.device.clone();
    let cc = params.cc();
    let precision = params.precision;
    let score = move |p: &Point| {
        let names: Vec<std::sync::Arc<str>> = p.names().to_vec();
        let slots: Vec<i64> = p.values().iter().map(|v| v.as_int().unwrap()).collect();
        let view = PointRef::Slots { names: &names, slots: &slots };
        estimate(&device, &cc, &pointref_to_config(&view), precision).gflops
    };

    let budget = SearchBudget { evaluations: 300, attempts_per_sample: 100_000, sampler };
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>9}",
        "method", "evals", "seconds", "best GFLOP/s", "vs exh."
    );
    println!(
        "{:<22} {:>12} {:>12.3} {:>14.1} {:>8.1}%",
        "exhaustive",
        exhaustive.survivors,
        t_exh.as_secs_f64(),
        exhaustive_best,
        100.0
    );
    let run = |name: &str, f: &dyn Fn() -> beast_search::SearchOutcome| {
        let t0 = Instant::now();
        let out = f();
        println!(
            "{:<22} {:>12} {:>12.3} {:>14.1} {:>8.1}%",
            name,
            out.evaluations,
            t0.elapsed().as_secs_f64(),
            out.best_score(),
            100.0 * out.best_score() / exhaustive_best
        );
    };
    run("random search", &|| {
        random_search(&lp, StdRng::seed_from_u64(1), budget, score.clone()).unwrap()
    });
    run("hill climbing", &|| {
        hill_climb(&lp, StdRng::seed_from_u64(1), budget, 25, score.clone()).unwrap()
    });
    run("simulated annealing", &|| {
        simulated_annealing(
            &lp,
            StdRng::seed_from_u64(1),
            budget,
            exhaustive_best / 10.0,
            0.995,
            score.clone(),
        )
        .unwrap()
    });
}

// ---------------------------------------------------------------------------
// §X-B: multithreaded scaling
// ---------------------------------------------------------------------------

fn threads(dim: i64, only: Option<usize>, json_path: Option<String>, engine: EngineOptions) {
    header(&format!("§X-B — multithreaded sweep of the GEMM space, reduced({dim}) device"));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(host has {cores} hardware thread(s); scaling saturates there)");
    let params = GemmSpaceParams::reduced(dim);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let counts: Vec<usize> = match only {
        Some(n) => vec![n.max(1)],
        None => vec![1, 2, 4, 8],
    };
    let mut reports = Vec::new();
    let mut t1 = 0.0;
    for &threads in &counts {
        let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        let dt = report.elapsed.as_secs_f64();
        if threads == counts[0] {
            t1 = dt; // speedups are relative to the first count run
        }
        println!(
            "{threads:>2} thread(s): {dt:>8.3} s  speedup {:>5.2}x  imbalance {:>4.2}  \
             {} chunk(s) of {}  ({} survivors)",
            t1 / dt,
            report.imbalance(),
            report.chunks,
            report.chunk_len,
            out.visitor.count
        );
        reports.push(report);
    }
    if only.is_some() {
        // Single-count mode: print the full telemetry tables.
        println!("\n{}", reports[0].render_text());
    }
    if let Some(path) = json_path {
        let json = match reports.as_slice() {
            [one] => one.to_json(),
            many => {
                let items: Vec<String> = many.iter().map(SweepReport::to_json).collect();
                format!("[{}]", items.join(","))
            }
        };
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write SweepReport JSON to {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote SweepReport JSON to {path}");
    }
}

// ---------------------------------------------------------------------------
// Sweep-as-a-service: the daemon and its smoke client
// ---------------------------------------------------------------------------

fn serve(args: &[String]) {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parsed = |name: &str, default: usize| -> usize {
        match flag(name) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} needs an unsigned integer, got `{s}`");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    let cfg = ServiceConfig {
        addr: flag("--addr").unwrap_or_else(|| "127.0.0.1:7411".to_string()),
        threads: parsed("--threads", 4).max(1),
        executors: parsed("--executors", 2).max(1),
        chunk_count: parsed("--chunks", 32).max(1),
        cache_path: flag("--cache").map(std::path::PathBuf::from),
    };
    let cache_note = match &cfg.cache_path {
        Some(p) => format!(", cache file {}", p.display()),
        None => ", in-memory cache".to_string(),
    };
    let service = SweepService::start(cfg, gemm_resolver()).unwrap_or_else(|e| {
        eprintln!("error: cannot start service: {e}");
        std::process::exit(1);
    });
    println!(
        "repro serve: listening on http://{}{cache_note} (POST /shutdown to stop)",
        service.addr()
    );
    if let Err(e) = service.wait() {
        eprintln!("error: service shutdown: {e}");
        std::process::exit(1);
    }
    println!("repro serve: stopped");
}

/// One HTTP/1.1 exchange against the daemon: send, read to EOF (the server
/// always closes), split off the body, de-chunk it if necessary.
fn http_call(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("send: {e}"))?;
    stream.write_all(body.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("receive: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in: {raw:.60}"))?;
    let (headers, payload) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no body separator".to_string())?;
    let body = if headers.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        let mut out = String::new();
        let mut rest = payload;
        loop {
            let (size_line, tail) =
                rest.split_once("\r\n").ok_or_else(|| "truncated chunk size".to_string())?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size `{size_line}`"))?;
            if size == 0 {
                break;
            }
            if tail.len() < size {
                return Err("truncated chunk body".to_string());
            }
            out.push_str(&tail[..size]);
            rest = tail[size..].strip_prefix("\r\n").unwrap_or(&tail[size..]);
        }
        out
    } else {
        payload.to_string()
    };
    Ok((status, body))
}

fn client(args: &[String]) {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    let dim: i64 = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let runs: usize = flag("--runs").and_then(|s| s.parse().ok()).unwrap_or(2).max(1);
    let expect_speedup: Option<f64> = flag("--expect-speedup").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --expect-speedup needs a number, got `{s}`");
            std::process::exit(2);
        })
    });
    let die = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(1);
    };

    header(&format!("sweep service smoke — gemm reduced({dim}) at http://{addr}"));
    let request = format!("{{\"space\":{{\"kind\":\"gemm\",\"reduced\":{dim}}},\"wait\":true}}");
    let mut fingerprints: Vec<String> = Vec::new();
    let mut elapsed: Vec<f64> = Vec::new();
    for run in 1..=runs {
        let (status, body) = http_call(&addr, "POST", "/sweeps", &request)
            .unwrap_or_else(|e| die(e));
        if status != 200 {
            die(format!("run {run}: HTTP {status}: {body}"));
        }
        let doc = JsonValue::parse(&body)
            .unwrap_or_else(|e| die(format!("run {run}: malformed response: {e}")));
        if doc.get("state").and_then(JsonValue::as_str) != Some("done") {
            die(format!("run {run}: sweep did not complete: {body}"));
        }
        let num = |key: &str| -> u64 {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .unwrap_or_else(|| die(format!("run {run}: response missing `{key}`")))
        };
        let secs = match doc.get("elapsed_s") {
            Some(JsonValue::Float(f)) => *f,
            Some(JsonValue::Int(i)) => *i as f64,
            _ => die(format!("run {run}: response missing `elapsed_s`")),
        };
        let fp = doc
            .get("fingerprint")
            .and_then(|f| f.get("hash"))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| die(format!("run {run}: response missing fingerprint")));
        println!(
            "run {run}: survivors {}  elapsed {secs:.3} s  cache {} hit(s) / {} miss(es)  \
             fingerprint {fp:016x}",
            num("survivors"),
            num("cache_hits"),
            num("cache_misses"),
        );
        fingerprints.push(format!("{fp:016x}"));
        elapsed.push(secs.max(1e-9));
    }

    let (status, stats) = http_call(&addr, "GET", "/cache/stats", "").unwrap_or_else(|e| die(e));
    if status == 200 {
        println!("cache stats: {stats}");
    }

    if fingerprints.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("error: fingerprints differ across runs: {fingerprints:?}");
        std::process::exit(4);
    }
    println!("fingerprints identical across {runs} run(s): {}", fingerprints[0]);
    if runs > 1 {
        let speedup = elapsed[0] / elapsed[runs - 1];
        println!("warm speedup: {speedup:.1}x (cold {:.3} s, warm {:.3} s)", elapsed[0], elapsed[runs - 1]);
        if let Some(want) = expect_speedup {
            if speedup < want {
                eprintln!("error: warm speedup {speedup:.1}x below required {want}x");
                std::process::exit(5);
            }
        }
    }
    if has("--shutdown") {
        let (status, _) = http_call(&addr, "POST", "/shutdown", "").unwrap_or_else(|e| die(e));
        println!("shutdown: HTTP {status}");
    }
}
