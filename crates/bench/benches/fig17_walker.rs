//! Fig. 17: interpreter (Python cost model) loop-style throughput across
//! nest depths 1–4. The paper's finding: `while` ≈ 30% slower than `range`,
//! `xrange` fastest (no list materialization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beast_bench::loop_nest_space;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::visit::CountVisitor;
use beast_engine::walker::{LoopStyle, Walker};

const TOTAL: u64 = 200_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_walker");
    group.sample_size(10);
    for (label, style) in [
        ("while", LoopStyle::While),
        ("range", LoopStyle::RangeMaterialized),
        ("xrange", LoopStyle::RangeLazy),
    ] {
        for depth in 1..=4usize {
            let (space, iters) = loop_nest_space(depth, TOTAL);
            let plan = Plan::new(&space, PlanOptions::default()).unwrap();
            group.throughput(Throughput::Elements(iters));
            group.bench_with_input(
                BenchmarkId::new(label, depth),
                &plan,
                |b, plan| {
                    let walker = Walker::new(plan, style);
                    b.iter(|| {
                        let out = walker.run(CountVisitor::default()).unwrap();
                        assert_eq!(out.visitor.count, iters);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
