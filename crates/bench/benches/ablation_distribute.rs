//! Scaling record for the distributed supervisor: `repro distribute` at
//! 1, 2 and 4 worker processes on the reduced(32) GEMM space.
//!
//! Before any timing, the merge contract is asserted: every worker count
//! must reproduce the serial compiled engine's survivor count and
//! order-sensitive fingerprint bit for bit — a distributed sweep is sold as
//! *the same sweep*, merely sharded across processes. Timings use the
//! interleaved-median discipline of the other ablation benches and are
//! appended to `BENCH_sweep.json` as a `distribute_scaling` record.
//!
//! The ≥2× speedup expectation at 4 workers only holds with ≥4 hardware
//! threads; on smaller machines (CI containers are often single-core) the
//! numbers are still recorded, but the assertion is skipped — scaling
//! *cannot* happen without cores, and the bit-identity contract is the part
//! that must hold everywhere.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::Compiled;
use beast_engine::distribute::{run_distributed, DistributeOptions};
use beast_engine::visit::FingerprintVisitor;
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 32;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Pinned grid: enough chunks that 4 workers stay busy, identical across
/// worker counts so the shard protocol (not the grid) is the only variable.
const CHUNKS: usize = 64;

fn lower() -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(DIM)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

fn opts(workers: usize) -> DistributeOptions {
    let exe = env!("CARGO_BIN_EXE_repro").to_string();
    // `repro` defaults to the adaptive schedule; this harness uses
    // `EngineOptions::default()` (declared), so pin the worker to match or
    // the handshake's signature check degrades every slot to in-process.
    let mut opts = DistributeOptions::new(
        workers,
        vec![exe, "worker".to_string(), DIM.to_string(), "--schedule".to_string(), "declared".to_string()],
    );
    opts.chunk_count = CHUNKS;
    opts
}

/// Median of `n` interleaved timed runs per worker count.
fn interleaved_medians(lp: &LoweredPlan, n: usize) -> Vec<f64> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); WORKER_COUNTS.len()];
    for _ in 0..n {
        for (i, workers) in WORKER_COUNTS.iter().enumerate() {
            let start = std::time::Instant::now();
            run_distributed(lp, &opts(*workers), FingerprintVisitor::new).unwrap();
            samples[i].push(start.elapsed().as_secs_f64());
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let lp = lower();
    let serial = Compiled::new(lp.clone()).run(FingerprintVisitor::new()).unwrap();

    // Bit-identity first: no timing is reported for a merge that diverges.
    for workers in WORKER_COUNTS {
        let (out, report) = run_distributed(&lp, &opts(workers), FingerprintVisitor::new).unwrap();
        assert_eq!(
            (out.visitor.count, out.visitor.hash),
            (serial.visitor.count, serial.visitor.hash),
            "reduced({DIM}): distributed fingerprint diverged at {workers} worker(s)"
        );
        assert!(!report.partial);
        assert_eq!(
            report.fault_counters.workers_spawned, workers as u64,
            "clean run should spawn exactly one process per slot"
        );
    }
    eprintln!(
        "gemm reduced({DIM}): {} survivors, fingerprints identical at {WORKER_COUNTS:?} workers",
        serial.visitor.count
    );

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let meds = interleaved_medians(&lp, 5);
    let speedup = meds[0] / meds[2];
    eprintln!(
        "gemm reduced({DIM}): 1 worker {:.4} s, 2 workers {:.4} s, 4 workers {:.4} s \
         ({speedup:.2}x at 4, {cores} core(s))",
        meds[0], meds[1], meds[2]
    );
    // Scaling needs hardware to scale onto; the contract everywhere else is
    // bit-identity, which was asserted above.
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4 workers on {cores} cores should be >=2x over 1 worker, got {speedup:.2}x"
        );
    } else {
        eprintln!("only {cores} core(s): recording timings, skipping the >=2x assertion");
    }

    let mut group = c.benchmark_group("ablation_distribute");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(format!("workers{workers}"), |bench| {
            bench.iter(|| {
                run_distributed(&lp, &opts(workers), FingerprintVisitor::new)
                    .unwrap()
                    .0
                    .visitor
                    .count
            });
        });
    }
    group.finish();

    // --- Median record appended to BENCH_sweep.json. ----------------------
    let record = format!(
        "\n{{\"distribute_scaling\":{{\"gemm_reduced{DIM}_workers1_s\":{:.6},\
         \"gemm_reduced{DIM}_workers2_s\":{:.6},\"gemm_reduced{DIM}_workers4_s\":{:.6},\
         \"speedup_4x\":{:.3},\"cores\":{cores}}}}}",
        meds[0], meds[1], meds[2], speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::OpenOptions::new().append(true).open(path) {
        Ok(mut f) => {
            use std::io::Write as _;
            if let Err(e) = f.write_all(record.as_bytes()) {
                eprintln!("cannot append to {path}: {e}");
            } else {
                eprintln!("appended distribute_scaling record to {path}");
            }
        }
        Err(e) => {
            eprintln!("{path} not found ({e}); run the gemm_sweep bench first to create it")
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
