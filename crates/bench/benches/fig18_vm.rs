//! Fig. 18: bytecode-VM (Lua cost model) loop-style throughput across nest
//! depths. The paper's finding: `while` slowest, `repeat-until` middle,
//! numeric `for` fastest (≈5× over Python overall).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beast_bench::{loop_nest_space, lower_default};
use beast_engine::visit::CountVisitor;
use beast_engine::vm::{Vm, VmStyle};

const TOTAL: u64 = 1_000_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_vm");
    group.sample_size(10);
    for (label, style) in [
        ("while", VmStyle::While),
        ("repeat_until", VmStyle::RepeatUntil),
        ("numeric_for", VmStyle::NumericFor),
    ] {
        for depth in 1..=4usize {
            let (space, iters) = loop_nest_space(depth, TOTAL);
            let lp = lower_default(&space);
            let vm = Vm::compile(&lp, style);
            group.throughput(Throughput::Elements(iters));
            group.bench_with_input(BenchmarkId::new(label, depth), &vm, |b, vm| {
                b.iter(|| {
                    let out = vm.run(CountVisitor::default()).unwrap();
                    assert_eq!(out.visitor.count, iters);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
