//! Fig. 19: compiled evaluation throughput across nest depths — the
//! in-process compiled engine (the generated-C analog). The paper's finding:
//! compiled languages are orders of magnitude faster than the interpreters,
//! and deeper nests run slightly faster than a single flat loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beast_bench::{loop_nest_space, lower_default};
use beast_engine::compiled::Compiled;
use beast_engine::visit::CountVisitor;

const TOTAL: u64 = 4_000_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_compiled");
    group.sample_size(10);
    for depth in 1..=4usize {
        let (space, iters) = loop_nest_space(depth, TOTAL);
        let lp = lower_default(&space);
        let compiled = Compiled::new(lp);
        group.throughput(Throughput::Elements(iters));
        group.bench_with_input(
            BenchmarkId::new("compiled", depth),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let out = compiled.run(CountVisitor::default()).unwrap();
                    assert_eq!(out.visitor.count, iters);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
