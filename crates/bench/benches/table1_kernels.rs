//! Table I: tuned vs baseline kernels on real CPU hardware — naive vs
//! blocked GEMM, and library-style vs tuned batched Cholesky at small and
//! medium sizes. The paper's shape: tuned wins everywhere; the batched
//! small-matrix factor is the largest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use beast_kernels::{
    batched_cholesky, blocked_gemm, cholesky_interleaved, naive_gemm, BatchParams,
    BatchStrategy, Dense, GemmParams, InterleavedBatch,
};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_gemm");
    group.sample_size(10);
    let n = 192;
    let mut rng = StdRng::seed_from_u64(1);
    let a = Dense::random(n, n, &mut rng);
    let b = Dense::random(n, n, &mut rng);

    group.bench_function("naive", |bench| {
        bench.iter(|| {
            let mut c = Dense::zeros(n, n);
            naive_gemm(&a, &b, &mut c);
            c.get(0, 0)
        });
    });
    group.bench_function("tuned_blocked", |bench| {
        let params = GemmParams { tile_m: 64, tile_n: 64, tile_k: 64, unroll: 4 };
        bench.iter(|| {
            let mut c = Dense::zeros(n, n);
            blocked_gemm(&params, &a, &b, &mut c);
            c.get(0, 0)
        });
    });
    group.finish();
}

fn bench_batched_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_batched_cholesky");
    group.sample_size(10);
    for (n, count) in [(16usize, 256usize), (128, 12)] {
        let mut rng = StdRng::seed_from_u64(2);
        let mats: Vec<Dense> = (0..count).map(|_| Dense::random_spd(n, &mut rng)).collect();
        let gemm = GemmParams::default_params();

        // Library-style baseline: blocked kernel sized for large matrices.
        let baseline = BatchParams {
            strategy: BatchStrategy::PerMatrixBlocked { block: 64 },
            threads: 1,
            chunk: 1,
        };
        group.bench_with_input(
            BenchmarkId::new("baseline_library", n),
            &mats,
            |bench, mats| {
                bench.iter(|| {
                    let mut work = mats.clone();
                    batched_cholesky(&mut work, &baseline, &gemm).unwrap();
                    work.len()
                });
            },
        );

        // Tuned: interleaved for small sizes, right-sized blocking for
        // medium (the winners the autotuner finds; see `repro table1`).
        if n <= 32 {
            group.bench_with_input(
                BenchmarkId::new("tuned_interleaved", n),
                &mats,
                |bench, mats| {
                    let mut packs: Vec<InterleavedBatch> =
                        mats.chunks(64).map(InterleavedBatch::pack).collect();
                    bench.iter(|| {
                        for p in &mut packs {
                            cholesky_interleaved(p).unwrap();
                        }
                        packs.len()
                    });
                },
            );
        } else {
            let tuned = BatchParams {
                strategy: BatchStrategy::PerMatrixBlocked { block: 32 },
                threads: 1,
                chunk: 4,
            };
            group.bench_with_input(
                BenchmarkId::new("tuned_blocked", n),
                &mats,
                |bench, mats| {
                    bench.iter(|| {
                        let mut work = mats.clone();
                        batched_cholesky(&mut work, &tuned, &gemm).unwrap();
                        work.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_batched_cholesky);
criterion_main!(benches);
