//! Ablation: the congruence half of the guard product on vs off.
//!
//! Interval guards decide magnitude constraints; the GEMM space's
//! correctness constraints are mostly *divisibility* facts (`% == 0`,
//! equality against a multiple) that an interval hull cannot settle. The
//! congruence domain tracks `x ≡ r (mod m)` alongside the intervals and
//! turns those constraints into subtree skips. This benchmark runs the
//! GEMM sweep both ways and — before timing — asserts the determinism
//! contract the optimization is sold on: bit-identical survivors *and
//! visit order* with congruence on and off, serial and at every measured
//! thread count, with a nonzero number of subtrees skipped only by the
//! congruence half.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::point::PointRef;
use beast_engine::visit::{CountVisitor, Visitor};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 16;
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Order-sensitive survivor fingerprint: an FNV-style rolling hash over the
/// visited points *in order*, so two sweeps agree only if they visit the
/// same survivors in the same sequence.
#[derive(Default)]
struct OrderHashVisitor {
    count: u64,
    hash: u64,
}

impl Visitor for OrderHashVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.count += 1;
        for i in 0..point.names().len() {
            let v = point.value(i).as_int().unwrap() as u64;
            self.hash = (self.hash ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn merge(&mut self, other: Self) {
        // Chunk merges happen in chunk order, so folding the partial hash
        // keeps the fingerprint order-sensitive.
        self.count += other.count;
        self.hash = (self.hash ^ other.hash).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let on = Compiled::new(lp.clone());
    let off = Compiled::with_options(lp.clone(), EngineOptions::no_congruence());

    // The ablation changes cost only: same survivors, same visit order —
    // serially and at every measured thread count.
    let a = on.run(OrderHashVisitor::default()).unwrap();
    let b = off.run(OrderHashVisitor::default()).unwrap();
    assert_eq!(a.visitor.count, b.visitor.count, "congruence changed the survivor count");
    assert_eq!(a.visitor.hash, b.visitor.hash, "congruence changed the visit order");
    assert!(
        a.blocks.congruence_skips > 0,
        "congruence guards decided nothing on the GEMM space — ablation is vacuous"
    );
    assert_eq!(b.blocks.congruence_skips, 0, "congruence-off mode counted congruence skips");
    // Parallel merges fold per-chunk hashes, so the merged fingerprint is
    // only comparable between runs with identical chunking — i.e. at the
    // same thread count. (Exact parallel-vs-serial point order is pinned
    // separately by the determinism suite with a collecting visitor.)
    for threads in THREAD_COUNTS {
        let run = |engine: EngineOptions| {
            let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
            run_parallel_report(&lp, &opts, OrderHashVisitor::default).unwrap().0
        };
        let par_on = run(EngineOptions::default());
        let par_off = run(EngineOptions::no_congruence());
        assert_eq!(
            (par_on.visitor.count, par_on.visitor.hash),
            (par_off.visitor.count, par_off.visitor.hash),
            "congruence changed the survivor fingerprint at {threads} threads"
        );
        assert_eq!(
            par_on.blocks, a.blocks,
            "congruence-on block counters diverged at {threads} threads"
        );
        assert_eq!(
            par_off.blocks, b.blocks,
            "congruence-off block counters diverged at {threads} threads"
        );
    }
    eprintln!(
        "gemm reduced({DIM}): {} survivors; {} subtree skips ({} by congruence), {} checks elided",
        a.visitor.count, a.blocks.subtree_skips, a.blocks.congruence_skips, a.blocks.checks_elided
    );

    let mut group = c.benchmark_group("ablation_congruence");
    group.sample_size(10);
    group.bench_function("congruence_on", |bench| {
        bench.iter(|| on.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.bench_function("congruence_off", |bench| {
        bench.iter(|| off.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
