//! Ablation: the runtime-native C tier on vs off.
//!
//! The native tier lowers the plan to a standalone C chunk worker, compiles
//! it once with `gcc -O2` (cached on disk by structural hash + options
//! signature), and streams level-0 chunks through worker processes instead
//! of interpreting them in-process. This benchmark runs the full GEMM sweep
//! both ways and — before timing — asserts the invariant the tier is sold
//! on: bit-identical survivor fingerprints (order-sensitive) against the
//! serial compiled engine at 1, 2, and 8 threads on two space sizes, with
//! the worker path actually exercised (and never silently falling back)
//! whenever a C compiler is present.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_codegen::find_c_compiler;
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::visit::{CountVisitor, FingerprintVisitor};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIMS: [i64; 2] = [16, 32];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn lower(dim: i64) -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(dim)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// Median of `n` interleaved timed runs per engine configuration, so drift
/// on a shared machine hits both configurations equally.
fn interleaved_medians(lp: &LoweredPlan, engines: &[EngineOptions], n: usize) -> Vec<f64> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for _ in 0..n {
        for (i, engine) in engines.iter().enumerate() {
            let opts =
                ParallelOptions { threads: 1, engine: *engine, ..ParallelOptions::default() };
            let start = std::time::Instant::now();
            run_parallel_report(lp, &opts, CountVisitor::default).unwrap();
            samples[i].push(start.elapsed().as_secs_f64());
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let have_cc = find_c_compiler().is_some();
    if !have_cc {
        eprintln!("no C compiler on PATH: timing the graceful in-process fallback");
    }
    let mut record = String::from("\n{\"native_ablation\":{");
    for dim in DIMS {
        let lp = lower(dim);
        let serial = Compiled::new(lp.clone()).run(FingerprintVisitor::new()).unwrap();

        // The tier changes cost only: identical survivors in identical
        // order at every thread count, and the native counters prove the
        // worker path ran (with zero fallbacks) when a compiler exists.
        for threads in THREAD_COUNTS {
            for (mode, engine) in
                [("native", EngineOptions::native()), ("compiled", EngineOptions::default())]
            {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, report) =
                    run_parallel_report(&lp, &opts, FingerprintVisitor::new).unwrap();
                assert_eq!(
                    (par.visitor.count, par.visitor.hash),
                    (serial.visitor.count, serial.visitor.hash),
                    "reduced({dim}): {mode} tier fingerprint diverged at {threads} threads"
                );
                if mode == "native" && have_cc {
                    let stats = report
                        .native
                        .expect("compiler present: native counters should be reported");
                    assert!(
                        stats.chunks_native > 0,
                        "reduced({dim}): no chunk ran in a worker at {threads} threads"
                    );
                    assert_eq!(
                        stats.chunks_fallback, 0,
                        "reduced({dim}): unexpected in-process fallback at {threads} threads"
                    );
                    assert_eq!(stats.rows_streamed, serial.visitor.count);
                }
            }
        }

        eprintln!("gemm reduced({dim}): {} survivors, fingerprints identical", serial.visitor.count);

        let meds =
            interleaved_medians(&lp, &[EngineOptions::native(), EngineOptions::default()], 9);
        eprintln!(
            "gemm reduced({dim}): native median {:.4} s, compiled median {:.4} s ({:.2}x)",
            meds[0],
            meds[1],
            meds[1] / meds[0]
        );
        if dim != DIMS[0] {
            record.push(',');
        }
        record.push_str(&format!(
            "\"gemm_reduced{dim}_native_s\":{:.6},\"gemm_reduced{dim}_compiled_s\":{:.6},\
             \"gemm_reduced{dim}_speedup\":{:.3}",
            meds[0],
            meds[1],
            meds[1] / meds[0]
        ));

        let mut group = c.benchmark_group(format!("ablation_native_{dim}"));
        group.sample_size(10);
        for (name, engine) in
            [("native", EngineOptions::native()), ("compiled", EngineOptions::default())]
        {
            let opts = ParallelOptions { threads: 1, engine, ..ParallelOptions::default() };
            group.bench_function(name, |bench| {
                bench.iter(|| {
                    run_parallel_report(&lp, &opts, CountVisitor::default)
                        .unwrap()
                        .0
                        .visitor
                        .count
                });
            });
        }
        group.finish();
    }

    // --- Median record appended to BENCH_sweep.json. ----------------------
    record.push_str("}}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::OpenOptions::new().append(true).open(path) {
        Ok(mut f) => {
            use std::io::Write as _;
            if let Err(e) = f.write_all(record.as_bytes()) {
                eprintln!("cannot append to {path}: {e}");
            } else {
                eprintln!("appended native_ablation record to {path}");
            }
        }
        Err(e) => {
            eprintln!("{path} not found ({e}); run the gemm_sweep bench first to create it")
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
