//! Extension benchmark: statistical search methods (the paper's Section XII
//! future work) versus exhaustive enumeration on the GEMM space — cost of
//! finding a near-optimal configuration at a fixed evaluation budget.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::point::{Point, PointRef};
use beast_gemm::{build_gemm_space, pointref_to_config, GemmSpaceParams};
use beast_gpu_sim::estimate;
use beast_search::{hill_climb, random_search, SearchBudget};

const DIM: i64 = 24;
const EVALS: usize = 100;

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let device = params.device.clone();
    let cc = params.cc();
    let precision = params.precision;
    let score = move |p: &Point| {
        let names: Vec<std::sync::Arc<str>> = p.names().to_vec();
        let slots: Vec<i64> = p.values().iter().map(|v| v.as_int().unwrap()).collect();
        let view = PointRef::Slots { names: &names, slots: &slots };
        estimate(&device, &cc, &pointref_to_config(&view), precision).gflops
    };

    let budget = SearchBudget { evaluations: EVALS, attempts_per_sample: 100_000, ..Default::default() };
    let mut group = c.benchmark_group("search_methods");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));

    group.bench_function("random_search_100", |b| {
        let score = score.clone();
        b.iter(|| {
            random_search(&lp, StdRng::seed_from_u64(1), budget, score.clone())
                .unwrap()
                .best_score()
        });
    });
    group.bench_function("hill_climb_100", |b| {
        let score = score.clone();
        b.iter(|| {
            hill_climb(&lp, StdRng::seed_from_u64(1), budget, 25, score.clone())
                .unwrap()
                .best_score()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
