//! §XI-B/D headline: full GEMM-space sweep time per backend on a reduced
//! device. The paper's result: 66 948 s (Python) → 264 s (generated C),
//! ≈253×; the shape target is the orders-of-magnitude spread between the
//! interpreted and compiled backends.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::Compiled;
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::visit::CountVisitor;
use beast_engine::vm::{Vm, VmStyle};
use beast_engine::walker::{LoopStyle, Walker};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 16;

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let mut group = c.benchmark_group("gemm_sweep");
    group.sample_size(10);

    group.bench_function("walker_python_model", |b| {
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);
        b.iter(|| walker.run(CountVisitor::default()).unwrap().visitor.count);
    });

    group.bench_function("vm_lua_model", |b| {
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        b.iter(|| vm.run(CountVisitor::default()).unwrap().visitor.count);
    });

    group.bench_function("compiled_c_model", |b| {
        let compiled = Compiled::new(lp.clone());
        b.iter(|| compiled.run(CountVisitor::default()).unwrap().visitor.count);
    });

    group.finish();

    // Persist one machine-readable sweep report next to the workspace root so
    // CI and the experiment recipes can diff telemetry across runs.
    let (_, report) = run_parallel_report(&lp, &ParallelOptions::new(1), CountVisitor::default)
        .expect("gemm sweep report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, report.to_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
