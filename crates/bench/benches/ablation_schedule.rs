//! Ablation: constraint-schedule modes on the full GEMM sweep — the
//! declared plan order vs the cost-model static order vs online adaptive
//! re-sorting.
//!
//! Before timing anything, the invariant the scheduler is sold on is
//! asserted: identical survivor count *and identical visit order* across
//! all three modes, at 1/2/8 threads, with interval pruning on and off.
//! Then each mode is timed (criterion, serial sweep, both interval
//! settings) and a `schedule_ablation` JSON record with the median
//! wall-clock per mode is appended to `BENCH_sweep.json` (run the
//! `gemm_sweep` bench first — it truncates that file; see EXPERIMENTS.md).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::schedule::ScheduleMode;
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::point::PointRef;
use beast_engine::visit::{CountVisitor, Visitor};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 16;
const MODES: [ScheduleMode; 3] =
    [ScheduleMode::Declared, ScheduleMode::Static, ScheduleMode::Adaptive];

/// Order-sensitive survivor fingerprint: an FNV-style rolling hash over the
/// visited points *in order* (chunk merges fold partial hashes in chunk
/// order, so the parallel fingerprint is order-sensitive too).
#[derive(Default)]
struct OrderHashVisitor {
    count: u64,
    hash: u64,
}

impl Visitor for OrderHashVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.count += 1;
        for i in 0..point.names().len() {
            let v = point.value(i).as_int().unwrap() as u64;
            self.hash = (self.hash ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.hash = (self.hash ^ other.hash).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn options(mode: ScheduleMode, intervals: bool) -> EngineOptions {
    let mut opts =
        if intervals { EngineOptions::default() } else { EngineOptions::no_intervals() };
    opts.schedule = mode;
    opts
}

/// Per-configuration median of `reps` timed serial sweeps, in seconds.
/// One rep times every configuration back to back (round-robin), so slow
/// machine phases land on all configurations instead of on whichever one
/// happened to run during them — sequential per-mode timing made the
/// mode-vs-mode ratios noise-dominated.
fn interleaved_medians(compileds: &[Compiled], reps: usize) -> Vec<f64> {
    let mut times = vec![Vec::with_capacity(reps); compileds.len()];
    for _ in 0..reps {
        for (i, compiled) in compileds.iter().enumerate() {
            let t0 = Instant::now();
            compiled.run(CountVisitor::default()).unwrap();
            times[i].push(t0.elapsed().as_secs_f64());
        }
    }
    times
        .into_iter()
        .map(|mut t| {
            t.sort_by(|a, b| a.partial_cmp(b).unwrap());
            t[t.len() / 2]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    // --- Invariant: the schedule is invisible in results. -----------------
    // The chunk-merge hash fold is order-sensitive but chunking-dependent,
    // so each thread count gets its own declared-order fingerprint (the
    // scheduler cuts identical chunks for identical plans and thread
    // counts) and every mode × interval setting must reproduce it.
    let baseline = Compiled::new(lp.clone()).run(OrderHashVisitor::default()).unwrap();
    assert!(baseline.visitor.count > 0, "degenerate GEMM space");
    let par_baseline: Vec<(usize, u64, u64)> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = ParallelOptions::new(threads);
            let (out, _) = run_parallel_report(&lp, &opts, OrderHashVisitor::default).unwrap();
            (threads, out.visitor.count, out.visitor.hash)
        })
        .collect();
    for mode in MODES {
        for intervals in [true, false] {
            let engine = options(mode, intervals);
            let serial =
                Compiled::with_options(lp.clone(), engine).run(OrderHashVisitor::default()).unwrap();
            assert_eq!(
                (serial.visitor.count, serial.visitor.hash),
                (baseline.visitor.count, baseline.visitor.hash),
                "{mode} (intervals={intervals}) changed survivors or their order"
            );
            for &(threads, count, hash) in &par_baseline {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, _) =
                    run_parallel_report(&lp, &opts, OrderHashVisitor::default).unwrap();
                assert_eq!(
                    (par.visitor.count, par.visitor.hash),
                    (count, hash),
                    "{mode} (intervals={intervals}) diverged at {threads} threads"
                );
            }
        }
    }
    eprintln!(
        "gemm reduced({DIM}): {} survivors, bit-identical across all modes × threads × intervals",
        baseline.visitor.count
    );

    // --- Criterion timing (serial, both interval settings). ---------------
    let mut group = c.benchmark_group("ablation_schedule");
    group.sample_size(10);
    for mode in MODES {
        for intervals in [true, false] {
            let compiled = Compiled::with_options(lp.clone(), options(mode, intervals));
            let label =
                format!("{mode}_{}", if intervals { "intervals" } else { "no_intervals" });
            group.bench_function(&*label, |bench| {
                bench.iter(|| compiled.run(CountVisitor::default()).unwrap().visitor.count);
            });
        }
    }
    group.finish();

    // --- Median record appended to BENCH_sweep.json. ----------------------
    let mut record = String::from("\n{\"schedule_ablation\":{\"space\":\"gemm_reduced16\"");
    let configs: Vec<(ScheduleMode, bool)> = [true, false]
        .into_iter()
        .flat_map(|iv| MODES.into_iter().map(move |m| (m, iv)))
        .collect();
    let compileds: Vec<Compiled> = configs
        .iter()
        .map(|&(mode, iv)| Compiled::with_options(lp.clone(), options(mode, iv)))
        .collect();
    let medians = interleaved_medians(&compileds, 15);
    for (&(mode, intervals), &med) in configs.iter().zip(&medians) {
        let declared = medians[configs
            .iter()
            .position(|&(m, iv)| m == ScheduleMode::Declared && iv == intervals)
            .unwrap()];
        let tag = if intervals { "intervals" } else { "no_intervals" };
        record.push_str(&format!(
            ",\"{mode}_{tag}_s\":{med:.6},\"{mode}_{tag}_speedup\":{:.3}",
            declared / med
        ));
        eprintln!(
            "{mode:>8} ({tag}): median {med:.4} s  ({:.2}x vs declared)",
            declared / med
        );
    }
    record.push_str("}}");
    match std::fs::OpenOptions::new().append(true).open("BENCH_sweep.json") {
        Ok(mut f) => {
            use std::io::Write as _;
            if let Err(e) = f.write_all(record.as_bytes()) {
                eprintln!("cannot append to BENCH_sweep.json: {e}");
            } else {
                eprintln!("appended schedule_ablation record to BENCH_sweep.json");
            }
        }
        Err(e) => eprintln!(
            "BENCH_sweep.json not found ({e}); run the gemm_sweep bench first to create it"
        ),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
