//! §X-B: multithreaded evaluation scaling — the level-0 loop dynamically
//! scheduled across worker threads. On multi-core hosts the speedup tracks
//! the core count; the absolute ceiling is `available_parallelism`.
//!
//! Besides the timing samples, each thread count prints one line from the
//! sweep's [`SweepReport`]: the scheduler shape (chunks × chunk length),
//! throughput, and the worker load imbalance (max busy / mean busy — 1.00 is
//! perfect balance; the static one-chunk-per-thread split this replaced sat
//! well above that on pruned, skewed spaces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::parallel::{run_parallel, run_parallel_report, ParallelOptions};
use beast_engine::visit::CountVisitor;
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 20;

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    // One reported sweep per thread count, so the bench output shows what
    // the scheduler actually did, not just how long it took.
    let mut decided = 0u64;
    for threads in [1usize, 2, 4, 8] {
        let (out, report) =
            run_parallel_report(&lp, &ParallelOptions::new(threads), CountVisitor::default)
                .unwrap();
        decided = out.stats.survivors + out.stats.total_pruned();
        println!(
            "report t={threads}: {} chunk(s) of {}, {:.2} M tuples/s, imbalance {:.2}",
            report.chunks,
            report.chunk_len,
            report.tuples_per_sec() / 1e6,
            report.imbalance()
        );
    }

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(decided));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_parallel(&lp, threads, CountVisitor::default)
                        .unwrap()
                        .visitor
                        .count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
