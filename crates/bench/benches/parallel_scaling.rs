//! §X-B: multithreaded evaluation scaling — the level-0 loop chunked across
//! worker threads. On multi-core hosts the speedup tracks the core count;
//! the absolute ceiling is `available_parallelism`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::parallel::run_parallel;
use beast_engine::visit::CountVisitor;
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 20;

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_parallel(&lp, threads, CountVisitor::default)
                        .unwrap()
                        .visitor
                        .count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
