//! Ablation: the paper's DAG-based pruning (hoisting every constraint to
//! the shallowest loop where its inputs are bound) versus the naive plan
//! that evaluates all derived variables and constraints in the innermost
//! loop. Hoisting is the design choice that lets one failed check skip an
//! entire subtree of the space.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::Compiled;
use beast_engine::visit::CountVisitor;
use beast_gemm::{build_gemm_space, GemmSpaceParams};

// Without hoisting the *raw* cross product is enumerated (that is the
// point of the ablation), so the device must stay tiny: reduced(6) already
// yields a ~10^6-tuple raw space vs a few thousand hoisted evaluations.
const DIM: i64 = 6;

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();

    let mut group = c.benchmark_group("ablation_hoisting");
    group.sample_size(10);

    let hoisted_plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let hoisted = Compiled::new(LoweredPlan::new(&hoisted_plan).unwrap());
    let unhoisted_plan = Plan::new(&space, PlanOptions::unhoisted()).unwrap();
    let unhoisted = Compiled::new(LoweredPlan::new(&unhoisted_plan).unwrap());

    // Both must agree on survivors — the ablation changes cost only.
    let a = hoisted.run(CountVisitor::default()).unwrap().visitor.count;
    let b = unhoisted.run(CountVisitor::default()).unwrap().visitor.count;
    assert_eq!(a, b);

    group.bench_function("hoisted_dag_pruning", |bench| {
        bench.iter(|| hoisted.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.bench_function("unhoisted_innermost", |bench| {
        bench.iter(|| unhoisted.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
